"""Experiment runners — one per table/figure of the thesis' evaluation.

Each function builds a fresh deterministic world (testbed or purpose-built
topology), runs the measurement, and returns plain data that the
``benchmarks/`` files print in the thesis' row/series format.  Arms that
the thesis compares (random vs Smart) run in *separate* simulations so one
arm's traffic and load never contaminate the other.

Index (see DESIGN.md §4):

=========================  =====================================
thesis artefact            runner
=========================  =====================================
Fig 3.3–3.5                :func:`rtt_vs_size`
Fig 3.6 / Table 3.2        :func:`six_paths`
Table 3.3 / Fig 3.7        :func:`bandwidth_probe_table`
Table 5.2                  :func:`resource_usage`
Fig 5.2                    :func:`matrix_benchmark`
Tables 5.3–5.6             :func:`matmul_experiment`
Fig 5.3                    :func:`shaper_calibration`
Tables 5.7–5.9 / 5.4–5.6   :func:`massd_experiment`
=========================  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..apps import (
    FileServer,
    MassdClient,
    MatMulMaster,
    MatMulWorker,
    flops_for,
    shape_host_egress,
)
from ..cluster import Cluster, Deployment, build_testbed, build_wan_paths
from ..core import Config, estimate_bandwidth, pipechar_estimate, pathload_estimate, rtt_curve
from ..host import SuperPiWorkload
from ..net import ETHERNET_100

__all__ = [
    "rtt_vs_size",
    "knee_slopes",
    "six_paths",
    "bandwidth_probe_table",
    "PAPER_SIZE_GROUPS",
    "resource_usage",
    "matrix_benchmark",
    "matmul_experiment",
    "MatmulArm",
    "shaper_calibration",
    "massd_experiment",
    "MassdArm",
    "failover_experiment",
    "FailoverArm",
    "FAILOVER_SCENARIOS",
    "grayfail_experiment",
    "GrayFailArm",
    "GRAYFAIL_SCENARIOS",
    "GRAYFAIL_DETECTORS",
    "TESTBED_SERVER_NAMES",
]

TESTBED_SERVER_NAMES = (
    "sagit", "dalmatian", "mimas", "telesto", "lhost", "helene",
    "phoebe", "calypso", "dione", "titan-x", "pandora-x",
)

MATMUL_N = 1500
SERVICE_PORT = 9000
BULK_MSS = 8192


def _drive(cluster: Cluster, proc, horizon: float = 36000.0) -> None:
    """Step the simulation until ``proc`` finishes.

    Experiment worlds contain immortal daemons (probes, monitors, cross
    traffic), so draining the event queue would never terminate — instead
    we stop the moment the experiment driver completes.
    """
    sim = cluster.sim
    while not proc.processed:
        if sim.peek() > horizon:
            raise RuntimeError(
                f"experiment still running at t={sim.now:.1f}s (horizon {horizon}s)"
            )
        sim.step()


# ---------------------------------------------------------------------------
# §3.3.2 — RTT vs packet size (Figs 3.3–3.5)
# ---------------------------------------------------------------------------

def _lan_pair(mtu: int = 1500, rate_bps: float = ETHERNET_100,
              cross_utilisation: float = 0.0, seed: int = 0):
    """sagit — switch — suna, like the thesis' campus measurement pair."""
    cluster = Cluster(seed=seed)
    a = cluster.add_host("sagit")
    b = cluster.add_host("suna")
    sw = cluster.add_switch("sw")
    l1 = cluster.link(a, sw, rate_bps=rate_bps, delay=60e-6, mtu=mtu)
    l2 = cluster.link(sw, b, rate_bps=rate_bps, delay=60e-6, mtu=mtu)
    cluster.finalize()
    if cross_utilisation > 0:
        _cross_traffic(cluster, [l1.ab, l1.ba, l2.ab, l2.ba],
                       utilisation=cross_utilisation)
    return cluster, a, b


def _cross_traffic(cluster: Cluster, channels, utilisation: float,
                   frame_bytes: int = 1500) -> list:
    """Poisson cross traffic occupying each channel at the given fraction.

    Returns the chatter processes so callers can keep (or interrupt) them.
    """
    sim = cluster.sim
    procs = []
    for i, channel in enumerate(channels):
        rng = cluster.streams.stream(f"cross-{i}")
        rate_fps = utilisation * channel.rate_bps / (frame_bytes * 8.0)

        def chatter(ch=channel, r=rng, fps=rate_fps):
            while True:
                yield sim.timeout(r.expovariate(fps))
                ch.occupy(frame_bytes)

        procs.append(sim.process(chatter(), name=f"cross-{i}"))
    return procs


def rtt_vs_size(mtu: int = 1500, sizes: Optional[Iterable[int]] = None,
                cross_utilisation: float = 0.02, seed: int = 0):
    """UDP-probe RTT over payload size (thesis Figs 3.3/3.4/3.5).

    Returns ``[(payload_bytes, rtt_seconds)]``.
    """
    if sizes is None:
        sizes = range(1, 6001, 10)
    cluster, a, b = _lan_pair(mtu=mtu, cross_utilisation=cross_utilisation, seed=seed)
    out: dict = {}

    def prober():
        series = yield from rtt_curve(a.stack, b.name, list(sizes), gap=0.002)
        out["series"] = series

    proc = cluster.sim.process(prober())
    _drive(cluster, proc)
    return out["series"]


def knee_slopes(series: Sequence[tuple[int, float]], mtu: int):
    """Least-squares RTT slopes (s/byte) below and above the MTU knee.

    The sub-MTU region excludes a guard band near the knee; the thesis'
    observation is ``slope_below > slope_above`` with the break at
    ``payload ≈ MTU - 28``.
    """
    knee = mtu - 28
    below = [(s, t) for s, t in series if s <= knee * 0.9]
    above = [(s, t) for s, t in series if s >= knee * 1.2]
    return _slope(below), _slope(above)


def _slope(points: Sequence[tuple[int, float]]) -> float:
    n = len(points)
    if n < 2:
        raise ValueError("need at least two points for a slope")
    sx = sum(p[0] for p in points)
    sy = sum(p[1] for p in points)
    sxx = sum(p[0] * p[0] for p in points)
    sxy = sum(p[0] * p[1] for p in points)
    denom = n * sxx - sx * sx
    if denom == 0:
        raise ValueError("degenerate x values")
    return (n * sxy - sx * sy) / denom


# ---------------------------------------------------------------------------
# §3.3.2 — six sample paths (Fig 3.6 / Table 3.2)
# ---------------------------------------------------------------------------

def six_paths(sizes: Optional[Iterable[int]] = None, seed: int = 0):
    """RTT curves on the six Table 3.2 paths.

    Returns ``{path_index: [(size, rtt_s)]}`` for indices a–f.
    """
    if sizes is None:
        sizes = range(100, 6001, 100)
    cluster, endpoints = build_wan_paths(seed=seed)
    results: dict[str, list] = {}

    def prober(index, src, dst_name):
        series = yield from rtt_curve(src.stack, dst_name, list(sizes), gap=0.002)
        results[index] = series

    # probe the paths concurrently — they are disjoint topologies
    procs = [
        cluster.sim.process(prober(index, src, dst_name))
        for index, (src, dst_name) in endpoints.items()
    ]
    for proc in procs:
        _drive(cluster, proc)
    return results


# ---------------------------------------------------------------------------
# §3.3.2 — bandwidth vs probe sizes (Table 3.3 / Fig 3.7)
# ---------------------------------------------------------------------------

#: thesis Table 3.3's seven probe-size groups
PAPER_SIZE_GROUPS: tuple[tuple[int, int], ...] = (
    (100, 500),
    (500, 1000),
    (100, 1000),
    (2000, 4000),
    (4000, 6000),
    (2000, 6000),
    (1600, 2900),
)


@dataclass
class BandwidthRow:
    label: str
    min_mbps: float
    max_mbps: float
    avg_mbps: float


def bandwidth_probe_table(groups: Sequence[tuple[int, int]] = PAPER_SIZE_GROUPS,
                          runs: int = 5, samples: int = 4,
                          cross_utilisation: float = 0.05, seed: int = 0):
    """Bandwidth estimates per probe-size group + pipechar/pathload rows.

    The path is a 100 Mbps pair under ~5 % cross traffic, i.e. ~95 Mbps
    available — the thesis' measured ground truth.
    """
    cluster, a, b = _lan_pair(cross_utilisation=cross_utilisation, seed=seed)
    rows: list[BandwidthRow] = []
    extra: dict[str, object] = {}

    def measure():
        for s1, s2 in groups:
            per_run = []
            for _ in range(runs):
                est = yield from estimate_bandwidth(
                    a.stack, b.name, s1=s1, s2=s2, samples=samples, gap=0.02
                )
                if est.ok:
                    per_run.append(est.avg_bps / 1e6)
                yield cluster.sim.timeout(0.1)
            if per_run:
                rows.append(BandwidthRow(
                    label=f"{s1}~{s2}",
                    min_mbps=min(per_run),
                    max_mbps=max(per_run),
                    avg_mbps=sum(per_run) / len(per_run),
                ))
        pc = yield from pipechar_estimate(a.stack, b.name, pairs=6)
        extra["pipechar_mbps"] = pc / 1e6 if pc else None
        pl = yield from pathload_estimate(a.stack, b.name)
        extra["pathload_mbps"] = (pl[0] / 1e6, pl[1] / 1e6) if pl else None

    proc = cluster.sim.process(measure())
    _drive(cluster, proc)
    return rows, extra


# ---------------------------------------------------------------------------
# shared world builder for the Chapter 5 experiments
# ---------------------------------------------------------------------------

def _testbed_world(config: Optional[Config] = None, seed: int = 0,
                   mode: Optional[str] = None,
                   pool: Sequence[str] = TESTBED_SERVER_NAMES,
                   tie_break_seed: Optional[int] = None,
                   trace_events: bool = False,
                   sanitize: bool = False,
                   profile: bool = False):
    """Testbed + one 'lab' group over ``pool``, matmul workers everywhere."""
    cluster = build_testbed(seed=seed, tie_break_seed=tie_break_seed,
                            trace_events=trace_events, sanitize=sanitize,
                            profile=profile)
    cfg = config or Config()
    dep = Deployment(cluster, wizard_host=cluster.host("dalmatian"),
                     config=cfg, mode=mode)
    servers = [cluster.host(n) for n in pool]
    dep.add_group("lab", monitor_host=cluster.host("dalmatian"), servers=servers)
    workers = {}
    for name in TESTBED_SERVER_NAMES:
        worker = MatMulWorker(cluster.host(name), port=SERVICE_PORT, mss=BULK_MSS)
        worker.start()
        workers[name] = worker
    dep.start()
    return cluster, dep, workers


# ---------------------------------------------------------------------------
# Table 5.2 — per-component resource usage
# ---------------------------------------------------------------------------

@dataclass
class ResourceRow:
    component: str
    cpu_pct: float
    mem_kb: float
    net_kbps: float
    transport: str


def resource_usage(duration: float = 60.0, seed: int = 0) -> list[ResourceRow]:
    """Measured per-component footprint with 11 probes running (Table 5.2).

    Network figures come from live counters; CPU and memory combine the
    documented per-operation model constants with measured operation counts.
    Two groups are deployed so the network monitors have peers to probe,
    and a client issues a request every 2 s so the wizard sees load — the
    same conditions the thesis measured under.
    """
    from ..core.probe import ServerProbe

    cluster = build_testbed(seed=seed)
    dep = Deployment(cluster, wizard_host=cluster.host("dalmatian"))
    lab_servers = [cluster.host(n) for n in TESTBED_SERVER_NAMES if n != "sagit"]
    dep.add_group("lab", monitor_host=cluster.host("dalmatian"), servers=lab_servers)
    dep.add_group("campus", monitor_host=cluster.host("sagit"),
                  servers=[cluster.host("sagit")])
    dep.start()

    def requester():
        client = dep.client_for(cluster.host("sagit"))
        yield cluster.sim.timeout(dep.warm_up_seconds())
        while True:
            yield from client.request_servers("host_cpu_free > 0.1", 11)
            yield cluster.sim.timeout(2.0)

    # deliberately fire-and-forget: the requester is an immortal load
    # generator that dies with the world when _drive hits the horizon
    cluster.sim.process(requester(), name="resource-requester")  # repro: noqa[REPRO305]
    horizon = cluster.sim.event()
    horizon.succeed(delay=duration)
    _drive(cluster, horizon, horizon=duration + 60)
    group = dep.groups["lab"]

    probe = group.probes[0]
    report_bytes = (
        probe.last_report.wire_bytes + 28 if probe.last_report is not None else 190
    )
    probe_kbps = probe.reports_sent * report_bytes / duration / 1024
    probe_cpu = 100 * ServerProbe.SCAN_CPU_SECONDS / dep.config.probe_interval

    n_probes = len(group.probes)
    sysmon_kbps = probe_kbps * n_probes
    # the monitor parses each report: model 0.1 ms of CPU per report
    sysmon_cpu = 100 * group.sysmon.reports_received * 1e-4 / duration

    netmon_kbps = group.netmon.probe_bytes / duration / 1024

    tx_kbps = group.transmitter.bytes_sent / duration / 1024

    wiz = dep.wizard
    wizard_kbps = (wiz.bytes_in + wiz.bytes_out) / duration / 1024
    wizard_cpu = 100 * wiz.requests_handled * 5e-4 / duration

    return [
        ResourceRow("System Probe", probe_cpu, ServerProbe.RESIDENT_BYTES / 1024,
                    probe_kbps, "UDP"),
        ResourceRow("System Monitor", sysmon_cpu, 8.0 + 0.2 * n_probes,
                    sysmon_kbps, "UDP"),
        ResourceRow("Network Monitor", 0.05, 8.0, netmon_kbps, "UDP"),
        ResourceRow("Security Monitor", 0.02, 8.0, 0.0, "(not used)"),
        ResourceRow("Transmitter", 0.05, 8.0, tx_kbps, "TCP"),
        ResourceRow("Receiver", 0.05, 92.0, tx_kbps, "TCP"),
        ResourceRow("Wizard", wizard_cpu, 96.0, wizard_kbps, "UDP"),
    ]


# ---------------------------------------------------------------------------
# Fig 5.2 — per-host matmul benchmark
# ---------------------------------------------------------------------------

def matrix_benchmark(n: int = MATMUL_N, blk: int = 200, seed: int = 0):
    """Local-mode benchmark time per testbed host (Fig 5.2).

    Returns ``[(host, seconds)]`` in testbed order.
    """
    cluster = build_testbed(seed=seed)
    times: dict[str, float] = {}

    def bench(host):
        t0 = cluster.sim.now
        # local mode runs block by block, same tiling as distributed
        from ..apps.matmul import block_grid
        for _, rows, _, cols in [(r0, r, c0, c) for r0, r, c0, c in block_grid(n, blk)]:
            yield host.machine.compute(flops_for(rows, cols, n), kind="matmul")
        times[host.name] = cluster.sim.now - t0

    procs = [cluster.sim.process(bench(cluster.host(name)))
             for name in TESTBED_SERVER_NAMES]
    cluster.run()
    assert all(p.processed for p in procs), "a bench process never finished"
    return [(name, times[name]) for name in TESTBED_SERVER_NAMES]


# ---------------------------------------------------------------------------
# Tables 5.3–5.6 — matmul: random vs Smart
# ---------------------------------------------------------------------------

@dataclass
class MatmulArm:
    label: str
    servers: list[str]
    elapsed: float
    blocks_per_server: dict[str, int] = field(default_factory=dict)
    #: canonical kernel event trace (schedule-sanitizer runs only)
    event_trace: Optional[tuple[str, ...]] = None
    #: race reports + access count from the happens-before sanitizer
    #: (``sanitize=True`` runs only)
    races: Optional[tuple] = None
    tracked_accesses: int = 0
    #: deterministic event-attribution dict (``profile=True`` runs only)
    attribution: Optional[dict] = None


def matmul_experiment(
    n_servers: int,
    blk: int,
    requirement: str,
    random_servers: Sequence[str],
    loaded_hosts: Sequence[str] = (),
    n: int = MATMUL_N,
    master: str = "dalmatian",
    warmup: float = 60.0,
    seed: int = 0,
    pool: Sequence[str] = TESTBED_SERVER_NAMES,
    tie_break_seed: Optional[int] = None,
    trace_events: bool = False,
    sanitize: bool = False,
    profile: bool = False,
) -> list[MatmulArm]:
    """One thesis matmul comparison (Tables 5.3–5.6).

    ``random_servers`` is the baseline pick (the thesis reports the actual
    random draws, so experiments can reproduce its exact arms); the smart
    arm asks the wizard with ``requirement``.  ``loaded_hosts`` get a
    SuperPI workload from t=0 (Table 5.6's non-zero-workload setup).
    ``pool`` restricts the monitored server group (Table 5.6 uses only the
    seven P4-1.6–1.8 machines).  ``tie_break_seed``/``trace_events`` arm
    the schedule sanitizer: dual runs with different tie-break seeds must
    produce identical ``event_trace`` tuples on every arm.  ``sanitize``
    runs each arm under the happens-before race detector and fills
    ``races``/``tracked_accesses`` on the arm; ``profile`` runs it under
    the deterministic event profiler and fills ``attribution``.
    """
    arms: list[MatmulArm] = []

    def run_arm(label: str, use_smart: bool):
        cluster, dep, _ = _testbed_world(seed=seed, pool=pool,
                                         tie_break_seed=tie_break_seed,
                                         trace_events=trace_events,
                                         sanitize=sanitize,
                                         profile=profile)
        net = cluster.network
        for hname in loaded_hosts:
            SuperPiWorkload(cluster.sim, cluster.host(hname).machine).start()
        out: dict = {}

        def driver():
            yield cluster.sim.timeout(max(warmup, dep.warm_up_seconds()))
            client = dep.client_for(cluster.host(master))
            if use_smart:
                conns = yield from client.smart_sockets(
                    requirement, n_servers, service_port=SERVICE_PORT, mss=BULK_MSS
                )
            else:
                conns = []
                for sname in random_servers:
                    conn = yield from cluster.host(master).stack.tcp.connect(
                        net.resolve(sname), SERVICE_PORT, mss=BULK_MSS
                    )
                    conns.append(conn)
            master_prog = MatMulMaster(cluster.host(master))
            result = yield from master_prog.run(conns, n=n, blk=blk)
            out["result"] = result

        proc = cluster.sim.process(driver())
        _drive(cluster, proc)
        result = out["result"]
        arms.append(MatmulArm(
            label=label,
            servers=[net.hostname_of(a) for a in result.servers],
            elapsed=result.elapsed,
            blocks_per_server={
                net.hostname_of(a): c for a, c in result.blocks_per_server.items()
            },
            event_trace=(tuple(cluster.event_trace.canonical_lines())
                         if cluster.event_trace is not None else None),
            races=(tuple(cluster.sanitizer.races)
                   if cluster.sanitizer is not None else None),
            tracked_accesses=(cluster.sanitizer.accesses
                              if cluster.sanitizer is not None else 0),
            attribution=(cluster.profiler.attribution()
                         if cluster.profiler is not None else None),
        ))

    run_arm("random", use_smart=False)
    run_arm("smart", use_smart=True)
    return arms


# ---------------------------------------------------------------------------
# HA failover — recovery latency under wizard / server kills
# ---------------------------------------------------------------------------

#: fault modes of :func:`failover_experiment`
FAILOVER_SCENARIOS = ("none", "wizard_kill", "server_kill")


@dataclass
class FailoverArm:
    """One failover run: elapsed wall time plus the recovery telemetry."""

    label: str
    seed: int
    elapsed: float
    failovers: int
    requeued_blocks: int
    wizard_failovers: int
    stale_rejections: int
    lease_expiries: int
    blocks_per_server: dict[str, int] = field(default_factory=dict)
    #: race reports + access count (``sanitize=True`` runs only)
    races: Optional[tuple] = None
    tracked_accesses: int = 0


def _failover_world(seed: int, sanitize: bool = False,
                    watchdog: bool = False):
    """The HA star (same shape as the chaos test world): a two-replica
    wizard fleet, two 3-server groups with slow matmul CPUs (~2 s per
    80x80 block), workers + lease responders on every server.

    ``watchdog=True`` arms the sessions' throughput-floor watchdog (the
    adaptive gray-failure detector); off, only the binary lease detector
    runs — the two arms of :func:`grayfail_experiment`."""
    from ..core import LeaseResponder

    extra = {}
    if watchdog:
        # min_samples=3: a matmul session only records ~1 progress gap
        # per block cycle, so demanding more would leave the detector
        # cold past the fault window of a short benchmark job
        extra = dict(session_watchdog_interval=0.5,
                     session_watchdog_min_samples=3,
                     session_watchdog_phi=2.5)
    config = Config(
        probe_interval=1.0, probe_miss_limit=3, transmit_interval=1.0,
        netmon_interval=1.0, client_timeout=1.0, client_retries=2,
        client_backoff_base=0.1, client_backoff_cap=1.0,
        transmit_backoff_cap=2.0, transmit_stall_limit=3.0,
        quarantine_period=5.0, wizard_staleness_limit=4.0,
        wizard_quarantine_period=5.0, lease_interval=0.5,
        lease_timeout=2.0, session_retries=3, **extra,
    )
    cluster = Cluster(seed=seed, sanitize=sanitize)
    wiz = cluster.add_host("wiz")
    wiz2 = cluster.add_host("wiz2")
    cli = cluster.add_host("cli")
    mon1 = cluster.add_host("mon1")
    mon2 = cluster.add_host("mon2")
    core = cluster.add_switch("core")
    sw1 = cluster.add_switch("sw-g1")
    sw2 = cluster.add_switch("sw-g2")
    cluster.link(wiz, core, subnet="10.0.0")
    cluster.link(wiz2, core, subnet="10.0.4")
    cluster.link(cli, core, subnet="10.0.3")
    cluster.link(mon1, sw1, subnet="10.0.1")
    cluster.link(sw1, core, subnet="10.0.1")
    cluster.link(mon2, sw2, subnet="10.0.2")
    cluster.link(sw2, core, subnet="10.0.2")
    servers = []
    for i in range(6):
        s = cluster.add_host(f"s{i}", speeds={"matmul": 1.5e6})
        cluster.link(s, sw1 if i < 3 else sw2,
                     subnet="10.0.1" if i < 3 else "10.0.2")
        servers.append(s)
    cluster.finalize()
    dep = Deployment(cluster, config=config, wizard_hosts=[wiz, wiz2])
    dep.add_group("g1", mon1, servers[:3])
    dep.add_group("g2", mon2, servers[3:])
    dep.start()
    services, responders = {}, {}
    for s in servers:
        worker = MatMulWorker(s, port=SERVICE_PORT, mss=BULK_MSS)
        worker.start()
        services[s.name] = worker
        responder = LeaseResponder(s, config)
        responder.start()
        responders[s.name] = responder
    return cluster, dep, servers, services, responders


def failover_experiment(
    scenario: str = "server_kill",
    seed: int = 0,
    n: int = 240,
    blk: int = 80,
    sanitize: bool = False,
) -> FailoverArm:
    """One self-healing matmul run (2 sessions) under a fault mode:
    ``none`` (baseline), ``wizard_kill`` (primary wizard replica killed
    just before the first request) or ``server_kill`` (the first chosen
    worker power-failed 2.5 s into the stream).  The arm's ``elapsed``
    minus the same-seed baseline's is the recovery latency.
    """
    from ..faults import ChaosController, FaultPlan

    if scenario not in FAILOVER_SCENARIOS:
        raise ValueError(f"unknown failover scenario {scenario!r}")
    requirement = "host_cpu_free > 0.1\nhost_status_age < 10"
    request_at = 6.0
    cluster, dep, servers, services, responders = _failover_world(
        seed, sanitize=sanitize)
    name_of = {s.addr: s.name for s in servers}
    out: dict = {}

    def arm_chaos(plan):
        chaos = ChaosController(dep, plan)
        for sname, worker in services.items():
            chaos.register_daemon(sname, "worker", worker)
        for sname, responder in responders.items():
            chaos.register_daemon(sname, "lease", responder)
        chaos.start()

    if scenario == "wizard_kill":
        arm_chaos(FaultPlan().kill_wizard_during_request(
            request_at - 0.2, "wiz"))

    def driver():
        from ..core import smart_sessions

        yield cluster.sim.timeout(request_at)
        client = dep.client_for(cluster.host("cli"))
        out["client"] = client
        sessions = yield from smart_sessions(
            client, requirement, 2, service_port=SERVICE_PORT, mss=BULK_MSS)
        out["sessions"] = sessions
        if scenario == "server_kill":
            arm_chaos(FaultPlan().kill_server_mid_stream(
                cluster.sim.now + 2.5, name_of[sessions[0].addr]))
        prog = MatMulMaster(cluster.host("cli"))
        result = yield from prog.run(sessions, n=n, blk=blk)
        for session in sessions:
            session.close()
        out["result"] = result

    proc = cluster.sim.process(driver(), name="failover-driver")
    _drive(cluster, proc)
    result, client = out["result"], out["client"]
    return FailoverArm(
        label=scenario,
        seed=seed,
        elapsed=result.elapsed,
        failovers=result.failovers,
        requeued_blocks=result.requeued_blocks,
        wizard_failovers=client.wizard_failovers,
        stale_rejections=client.stale_rejections,
        lease_expiries=sum(s.lease_expiries for s in out["sessions"]),
        blocks_per_server={
            name_of.get(a, a): c
            for a, c in result.blocks_per_server.items()
        },
        races=(tuple(cluster.sanitizer.races)
               if cluster.sanitizer is not None else None),
        tracked_accesses=(cluster.sanitizer.accesses
                          if cluster.sanitizer is not None else 0),
    )


# ---------------------------------------------------------------------------
# Gray failures — adaptive vs fixed-timeout detection under fail-slow faults
# ---------------------------------------------------------------------------

#: gray fault modes of :func:`grayfail_experiment`
GRAYFAIL_SCENARIOS = ("none", "slow_server", "degraded_link")
#: detector arms: the adaptive (watchdog) sessions vs the binary
#: lease-only baseline
GRAYFAIL_DETECTORS = ("adaptive", "fixed")


@dataclass
class GrayFailArm:
    """One gray-failure run of the self-healing matmul."""

    label: str
    detector: str
    seed: int
    elapsed: float
    #: sim time the gray fault started (-1 in the ``none`` baseline)
    fault_at: float
    #: sim time of the first proactive watchdog migration (-1 = never)
    demote_at: float
    slow_migrations: int
    failovers: int
    requeued_blocks: int
    lease_expiries: int
    #: race reports + access count (``sanitize=True`` runs only)
    races: Optional[tuple] = None
    tracked_accesses: int = 0

    @property
    def time_to_demote(self) -> float:
        """Seconds from fault injection to the watchdog pulling the
        session off the sick server (-1 when either never happened)."""
        if self.fault_at < 0 or self.demote_at < 0:
            return -1.0
        return self.demote_at - self.fault_at


def grayfail_experiment(
    scenario: str = "slow_server",
    detector: str = "adaptive",
    seed: int = 0,
    n: int = 400,
    blk: int = 80,
    sanitize: bool = False,
) -> GrayFailArm:
    """One self-healing matmul run (2 sessions) under a *gray* fault.

    Unlike :func:`failover_experiment` the injected server never dies: in
    ``slow_server`` its CPU is throttled 8x (it keeps heartbeating, so
    the lease never expires); in ``degraded_link`` its access link gains
    half a second of latency (sick but connected).  The ``detector`` arm picks
    what catches it: ``adaptive`` sessions run the phi-accrual
    throughput-floor watchdog, ``fixed`` sessions have only the binary
    lease — they ride the sick server to the end of the job.  The
    slowdown ratio between the arms (each against its own same-seed
    ``none`` baseline) is the headline of ``BENCH_grayfail.json``.
    """
    from ..faults import ChaosController, FaultPlan

    if scenario not in GRAYFAIL_SCENARIOS:
        raise ValueError(f"unknown grayfail scenario {scenario!r}")
    if detector not in GRAYFAIL_DETECTORS:
        raise ValueError(f"unknown detector arm {detector!r}")
    requirement = "host_cpu_free > 0.1\nhost_status_age < 10"
    request_at = 6.0
    cluster, dep, servers, services, responders = _failover_world(
        seed, sanitize=sanitize, watchdog=(detector == "adaptive"))
    name_of = {s.addr: s.name for s in servers}
    out: dict = {}

    def arm_chaos(plan):
        chaos = ChaosController(dep, plan)
        for sname, worker in services.items():
            chaos.register_daemon(sname, "worker", worker)
        for sname, responder in responders.items():
            chaos.register_daemon(sname, "lease", responder)
        chaos.start()

    def driver():
        from ..core import smart_sessions

        yield cluster.sim.timeout(request_at)
        client = dep.client_for(cluster.host("cli"))
        out["client"] = client
        sessions = yield from smart_sessions(
            client, requirement, 2, service_port=SERVICE_PORT, mss=BULK_MSS)
        out["sessions"] = sessions
        if scenario != "none":
            # ~2 healthy block cycles first, so the adaptive watchdog has
            # a learned progress baseline before the gray fault lands
            fault_at = cluster.sim.now + 8.0
            victim = name_of[sessions[0].addr]
            out["fault_at"] = fault_at
            if scenario == "slow_server":
                plan = FaultPlan().slow_host(
                    fault_at, victim, factor=10.0, duration=3600.0)
            else:  # degraded_link: the victim's access link goes sick.
                # Pure latency, no loss: +500 ms of RTT collapses TCP
                # throughput (the window over a 1 s RTT) while the lease
                # heartbeat still answers well inside its 2 s timeout —
                # loss would hand the binary detector an expiry and turn
                # the gray fault black
                sw = "sw-g1" if int(victim[1:]) < 3 else "sw-g2"
                plan = FaultPlan().degrade_link(
                    fault_at, victim, sw, duration=3600.0, latency=0.5)
            arm_chaos(plan)
        prog = MatMulMaster(cluster.host("cli"))
        result = yield from prog.run(sessions, n=n, blk=blk)
        for session in sessions:
            session.close()
        out["result"] = result

    proc = cluster.sim.process(driver(), name="grayfail-driver")
    _drive(cluster, proc)
    result = out["result"]
    watchdog_log = sorted(
        entry for s in out["sessions"] for entry in s.watchdog_log
    )
    return GrayFailArm(
        label=scenario,
        detector=detector,
        seed=seed,
        elapsed=result.elapsed,
        fault_at=out.get("fault_at", -1.0),
        demote_at=watchdog_log[0][0] if watchdog_log else -1.0,
        slow_migrations=sum(s.slow_migrations for s in out["sessions"]),
        failovers=result.failovers,
        requeued_blocks=result.requeued_blocks,
        lease_expiries=sum(s.lease_expiries for s in out["sessions"]),
        races=(tuple(cluster.sanitizer.races)
               if cluster.sanitizer is not None else None),
        tracked_accesses=(cluster.sanitizer.accesses
                          if cluster.sanitizer is not None else 0),
    )


# ---------------------------------------------------------------------------
# Fig 5.3 — rshaper / massd calibration
# ---------------------------------------------------------------------------

def shaper_calibration(tests: int = 10, seed: int = 0):
    """rshaper-set bandwidth vs measured massd throughput (Fig 5.3).

    Test *i* transfers ``data = 10000·(i+1)`` KB with the server shaped to
    ``bw = 1 %`` of that figure in KB/s — the thesis' parameterisation
    ``(data, blk, bw)`` with ``bw = data/100``.  Returns
    ``[(bw_set_kbps, measured_kbps)]``.
    """
    points = []
    for i in range(tests):
        data_kb = 10000 * (i + 1)
        bw_kbps = data_kb / 100.0
        cluster = Cluster(seed=seed + i)
        server = cluster.add_host("server")
        client = cluster.add_host("client")
        sw = cluster.add_switch("sw")
        cluster.link(server, sw)
        cluster.link(sw, client)
        cluster.finalize()
        shape_host_egress(server, rate_mbps=bw_kbps * 1024 * 8 / 1e6)
        FileServer(server, port=SERVICE_PORT, mss=BULK_MSS).start()
        out: dict = {}

        def download():
            conn = yield from client.stack.tcp.connect(
                server.addr, SERVICE_PORT, mss=BULK_MSS
            )
            massd = MassdClient(client)
            result = yield from massd.run([conn], data_kb=data_kb, blk_kb=100)
            out["kbps"] = result.throughput_kbps

        proc = cluster.sim.process(download())
        _drive(cluster, proc, horizon=360000.0)
        points.append((bw_kbps, out["kbps"]))
    return points


# ---------------------------------------------------------------------------
# Tables 5.7–5.9 / Figs 5.4–5.6 — massd: random sets vs Smart
# ---------------------------------------------------------------------------

#: the thesis' file-server split (§5.3.2)
MASSD_GROUP1 = ("mimas", "telesto", "lhost")
MASSD_GROUP2 = ("dione", "titan-x", "pandora-x")


@dataclass
class MassdArm:
    label: str
    servers: list[str]
    throughput_kbps: float
    elapsed: float
    #: canonical kernel event trace (schedule-sanitizer runs only)
    event_trace: Optional[tuple[str, ...]] = None
    #: race reports + access count from the happens-before sanitizer
    #: (``sanitize=True`` runs only)
    races: Optional[tuple] = None
    tracked_accesses: int = 0
    #: deterministic event-attribution dict (``profile=True`` runs only)
    attribution: Optional[dict] = None


def massd_experiment(
    group1_mbps: float,
    group2_mbps: float,
    requirement: str,
    n_servers: int,
    random_sets: Sequence[Sequence[str]],
    data_kb: int = 50000,
    blk_kb: int = 100,
    client_host: str = "sagit",
    seed: int = 0,
    tie_break_seed: Optional[int] = None,
    trace_events: bool = False,
    sanitize: bool = False,
    profile: bool = False,
) -> list[MassdArm]:
    """One thesis massd comparison (Tables 5.7/5.8/5.9).

    Six file servers in two rshaper-limited groups; each random arm uses a
    fixed server set from the thesis, the smart arm queries the wizard with
    a ``monitor_network_bw`` requirement.  ``tie_break_seed``/
    ``trace_events`` arm the schedule sanitizer (see
    :func:`matmul_experiment`).
    """
    arms: list[MassdArm] = []
    all_arms: list[tuple[str, Optional[Sequence[str]]]] = [
        (f"random{i + 1}", tuple(s)) for i, s in enumerate(random_sets)
    ]
    all_arms.append(("smart", None))

    for label, fixed_servers in all_arms:
        cluster = build_testbed(seed=seed, tie_break_seed=tie_break_seed,
                                trace_events=trace_events, sanitize=sanitize,
                                profile=profile)
        net = cluster.network
        dep = Deployment(cluster, wizard_host=cluster.host("dalmatian"))
        # three groups: the client's own, and the two file-server groups,
        # each monitored by one of its members so the group's shaper is
        # visible to that monitor's outbound probes
        # monitor-only group for the client's network: the client machine is
        # not a candidate server, but its group needs a network monitor so
        # path metrics to the file-server groups exist
        dep.add_group("campus", monitor_host=cluster.host(client_host), servers=[])
        dep.add_group("group-1", monitor_host=cluster.host(MASSD_GROUP1[0]),
                      servers=[cluster.host(n) for n in MASSD_GROUP1])
        dep.add_group("group-2", monitor_host=cluster.host(MASSD_GROUP2[0]),
                      servers=[cluster.host(n) for n in MASSD_GROUP2])
        for name in MASSD_GROUP1:
            shape_host_egress(cluster.host(name), group1_mbps)
        for name in MASSD_GROUP2:
            shape_host_egress(cluster.host(name), group2_mbps)
        for name in MASSD_GROUP1 + MASSD_GROUP2:
            FileServer(cluster.host(name), port=SERVICE_PORT, mss=BULK_MSS).start()
        dep.start()
        out: dict = {}

        def driver():
            yield cluster.sim.timeout(dep.warm_up_seconds() + 4.0)
            client_h = cluster.host(client_host)
            client = dep.client_for(client_h)
            if fixed_servers is None:
                conns = yield from client.smart_sockets(
                    requirement, n_servers, service_port=SERVICE_PORT, mss=BULK_MSS
                )
            else:
                conns = []
                for sname in fixed_servers:
                    conn = yield from client_h.stack.tcp.connect(
                        net.resolve(sname), SERVICE_PORT, mss=BULK_MSS
                    )
                    conns.append(conn)
            massd = MassdClient(client_h)
            result = yield from massd.run(conns, data_kb=data_kb, blk_kb=blk_kb)
            out["result"] = result

        proc = cluster.sim.process(driver())
        _drive(cluster, proc, horizon=360000.0)
        result = out["result"]
        arms.append(MassdArm(
            label=label,
            servers=[net.hostname_of(a) for a in result.servers],
            throughput_kbps=result.throughput_kbps,
            elapsed=result.elapsed,
            event_trace=(tuple(cluster.event_trace.canonical_lines())
                         if cluster.event_trace is not None else None),
            races=(tuple(cluster.sanitizer.races)
                   if cluster.sanitizer is not None else None),
            tracked_accesses=(cluster.sanitizer.accesses
                              if cluster.sanitizer is not None else 0),
            attribution=(cluster.profiler.attribution()
                         if cluster.profiler is not None else None),
        ))
    return arms
