"""Experiment harness regenerating every evaluation table and figure."""

from .experiments import (
    MASSD_GROUP1,
    MASSD_GROUP2,
    MassdArm,
    MatmulArm,
    PAPER_SIZE_GROUPS,
    TESTBED_SERVER_NAMES,
    bandwidth_probe_table,
    knee_slopes,
    massd_experiment,
    matmul_experiment,
    matrix_benchmark,
    resource_usage,
    rtt_vs_size,
    shaper_calibration,
    six_paths,
)
from .reporting import ComparisonRow, format_comparison, format_table, series_to_text

__all__ = [
    "rtt_vs_size",
    "knee_slopes",
    "six_paths",
    "bandwidth_probe_table",
    "PAPER_SIZE_GROUPS",
    "resource_usage",
    "matrix_benchmark",
    "matmul_experiment",
    "MatmulArm",
    "shaper_calibration",
    "massd_experiment",
    "MassdArm",
    "MASSD_GROUP1",
    "MASSD_GROUP2",
    "TESTBED_SERVER_NAMES",
    "format_table",
    "format_comparison",
    "ComparisonRow",
    "series_to_text",
]
