"""Table/series formatting for the experiment harness.

Every benchmark prints the same rows/series the thesis reports, plus a
paper-vs-measured comparison where the thesis gives concrete numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

__all__ = ["format_table", "ComparisonRow", "format_comparison", "series_to_text"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Plain-text aligned table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.3f}"
    if isinstance(value, (list, tuple)):
        return ", ".join(str(v) for v in value)
    return str(value)


@dataclass
class ComparisonRow:
    """One paper-vs-measured line for EXPERIMENTS.md."""

    label: str
    paper: Any
    measured: Any
    note: str = ""


def format_comparison(rows: Sequence[ComparisonRow], title: str = "") -> str:
    return format_table(
        ["metric", "paper", "measured", "note"],
        [(r.label, r.paper, r.measured, r.note) for r in rows],
        title=title,
    )


def series_to_text(series: Sequence[tuple], x_label: str, y_label: str,
                   max_points: int = 40, title: str = "") -> str:
    """Down-sampled (x, y) listing for figure-style outputs."""
    n = len(series)
    step = max(1, n // max_points)
    picked = list(series[::step])
    if n and series[-1] not in picked:
        picked.append(series[-1])
    return format_table([x_label, y_label], picked, title=title)
