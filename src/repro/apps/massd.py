"""``massd`` — the massive-download program (thesis §5.3.2).

Downloads one logical file from several servers at once "by using the same
algorithm as the matrix multiplication program": the data is cut into
fixed-size blocks, each connection fetches its next block as soon as the
previous one lands, so faster servers serve more blocks and aggregate
throughput is the performance metric.

The thesis drives it as ``massd (data, blk, bw)`` with sizes in KBytes and
the *rshaper*-imposed bandwidth in KB/s — :class:`MassdClient.run` mirrors
that parameterisation (we take sizes in KB too).

Self-healing (HA extension): ``run`` accepts
:class:`~repro.core.session.SmartSession` objects alongside plain
connections — a fetcher whose server dies requeues only the in-flight
block and fails over to a replacement file server.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..net.shaper import TokenBucket
from ..net.tcp import ConnectionClosed
from ..sim import Interrupt
from ..cluster.host import SmartHost

__all__ = ["FileServer", "MassdClient", "MassdResult", "shape_host_egress"]

MASSD_PORT = 9000
KB = 1024


def _is_session(entry) -> bool:
    """Duck-typed check for :class:`~repro.core.session.SmartSession`
    (kept structural so the apps stay import-independent of core)."""
    return hasattr(entry, "failover")


def _addr_of(entry) -> str:
    return entry.addr if _is_session(entry) else entry.remote_addr


def shape_host_egress(host: SmartHost, rate_mbps: float,
                      burst_bytes: int = 1600) -> TokenBucket:
    """Attach an rshaper-style token bucket to every egress channel of the
    host, capping its transmit bandwidth (thesis' *rshaper* role).

    The default burst of ~one MTU frame matters twice: it is small enough
    that the network monitor's 1600/2900-byte probe pair *sees* the shaped
    rate (the second fragment has to wait for tokens), and it still lets
    sustained TCP converge on exactly ``rate_mbps``.
    """
    if rate_mbps <= 0:
        raise ValueError(f"rate must be positive, got {rate_mbps}")
    bucket = TokenBucket(rate_bps=rate_mbps * 1e6, burst_bytes=burst_bytes)
    for nic in host.node.nics:
        nic.channel.shaper = bucket
    return bucket


class FileServer:
    """Serves ``GET`` block requests on the service port."""

    def __init__(self, host: SmartHost, port: int = MASSD_PORT, mss: int = 8192,
                 read_from_disk: bool = False):
        self.host = host
        self.port = port
        self.mss = mss
        self.read_from_disk = read_from_disk
        self.blocks_served = 0
        self.bytes_served = 0
        self._proc = None
        self._sessions: list = []

    def start(self) -> None:
        self._proc = self.host.sim.process(
            self._serve(), name=f"massd-server@{self.host.name}"
        )

    def stop(self) -> None:
        for p in [self._proc] + self._sessions:
            if p is not None and p.is_alive:
                p.interrupt("stop")

    def _serve(self):
        listener = self.host.stack.tcp.listen(self.port, mss=self.mss)
        try:
            while True:
                conn = yield listener.accept()
                self._sessions.append(
                    self.host.sim.process(
                        self._session(conn), name=f"massd-sess@{self.host.name}"
                    )
                )
        except Interrupt:
            listener.close()

    def _session(self, conn):
        try:
            while True:
                try:
                    msg, _ = yield conn.recv()
                except ConnectionClosed:
                    return
                if msg[0] != "GET":
                    continue
                _, block_id, nbytes = msg
                if self.read_from_disk:
                    yield self.host.machine.disk.read(nbytes)
                self.blocks_served += 1
                self.bytes_served += nbytes
                try:
                    conn.send(("BLOCK", block_id), nbytes)
                except ConnectionClosed:
                    return  # downloader died mid-read; drop the block
        except Interrupt:
            conn.close()


@dataclass
class MassdResult:
    """Outcome of one download."""

    data_kb: int
    blk_kb: int
    servers: list[str]
    elapsed: float
    blocks_per_server: dict[str, int] = field(default_factory=dict)
    #: blocks requeued after a connection died mid-fetch (checkpoints)
    requeued_blocks: int = 0
    #: successful server replacements across all session slots
    failovers: int = 0

    @property
    def total_bytes(self) -> int:
        return self.data_kb * KB

    @property
    def throughput_kbps(self) -> float:
        """Average throughput in KB/s — the thesis' reported metric."""
        return self.total_bytes / KB / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def throughput_mbps(self) -> float:
        return self.total_bytes * 8 / 1e6 / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def total_blocks(self) -> int:
        n_blocks, rem = divmod(self.data_kb, self.blk_kb)
        return n_blocks + (1 if rem else 0)

    def fingerprint(self) -> str:
        """Canonical result digest for the chaos explorer's oracle: the
        download's block accounting (every block fetched exactly once),
        independent of which servers served it."""
        import hashlib

        done = sum(self.blocks_per_server.values())
        digest = hashlib.sha256(
            f"massd:{self.data_kb}:{self.blk_kb}:"
            f"blocks:{done}/{self.total_blocks}".encode()
        )
        return digest.hexdigest()[:16]


class MassdClient:
    """The downloader (runs on the client host)."""

    def __init__(self, host: SmartHost):
        self.host = host
        self.sim = host.sim

    def _checkpoint(self, tasks: list, task, stats: dict) -> None:
        """Requeue the in-flight block after its connection died — the
        whole checkpoint (see :meth:`MatMulMaster._checkpoint`; the chaos
        explorer's seeded mutants override this)."""
        tasks.append(task)
        stats["requeued"] += 1

    def run(self, conns, data_kb: int, blk_kb: int):
        """Process generator -> :class:`MassdResult`.

        ``conns`` are established TCP connections to file servers (from
        :meth:`~repro.core.client.SmartClient.smart_sockets` or manual
        connects for the random baseline).
        """
        if not conns:
            raise ValueError("no server connections supplied")
        if data_kb <= 0 or blk_kb <= 0:
            raise ValueError("data and block sizes must be positive")
        sim = self.sim
        n_blocks, rem = divmod(data_kb, blk_kb)
        sizes = [blk_kb * KB] * n_blocks + ([rem * KB] if rem else [])
        tasks = list(enumerate(sizes))
        tasks.reverse()
        done_counts: dict[str, int] = {_addr_of(c): 0 for c in conns}
        stats = {"requeued": 0, "failovers": 0}
        finished = sim.event()
        live = {"n": len(conns)}
        t0 = sim.now

        def fetch(entry):
            session = entry if _is_session(entry) else None
            conn = session.conn if session is not None else entry
            try:
                while tasks:
                    task = tasks.pop()
                    block_id, nbytes = task
                    try:
                        conn.send(("GET", block_id, nbytes), 16)
                        msg, got = yield conn.recv()
                    except ConnectionClosed:
                        # checkpoint: only the lost shard goes back
                        self._checkpoint(tasks, task, stats)
                        if session is None:
                            break  # plain socket: retire, peers absorb
                        conn = yield from session.failover()
                        if conn is None:
                            break  # slot lost for good
                        stats["failovers"] += 1
                        continue
                    if msg[0] != "BLOCK" or msg[1] != block_id:
                        raise RuntimeError(f"protocol violation: {msg[:2]}")
                    if got != nbytes:
                        raise RuntimeError(
                            f"short block {block_id}: {got} != {nbytes}"
                        )
                    addr = conn.remote_addr
                    done_counts[addr] = done_counts.get(addr, 0) + 1
            except Interrupt:
                return  # cancelled (e.g. server died); leave tasks to peers
            live["n"] -= 1
            if live["n"] == 0 and not finished.triggered:
                finished.succeed()

        fetchers = [
            sim.process(fetch(entry), name=f"massd-fetch-{_addr_of(entry)}")
            for entry in conns
        ]
        yield finished
        assert all(f.triggered for f in fetchers), "a fetcher never finished"
        if tasks:
            raise RuntimeError(
                f"{len(tasks)} blocks undone: every server slot died"
            )
        return MassdResult(
            data_kb=data_kb,
            blk_kb=blk_kb,
            servers=[_addr_of(c) for c in conns],
            elapsed=sim.now - t0,
            blocks_per_server=done_counts,
            requeued_blocks=stats["requeued"],
            failovers=stats["failovers"],
        )
