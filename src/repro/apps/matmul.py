"""Distributed square-matrix multiplication (thesis §5.3.1, Appendix C.1).

The program has the thesis' two modes:

* **local** — multiply two matrices on one machine (also usable with real
  NumPy data via :func:`local_multiply`, which tests use as ground truth);
* **distributed** — a master splits the result matrix into ``blk``-sized
  blocks; for each block it ships the corresponding row-stripe of A and
  column-stripe of B to a worker, which multiplies and returns the result
  block (Fig C.2's master/worker cooperation).  Dispatch is dynamic — a
  worker gets its next block when the previous result returns — so faster
  servers naturally take more blocks, exactly the property that makes
  server *selection* matter.

Cost model: multiplying an ``r×n`` stripe by an ``n×c`` stripe is
``2·r·c·n`` flops, executed on the worker's processor-sharing CPU at its
machine's ``matmul`` speed.  Transfers are real simulated TCP messages of
``8`` bytes per matrix entry, so communication overhead (which the thesis
blames for the shrinking 6v6 gain) emerges from the network model.

Self-healing (HA extension): ``run`` accepts
:class:`~repro.core.session.SmartSession` objects alongside plain
connections.  A feeder whose connection dies mid-block *checkpoints* by
requeueing only the in-flight block, then asks its session for a
replacement server; if failover succeeds the feeder resumes on the new
worker, otherwise it retires and its remaining work drains to the peers.
The run fails loudly only when every slot died with blocks left undone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..net.tcp import ConnectionClosed
from ..sim import Interrupt, Simulator
from ..cluster.host import SmartHost

__all__ = [
    "MatMulWorker",
    "MatMulMaster",
    "MatMulResult",
    "local_multiply",
    "blocked_multiply",
    "block_grid",
    "flops_for",
    "DOUBLE_BYTES",
]

DOUBLE_BYTES = 8
MATMUL_PORT = 9000


def _is_session(entry) -> bool:
    """Duck-typed check for :class:`~repro.core.session.SmartSession`
    (kept structural so the apps stay import-independent of core)."""
    return hasattr(entry, "failover")


def _addr_of(entry) -> str:
    return entry.addr if _is_session(entry) else entry.remote_addr


def flops_for(rows: int, cols: int, inner: int) -> float:
    """Multiply-add count of an ``rows×inner @ inner×cols`` product."""
    return 2.0 * rows * cols * inner


def block_grid(n: int, blk: int) -> list[tuple[int, int, int, int]]:
    """Result-matrix tiling: list of (row0, rows, col0, cols)."""
    if n <= 0 or blk <= 0:
        raise ValueError(f"need positive n and blk, got {n}, {blk}")
    edges = list(range(0, n, blk))
    out = []
    for r0 in edges:
        rows = min(blk, n - r0)
        for c0 in edges:
            cols = min(blk, n - c0)
            out.append((r0, rows, c0, cols))
    return out


def local_multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Plain local mode (vector multiplication row-by-column)."""
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} x {b.shape}")
    return a @ b


def blocked_multiply(a: np.ndarray, b: np.ndarray, blk: int) -> np.ndarray:
    """Blocked local multiply — the same tiling the distributed mode uses;
    tests assert it matches :func:`local_multiply` exactly."""
    n, m = a.shape[0], b.shape[1]
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} x {b.shape}")
    if n != m or n != a.shape[1]:
        # thesis uses square matrices; keep general anyway
        pass
    out = np.zeros((n, m), dtype=np.result_type(a, b))
    for r0, rows, c0, cols in block_grid(max(n, m), blk):
        if r0 >= n or c0 >= m:
            continue
        rows = min(rows, n - r0)
        cols = min(cols, m - c0)
        out[r0:r0 + rows, c0:c0 + cols] = a[r0:r0 + rows, :] @ b[:, c0:c0 + cols]
    return out


class MatMulWorker:
    """The worker service: listens on the service port, multiplies stripes."""

    def __init__(self, host: SmartHost, port: int = MATMUL_PORT, mss: int = 8192):
        self.host = host
        self.port = port
        self.mss = mss
        self.blocks_done = 0
        self._proc = None
        self._sessions: list = []

    def start(self) -> None:
        self._proc = self.host.sim.process(
            self._serve(), name=f"matmul-worker@{self.host.name}"
        )

    def stop(self) -> None:
        for p in [self._proc] + self._sessions:
            if p is not None and p.is_alive:
                p.interrupt("stop")

    def _serve(self):
        listener = self.host.stack.tcp.listen(self.port, mss=self.mss)
        try:
            while True:
                conn = yield listener.accept()
                self._sessions.append(
                    self.host.sim.process(
                        self._session(conn), name=f"matmul-sess@{self.host.name}"
                    )
                )
        except Interrupt:
            listener.close()

    def _session(self, conn):
        machine = self.host.machine
        try:
            while True:
                try:
                    msg, _ = yield conn.recv()
                except ConnectionClosed:
                    return
                if msg[0] != "TASK":
                    continue
                _, block_id, rows, cols, inner, a_stripe, b_stripe = msg
                yield machine.compute(
                    flops_for(rows, cols, inner), kind="matmul",
                    name=f"matmul-blk{block_id}",
                )
                if a_stripe is not None and b_stripe is not None:
                    block = a_stripe @ b_stripe
                else:
                    block = None
                self.blocks_done += 1
                try:
                    conn.send(
                        ("RESULT", block_id, block),
                        max(1, rows * cols * DOUBLE_BYTES),
                    )
                except ConnectionClosed:
                    return  # master died mid-compute; drop the result
        except Interrupt:
            conn.close()


@dataclass
class MatMulResult:
    """Outcome of one distributed run."""

    n: int
    blk: int
    servers: list[str]
    elapsed: float
    blocks_per_server: dict[str, int] = field(default_factory=dict)
    product: Optional[np.ndarray] = None
    #: blocks requeued after a connection died mid-multiply (checkpoints)
    requeued_blocks: int = 0
    #: successful server replacements across all session slots
    failovers: int = 0

    @property
    def total_flops(self) -> float:
        return flops_for(self.n, self.n, self.n)

    @property
    def total_blocks(self) -> int:
        return len(block_grid(self.n, self.blk))

    def fingerprint(self) -> str:
        """Canonical result digest for the chaos explorer's bit-exactness
        oracle: with real matrices it hashes the product bytes (a lost or
        corrupted block changes it); without, the block-accounting totals.
        Two runs that computed the same answer — regardless of which
        servers did the work — share a fingerprint."""
        import hashlib

        digest = hashlib.sha256(f"matmul:{self.n}:{self.blk}:".encode())
        if self.product is not None:
            digest.update(np.ascontiguousarray(self.product).tobytes())
        else:
            done = sum(self.blocks_per_server.values())
            digest.update(f"blocks:{done}/{self.total_blocks}".encode())
        return digest.hexdigest()[:16]


class MatMulMaster:
    """The master program (runs on the client host).

    ``run(conns, n, blk)`` is a process generator: it drives the given
    worker connections to completion and returns a :class:`MatMulResult`.
    Pass real matrices via ``a``/``b`` to verify numerics; omit them for a
    timing-only run (zero-copy symbolic payloads, same wire/CPU costs).
    """

    def __init__(self, host: SmartHost):
        self.host = host
        self.sim: Simulator = host.sim

    def _checkpoint(self, tasks: list, task, stats: dict) -> None:
        """Requeue the in-flight block after its connection died — this
        *is* the whole checkpoint.  Kept as a hook so the chaos explorer
        can substitute a seeded-bug mutant (``repro explore --mutant``)
        and prove the fault-space search finds real checkpoint defects."""
        tasks.append(task)
        stats["requeued"] += 1

    def run(self, conns, n: int, blk: int,
            a: Optional[np.ndarray] = None, b: Optional[np.ndarray] = None):
        if not conns:
            raise ValueError("no worker connections supplied")
        if (a is None) != (b is None):
            raise ValueError("supply both matrices or neither")
        if a is not None and (a.shape != (n, n) or b.shape != (n, n)):
            raise ValueError(f"matrices must be {n}x{n}")
        sim = self.sim
        tasks = list(enumerate(block_grid(n, blk)))
        tasks.reverse()  # pop() takes them in natural order
        product = np.zeros((n, n), dtype=float) if a is not None else None
        done_counts: dict[str, int] = {_addr_of(c): 0 for c in conns}
        stats = {"requeued": 0, "failovers": 0}
        t0 = sim.now
        finished = sim.event()
        outstanding = {"n": 0}

        def feed(entry):
            """One per-slot driver: send task, await result, repeat.  A
            session-backed slot survives its worker: the in-flight block
            is requeued (the checkpoint) and the slot fails over."""
            session = entry if _is_session(entry) else None
            conn = session.conn if session is not None else entry
            try:
                while tasks:
                    task = tasks.pop()
                    block_id, (r0, rows, c0, cols) = task
                    if a is not None:
                        a_stripe = a[r0:r0 + rows, :]
                        b_stripe = b[:, c0:c0 + cols]
                    else:
                        a_stripe = b_stripe = None
                    nbytes = (rows * n + n * cols) * DOUBLE_BYTES
                    try:
                        conn.send(
                            ("TASK", block_id, rows, cols, n,
                             a_stripe, b_stripe),
                            nbytes,
                        )
                        msg, _ = yield conn.recv()
                    except ConnectionClosed:
                        # checkpoint: only the lost shard goes back
                        self._checkpoint(tasks, task, stats)
                        if session is None:
                            break  # plain socket: retire, peers absorb
                        conn = yield from session.failover()
                        if conn is None:
                            break  # slot lost for good
                        stats["failovers"] += 1
                        continue
                    if msg[0] != "RESULT" or msg[1] != block_id:
                        raise RuntimeError(f"protocol violation: {msg[:2]}")
                    if product is not None:
                        product[r0:r0 + rows, c0:c0 + cols] = msg[2]
                    addr = conn.remote_addr
                    done_counts[addr] = done_counts.get(addr, 0) + 1
            except Interrupt:
                return  # cancelled (e.g. worker died); leave tasks to peers
            outstanding["n"] -= 1
            if outstanding["n"] == 0 and not finished.triggered:
                finished.succeed()

        outstanding["n"] = len(conns)
        feeders = [
            sim.process(feed(entry), name=f"matmul-feed-{_addr_of(entry)}")
            for entry in conns
        ]
        yield finished
        assert all(f.triggered for f in feeders), "a feeder never finished"
        if tasks:
            raise RuntimeError(
                f"{len(tasks)} blocks undone: every server slot died"
            )
        return MatMulResult(
            n=n,
            blk=blk,
            servers=[_addr_of(c) for c in conns],
            elapsed=sim.now - t0,
            blocks_per_server=done_counts,
            product=product,
            requeued_blocks=stats["requeued"],
            failovers=stats["failovers"],
        )
