"""Applications from the thesis' evaluation: matmul and massd."""

from .massd import FileServer, MassdClient, MassdResult, shape_host_egress
from .matmul import (
    DOUBLE_BYTES,
    MatMulMaster,
    MatMulResult,
    MatMulWorker,
    block_grid,
    blocked_multiply,
    flops_for,
    local_multiply,
)

__all__ = [
    "MatMulWorker",
    "MatMulMaster",
    "MatMulResult",
    "local_multiply",
    "blocked_multiply",
    "block_grid",
    "flops_for",
    "DOUBLE_BYTES",
    "FileServer",
    "MassdClient",
    "MassdResult",
    "shape_host_egress",
]
