"""Happens-before race sanitizer for the simulated control plane.

The control plane is a web of concurrent daemons (probe -> sysmon ->
transmitter -> receiver -> wizard) coordinating through shared-memory
segments.  The kernel's schedule sanitizer (:mod:`repro.sim.kernel`)
proves outcomes do not depend on tie-break order; this module proves the
stronger property that every pair of conflicting shared accesses is
*ordered* by a happens-before edge — FastTrack-style dynamic race
detection with vector clocks, adapted to a discrete-event kernel.

Happens-before edge inventory
-----------------------------
* **schedule/resume** — an event captures the scheduling context's clock
  when it is triggered (``succeed``/``fail``); a process joins the clock
  of the event that resumed it.  This single mechanism covers process
  spawn, timeout wake-ups, interrupts and direct event hand-offs.
* **message** — an originated :class:`~repro.net.packet.Datagram` is
  stamped with the sender's clock in ``Node.send`` and joined into the
  delivery context in ``Node.deliver_local``, so the edge survives NIC
  queueing and fragment reassembly.
* **lock** — :class:`~repro.sim.resources.Resource` accumulates the
  releasing context's clock and joins it into the next grant, totally
  ordering critical sections per semaphore.
* **channel** — :class:`~repro.sim.resources.Store` piggybacks the
  putter's clock on buffered items; direct hand-offs ride the schedule
  edge.
* **condition-join** — an :class:`~repro.sim.kernel.AnyOf` /
  :class:`~repro.sim.kernel.AllOf` joins the clocks of its already
  processed members when it fires.

Only state wrapped with :func:`shared` is tracked (the wizard-side
sysdb/netdb/secdb and the monitor status maps in the stock deployment);
everything else runs at full speed.  Vector clocks are plain
``{thread_id: count}`` dicts with copy-on-escape: capturing a clock for
an event marks it shared, and the owning thread copies before its next
increment, so the common schedule-heavy path never copies at all.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from itertools import count
from os.path import basename
from typing import Any, Optional
from weakref import WeakKeyDictionary

from ..lang.diagnostics import Diagnostic, Severity, make, register_codes

__all__ = ["HBSanitizer", "RaceReport", "Access", "shared"]

#: the dynamic sanitizer's diagnostic code (static R-series rules are
#: REPRO301+ in :mod:`repro.analysis.concurrency`)
RACE_CODE = "REPRO300"

register_codes({RACE_CODE: (Severity.ERROR,
                            "unordered shared-state access (data race)")})

#: frames from these files are kernel plumbing, not the racing site
_INTERNAL_SUFFIXES = ("/hb.py", "/resources.py", "/kernel.py")

ROOT_THREAD = 0


def _site(limit: int = 2) -> tuple[str, int]:
    """Stack-lite location of the access: ``"file:line in func"`` chain
    (innermost first, kernel frames skipped) plus the innermost line."""
    frames: list[str] = []
    line = 0
    f = sys._getframe(2)
    while f is not None and len(frames) < limit:
        filename = f.f_code.co_filename.replace("\\", "/")
        if not filename.endswith(_INTERNAL_SUFFIXES):
            if not frames:
                line = f.f_lineno
            frames.append(
                f"{basename(filename)}:{f.f_lineno} in {f.f_code.co_name}")
        f = f.f_back
    return " <- ".join(frames) or "<unknown>", line


@dataclass(frozen=True)
class Access:
    """One tracked read or write of a :func:`shared` variable."""

    op: str           # "read" | "write"
    thread: int
    thread_name: str
    time: float
    site: str
    line: int
    #: the accessor's own clock component at the access — with the full
    #: clock of a *later* context this is enough for the FastTrack
    #: happens-before test (``clock[thread] >= own`` iff ordered)
    own: int

    def describe(self) -> str:
        return f"{self.op} by {self.thread_name} at t={self.time:.6f} ({self.site})"


@dataclass(frozen=True)
class RaceReport:
    """Two conflicting, happens-before-unordered accesses."""

    var: str
    first: Access
    second: Access

    def to_diagnostic(self) -> Diagnostic:
        return make(
            RACE_CODE,
            f"unordered {self.first.op}/{self.second.op} on {self.var!r}: "
            f"{self.first.describe()} vs {self.second.describe()}; "
            f"no happens-before edge orders these accesses",
            line=self.second.line,
        )

    def render(self, filename: str = "<simulation>") -> str:
        return self.to_diagnostic().render(filename)


class _VarState:
    """FastTrack per-variable state: last write + reads since."""

    __slots__ = ("name", "last_write", "reads")

    def __init__(self, name: str):
        self.name = name
        self.last_write: Optional[Access] = None
        self.reads: dict[int, Access] = {}


def shared(segment, name: str):
    """Mark a :class:`~repro.sim.resources.Segment` for access tracking.

    Returns the segment so construction reads naturally::

        self.db = shared(shm.segment(key), name="sysdb")

    Tracking is inert until :meth:`Simulator.enable_sanitizer` installs a
    detector on the segment's simulator.
    """
    segment.hb_name = name
    return segment


class HBSanitizer:
    """Vector-clock happens-before checker (install via
    :meth:`~repro.sim.kernel.Simulator.enable_sanitizer`).

    The kernel calls the ``on_*``/``begin_*``/``end_*`` hooks; components
    never talk to this class directly — they only mark state with
    :func:`shared`.  After the run, :attr:`races` holds one
    :class:`RaceReport` per distinct unordered pair of access sites.
    """

    def __init__(self, max_reports: int = 50):
        self.max_reports = max_reports
        self.races: list[RaceReport] = []
        self.accesses = 0
        self.messages = 0
        self._clocks: dict[int, dict[int, int]] = {ROOT_THREAD: {ROOT_THREAD: 0}}
        self._escaped: dict[int, bool] = {ROOT_THREAD: False}
        self._names: dict[int, str] = {ROOT_THREAD: "main"}
        self._proc_ids: "WeakKeyDictionary[Any, int]" = WeakKeyDictionary()
        self._next_tid = count(1)
        #: context stack: ("proc", tid) frames for process/root contexts,
        #: ("event", clock) frames while an event's callbacks run
        self._frames: list[tuple[str, Any]] = [("proc", ROOT_THREAD)]
        self._vars: dict[Any, _VarState] = {}
        self._seen_pairs: set[tuple] = set()
        self._now = lambda: 0.0

    # -- clock plumbing ---------------------------------------------------
    def _own_clock(self, tid: int) -> dict[int, int]:
        """The thread's clock, copied first if a capture escaped it."""
        clock = self._clocks[tid]
        if self._escaped[tid]:
            clock = dict(clock)
            self._clocks[tid] = clock
            self._escaped[tid] = False
        return clock

    def _capture(self) -> dict[int, int]:
        """Current context's clock as a frozen-by-convention snapshot."""
        kind, data = self._frames[-1]
        if kind == "proc":
            self._escaped[data] = True
            return self._clocks[data]
        return data

    @staticmethod
    def _merged(a: Optional[dict], b: Optional[dict]) -> dict[int, int]:
        if not a:
            return dict(b) if b else {}
        if not b:
            return dict(a)
        out = dict(a)
        for tid, n in b.items():
            if n > out.get(tid, 0):
                out[tid] = n
        return out

    def _join_frame(self, clock: Optional[dict]) -> None:
        """Merge ``clock`` into the current context."""
        if not clock:
            return
        kind, data = self._frames[-1]
        if kind == "proc":
            own = self._own_clock(data)
            for tid, n in clock.items():
                if n > own.get(tid, 0):
                    own[tid] = n
        else:
            self._frames[-1] = ("event", self._merged(data, clock))

    # -- kernel hooks -----------------------------------------------------
    def attach(self, sim) -> None:
        self._now = lambda: sim.now

    def on_schedule(self, event) -> None:
        """An event was triggered: it carries the trigger context's clock."""
        event._hb = self._capture()

    def join_event(self, event, clock: Optional[dict]) -> None:
        """Add an extra inbound edge (lock grant, buffered store item)."""
        if clock:
            event._hb = self._merged(event._hb, clock)

    def join_condition(self, cond) -> None:
        """AnyOf/AllOf fired: join every processed member's clock."""
        clock = cond._hb
        for ev in cond.events:
            if ev.callbacks is None and ev._hb is not None:
                clock = self._merged(clock, ev._hb)
        cond._hb = clock

    def begin_event(self, event) -> None:
        self._frames.append(("event", event._hb))

    def end_event(self) -> None:
        self._frames.pop()

    def begin_process(self, proc, cause) -> None:
        tid = self._proc_ids.get(proc)
        if tid is None:
            tid = next(self._next_tid)
            self._proc_ids[proc] = tid
            self._clocks[tid] = {tid: 0}
            self._escaped[tid] = False
            self._names[tid] = proc.name or f"proc-{tid}"
        own = self._own_clock(tid)
        cause_clock = None if cause is None else cause._hb
        if cause_clock:
            for t, n in cause_clock.items():
                if n > own.get(t, 0):
                    own[t] = n
        own[tid] = own.get(tid, 0) + 1
        self._frames.append(("proc", tid))

    def end_process(self) -> None:
        self._frames.pop()

    # -- message edges ----------------------------------------------------
    def stamp(self, dgram) -> None:
        """Record the sender's clock on an originated datagram."""
        dgram.hb_clock = self._capture()

    def on_message(self, dgram) -> None:
        """Join a delivered datagram's origin clock into the delivery
        context (the edge survives NIC queues and reassembly)."""
        clock = getattr(dgram, "hb_clock", None)
        if clock is not None:
            self.messages += 1
            self._join_frame(clock)

    # -- access tracking ---------------------------------------------------
    def on_access(self, segment, op: str) -> None:
        state = self._vars.get(segment)
        if state is None:
            state = self._vars[segment] = _VarState(segment.hb_name)
        kind, data = self._frames[-1]
        if kind == "proc":
            tid = data
            clock = self._own_clock(tid)
        else:
            # access from a bare event callback: one-shot context ordered
            # after everything the event saw, concurrent with the rest
            tid = next(self._next_tid)
            clock = self._clocks[tid] = dict(data) if data else {}
            self._escaped[tid] = False
            self._names[tid] = f"callback-{tid}"
        clock[tid] = clock.get(tid, 0) + 1
        site, line = _site()
        acc = Access(op=op, thread=tid, thread_name=self._names[tid],
                     time=self._now(), site=site, line=line, own=clock[tid])
        self.accesses += 1
        prev = state.last_write
        if prev is not None and prev.thread != tid and \
                clock.get(prev.thread, 0) < prev.own:
            self._report(state, prev, acc)
        if op == "write":
            for rd in state.reads.values():
                if rd.thread != tid and clock.get(rd.thread, 0) < rd.own:
                    self._report(state, rd, acc)
            state.last_write = acc
            state.reads.clear()
        else:
            state.reads[tid] = acc

    def _report(self, state: _VarState, first: Access, second: Access) -> None:
        key = (state.name, first.site, first.op, second.site, second.op)
        if key in self._seen_pairs or len(self.races) >= self.max_reports:
            return
        self._seen_pairs.add(key)
        self.races.append(RaceReport(var=state.name, first=first, second=second))

    # -- results -----------------------------------------------------------
    @property
    def tracked_vars(self) -> int:
        return len(self._vars)

    def diagnostics(self) -> list[Diagnostic]:
        return [r.to_diagnostic() for r in self.races]

    def summary(self) -> str:
        return (f"{len(self.races)} race(s), {self.accesses} tracked "
                f"access(es) across {self.tracked_vars} shared var(s), "
                f"{self.messages} message edge(s)")
