"""Deterministic simulation profiler (``Simulator.enable_profile``).

Where the happens-before sanitizer answers "is this world racy?", the
profiler answers "where does this world spend its events?".  It hangs
off the same three kernel seams the other opt-in instruments use — one
``is None`` check each in :meth:`~repro.sim.kernel.Simulator._schedule`,
:meth:`~repro.sim.kernel.Simulator.step` and
:meth:`~repro.sim.kernel.Process._resume` — and records only quantities
that are functions of the simulated execution, never of the wall clock:

* **per-process resume counts** — how many times each named process was
  handed the CPU (the per-handler event count the H-series lints rank
  against);
* **per-process allocation counts** — how many events each process
  *scheduled* while active (every :class:`~repro.sim.kernel.Event`
  passes through ``_schedule`` exactly once, so this is the kernel's
  object-allocation pressure, attributed to whoever caused it);
* **per-event-type counts** — Timeout vs Process vs bare Event volume;
* **sim-time spans** — first/last resume time per process.

Because nothing here draws randomness or reads a clock, two runs of the
same seeded world produce *identical* attribution dicts — the property
``repro profile`` pins in CI and the reason profile JSON can feed
``repro check --perf --profile`` without destabilizing its byte-exact
output.  Wall-clock throughput (events/sec of real time) is measured by
the *runner* around the whole run and reported separately, outside the
attribution.

The flamegraph-style text tree groups processes by their name prefix
(``receiver-listen``/``receiver-session`` fold under ``receiver``), so
a glance shows which subsystem owns the event budget.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Event, Process

__all__ = ["SimProfiler", "flame_tree", "merge_attributions"]

#: processes spawned without a name, and events scheduled while no
#: process is active (network callbacks, timers armed at build time)
ROOT_KEY = "<kernel>"

#: separators that end a process-name group prefix (``receiver-listen``
#: and ``receiver-session`` both group under ``receiver``)
_GROUP_SEPS = ("-", ":", "/", ".")


def _group_of(name: str) -> str:
    cut = len(name)
    for sep in _GROUP_SEPS:
        i = name.find(sep)
        if i != -1:
            cut = min(cut, i)
    return name[:cut]


class SimProfiler:
    """Event-attribution collector for one :class:`Simulator` run."""

    def __init__(self) -> None:
        #: process name -> times the process was resumed
        self.resumes: dict[str, int] = {}
        #: process name -> events it scheduled while active
        self.allocations: dict[str, int] = {}
        #: process name -> first / last resume sim-time (split dicts so
        #: the hot hook never builds a tuple)
        self._first: dict[str, float] = {}
        self._last: dict[str, float] = {}
        #: event class -> processed count (keyed by the class object in
        #: the hot hook; rendered to names in :meth:`attribution`)
        self._type_counts: dict[type, int] = {}
        #: the simulator this profiler is attached to (set by
        #: ``enable_profile``); its clock supplies ``sim_time_s`` so the
        #: per-event hook does not have to store a timestamp
        self._sim: Any = None

    def bind_sim(self, sim: Any) -> None:
        self._sim = sim

    # -- kernel hooks (must stay allocation-light and side-effect free;
    # try/except counters because the miss happens once per key, and no
    # running totals — those are sums over the dicts, computed once in
    # :meth:`attribution` instead of twice per event) --------------------
    def on_schedule(self, event: "Event", active: "Process | None") -> None:
        name = active.name if active is not None else ROOT_KEY
        try:
            self.allocations[name] += 1
        except KeyError:
            self.allocations[name] = 1

    def on_event(self, when: float, event: "Event") -> None:
        kind = type(event)
        try:
            self._type_counts[kind] += 1
        except KeyError:
            self._type_counts[kind] = 1

    def on_resume(self, name: str, now: float) -> None:
        key = name or ROOT_KEY
        try:
            self.resumes[key] += 1
        except KeyError:
            self.resumes[key] = 1
            self._first[key] = now
        self._last[key] = now

    # -- reporting -------------------------------------------------------
    def attribution(self) -> dict[str, Any]:
        """The deterministic attribution dict (sorted keys throughout).

        Everything in here is a pure function of the simulated
        execution: identical seeds produce identical dicts, byte for
        byte once JSON-serialized with sorted keys.
        """
        names = sorted(set(self.resumes) | set(self.allocations))
        processes = {}
        for name in names:
            first = self._first.get(name, 0.0)
            last = self._last.get(name, 0.0)
            processes[name] = {
                "resumes": self.resumes.get(name, 0),
                "allocations": self.allocations.get(name, 0),
                "first_s": round(first, 9),
                "last_s": round(last, 9),
            }
        event_types = {kind.__name__: count
                       for kind, count in self._type_counts.items()}
        sim_time = self._sim.now if self._sim is not None else 0.0
        return {
            "processes": processes,
            "event_types": dict(sorted(event_types.items())),
            "total_events": sum(event_types.values()),
            "total_allocations": sum(self.allocations.values()),
            "sim_time_s": round(sim_time, 9),
        }


def merge_attributions(parts: "list[dict[str, Any]]") -> dict[str, Any]:
    """Sum several attribution dicts (one per experiment arm) into one."""
    processes: dict[str, dict[str, Any]] = {}
    event_types: dict[str, int] = {}
    total_events = 0
    total_allocations = 0
    sim_time = 0.0
    for part in parts:
        for name, row in part["processes"].items():
            slot = processes.setdefault(
                name, {"resumes": 0, "allocations": 0,
                       "first_s": row["first_s"], "last_s": row["last_s"]})
            slot["resumes"] += row["resumes"]
            slot["allocations"] += row["allocations"]
            slot["first_s"] = min(slot["first_s"], row["first_s"])
            slot["last_s"] = max(slot["last_s"], row["last_s"])
        for kind, count in part["event_types"].items():
            event_types[kind] = event_types.get(kind, 0) + count
        total_events += part["total_events"]
        total_allocations += part["total_allocations"]
        sim_time += part["sim_time_s"]
    return {
        "processes": dict(sorted(processes.items())),
        "event_types": dict(sorted(event_types.items())),
        "total_events": total_events,
        "total_allocations": total_allocations,
        "sim_time_s": round(sim_time, 9),
    }


def flame_tree(attribution: dict[str, Any], width: int = 24) -> str:
    """A flamegraph-style text tree of the attribution.

    Two levels: name-prefix group, then full process name; each row gets
    a bar proportional to its share of all resumes.  Rows sort by count
    descending, then name — both deterministic — so the rendering is as
    byte-stable as the attribution itself.
    """
    processes: dict[str, dict[str, Any]] = attribution["processes"]
    total = sum(row["resumes"] for row in processes.values()) or 1
    groups: dict[str, list[str]] = {}
    for name in processes:
        groups.setdefault(_group_of(name), []).append(name)

    def bar(count: int) -> str:
        filled = round(width * count / total)
        return "█" * filled + "·" * (width - filled)

    lines = [f"flame (resume share of {total} resumes, "
             f"{attribution['total_allocations']} allocations)"]
    group_rows = sorted(
        groups.items(),
        key=lambda kv: (-sum(processes[n]["resumes"] for n in kv[1]), kv[0]))
    for group, names in group_rows:
        gcount = sum(processes[n]["resumes"] for n in names)
        lines.append(f"{group:<28} {bar(gcount)} {100 * gcount / total:5.1f}%"
                     f"  ({gcount} resumes)")
        if len(names) == 1 and names[0] == group:
            continue
        for name in sorted(names, key=lambda n: (-processes[n]["resumes"], n)):
            row = processes[name]
            lines.append(
                f"  {name:<26} {bar(row['resumes'])} "
                f"{100 * row['resumes'] / total:5.1f}%"
                f"  ({row['resumes']} resumes, "
                f"{row['allocations']} alloc, "
                f"t={row['first_s']:.3f}..{row['last_s']:.3f}s)")
    return "\n".join(lines)
