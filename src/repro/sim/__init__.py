"""Discrete-event simulation substrate (kernel, IPC primitives, RNG streams)."""

from .kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .clock import HostClock
from .hb import Access, HBSanitizer, RaceReport, shared
from .profile import SimProfiler
from .rand import RandomStreams
from .resources import Resource, Segment, SharedMemory, Store
from .trace import EventTrace, TraceRecord, Tracer, attach_node_tap, diff_traces

__all__ = [
    "HBSanitizer",
    "RaceReport",
    "Access",
    "shared",
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "SimulationError",
    "Store",
    "Resource",
    "SharedMemory",
    "Segment",
    "RandomStreams",
    "HostClock",
    "SimProfiler",
    "Tracer",
    "TraceRecord",
    "attach_node_tap",
    "EventTrace",
    "diff_traces",
]
