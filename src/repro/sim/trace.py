"""Lightweight event tracing for debugging simulated systems.

A :class:`Tracer` collects timestamped, categorised records during a run —
packet deliveries, daemon decisions, experiment milestones — without
perturbing the simulation.  Components that support tracing accept a
tracer and call :meth:`Tracer.log`; helpers below attach taps to network
nodes so packet flows can be traced without touching component code.

Typical use::

    tracer = Tracer(sim, categories={"wizard", "net"})
    attach_node_tap(tracer, some_node)
    ... run ...
    print(tracer.format())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from .kernel import Simulator

__all__ = ["Tracer", "TraceRecord", "attach_node_tap"]


@dataclass(frozen=True)
class TraceRecord:
    time: float
    category: str
    message: str

    def __str__(self) -> str:
        return f"[{self.time:12.6f}] {self.category:>8}  {self.message}"


class Tracer:
    """Bounded in-memory trace log with category filtering."""

    def __init__(self, sim: Simulator, categories: Optional[Iterable[str]] = None,
                 max_records: int = 100_000):
        if max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records}")
        self.sim = sim
        #: None = trace everything; otherwise only these categories
        self.categories = set(categories) if categories is not None else None
        self.max_records = max_records
        self.records: list[TraceRecord] = []
        self.dropped = 0

    def wants(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    def log(self, category: str, message: str) -> None:
        if not self.wants(category):
            return
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(TraceRecord(self.sim.now, category, message))

    # -- querying -----------------------------------------------------------
    def select(self, category: Optional[str] = None,
               since: float = 0.0) -> list[TraceRecord]:
        return [
            r for r in self.records
            if (category is None or r.category == category) and r.time >= since
        ]

    def format(self, category: Optional[str] = None, last: int = 0) -> str:
        records = self.select(category)
        if last:
            records = records[-last:]
        lines = [str(r) for r in records]
        if self.dropped:
            lines.append(f"... {self.dropped} records dropped (max_records)")
        return "\n".join(lines)

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0


def attach_node_tap(tracer: Tracer, node, category: str = "net") -> None:
    """Trace every datagram delivered locally at ``node``."""

    previous = node.tap

    def tap(dgram, n):
        if previous is not None:
            previous(dgram, n)
        tracer.log(
            category,
            f"{n.name} <- {dgram.proto} {dgram.src}:{dgram.sport} -> "
            f":{dgram.dport} ({dgram.size}B id={dgram.id})",
        )

    node.tap = tap
