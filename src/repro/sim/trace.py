"""Lightweight event tracing for debugging simulated systems.

A :class:`Tracer` collects timestamped, categorised records during a run —
packet deliveries, daemon decisions, experiment milestones — without
perturbing the simulation.  Components that support tracing accept a
tracer and call :meth:`Tracer.log`; helpers below attach taps to network
nodes so packet flows can be traced without touching component code.

Typical use::

    tracer = Tracer(sim, categories={"wizard", "net"})
    attach_node_tap(tracer, some_node)
    ... run ...
    print(tracer.format())
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Optional

from .kernel import Event, Process, Simulator, Timeout

__all__ = ["Tracer", "TraceRecord", "attach_node_tap",
           "EventTrace", "diff_traces"]


@dataclass(frozen=True)
class TraceRecord:
    time: float
    category: str
    message: str

    def __str__(self) -> str:
        return f"[{self.time:12.6f}] {self.category:>8}  {self.message}"


class Tracer:
    """Bounded in-memory trace log with category filtering."""

    def __init__(self, sim: Simulator, categories: Optional[Iterable[str]] = None,
                 max_records: int = 100_000):
        if max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records}")
        self.sim = sim
        #: None = trace everything; otherwise only these categories
        self.categories = set(categories) if categories is not None else None
        self.max_records = max_records
        self.records: list[TraceRecord] = []
        self.dropped = 0

    def wants(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    def log(self, category: str, message: str) -> None:
        if not self.wants(category):
            return
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(TraceRecord(self.sim.now, category, message))

    # -- querying -----------------------------------------------------------
    def select(self, category: Optional[str] = None,
               since: float = 0.0) -> list[TraceRecord]:
        return [
            r for r in self.records
            if (category is None or r.category == category) and r.time >= since
        ]

    def format(self, category: Optional[str] = None, last: int = 0) -> str:
        selected = self.select(category)
        records = selected[-last:] if last else selected
        lines = [str(r) for r in records]
        # make every truncation visible: an elided head when `last` cuts
        # the selection, a dropped-tail footer when the buffer capped out
        if len(records) < len(selected):
            lines.insert(
                0, f"... showing last {len(records)} of {len(selected)} records")
        if self.dropped:
            lines.append(f"... {self.dropped} records dropped (max_records)")
        return "\n".join(lines)

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0


def _event_label(event: Event) -> str:
    """A stable, content-addressed label for one kernel event.

    Deliberately excludes object identities and payload ``repr``\\ s
    (memory addresses vary between runs); what remains — type, process
    name, timeout delay — plus the exact timestamps is enough to catch
    any behavioural divergence, because a divergent execution shifts
    downstream event *times*.
    """
    if isinstance(event, Process):
        return f"process:{event.name}"
    if isinstance(event, Timeout):
        return f"timeout:{event.delay!r}"
    return type(event).__name__.lower()


class EventTrace:
    """Canonical record of every event the kernel processed.

    The *canonical* form is order-insensitive within one timestamp:
    lines for equal-time events are sorted, so two runs whose only
    difference is the (shuffled) tie-break order of simultaneous events
    produce byte-identical canonical traces — and any run that actually
    *behaves* differently does not.  See the schedule-sanitizer notes in
    :mod:`repro.sim.kernel`.
    """

    __slots__ = ("entries",)

    def __init__(self) -> None:
        #: (time, label) in processing order, appended by the kernel
        self.entries: list[tuple[float, str]] = []

    def record(self, when: float, event: Event) -> None:
        self.entries.append((when, _event_label(event)))

    def __len__(self) -> int:
        return len(self.entries)

    def canonical_lines(self) -> list[str]:
        """One line per event, sorted within equal-timestamp groups.

        Timestamps are rendered with ``repr`` so the lines are exact to
        the last float bit.
        """
        out: list[str] = []
        group: list[str] = []
        group_t: Optional[float] = None
        for when, label in self.entries:
            # exact float equality on purpose: only *identical* timestamps
            # form a tie-break group
            if group_t is None or when == group_t:
                group_t = when
                group.append(label)
                continue
            out.extend(f"{group_t!r} {label}" for label in sorted(group))
            group_t, group = when, [label]
        if group:
            out.extend(f"{group_t!r} {label}" for label in sorted(group))
        return out

    def digest(self) -> str:
        """sha256 over the canonical trace (cheap equality witness)."""
        payload = "\n".join(self.canonical_lines()).encode()
        return hashlib.sha256(payload).hexdigest()


def diff_traces(a: Iterable[str], b: Iterable[str], context: int = 0,
                limit: int = 20) -> list[str]:
    """First divergences between two canonical traces (empty = identical).

    A plain positional diff is the right tool here: canonical traces of
    tie-break-independent runs must match line for line, so the first
    mismatch *is* the finding.  ``limit`` bounds the output.
    """
    a_lines, b_lines = list(a), list(b)
    out: list[str] = []
    for i in range(max(len(a_lines), len(b_lines))):
        left = a_lines[i] if i < len(a_lines) else "<end of trace>"
        right = b_lines[i] if i < len(b_lines) else "<end of trace>"
        if left != right:
            out.append(f"@{i}: - {left}")
            out.append(f"@{i}: + {right}")
            if len(out) >= 2 * limit:
                out.append("... diff truncated")
                break
    return out


def attach_node_tap(tracer: Tracer, node, category: str = "net") -> None:
    """Trace every datagram delivered locally at ``node``."""

    previous = node.tap

    def tap(dgram, n):
        if previous is not None:
            previous(dgram, n)
        tracer.log(
            category,
            f"{n.name} <- {dgram.proto} {dgram.src}:{dgram.sport} -> "
            f":{dgram.dport} ({dgram.size}B id={dgram.id})",
        )

    node.tap = tap
