"""Synchronisation and IPC primitives for simulated processes.

The paper's components coordinate through classic System V IPC: semaphores
and keyed shared-memory segments (thesis Table 4.3).  Inside the event loop
we model the same semantics:

* :class:`Store` — an unbounded (or bounded) FIFO message queue.  UDP/TCP
  socket receive queues and monitor in-boxes are Stores.
* :class:`Resource` — a counted semaphore with FIFO hand-off, used for the
  shared-memory locks.
* :class:`SharedMemory` — a keyed segment registry mirroring the
  ``shmget``/``semget`` key scheme of the paper so a monitor machine and a
  wizard machine can each own segments under keys 1234/1235/1236 and
  4321/5321/6321 without clashing.
"""

from __future__ import annotations

from typing import Any, Optional

from .kernel import Event, Simulator, SimulationError

__all__ = ["Store", "Resource", "SharedMemory", "Segment"]


class StoreFull(SimulationError):
    """Raised when putting into a bounded :class:`Store` past capacity."""


class Store:
    """FIFO queue of items with event-based ``get``.

    ``put`` is immediate (dropping or raising when bounded and full —
    matching how a UDP receive buffer drops datagrams), ``get`` returns an
    :class:`Event` that fires when an item is available.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None,
                 drop_when_full: bool = False):
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.drop_when_full = drop_when_full
        self.items: list[Any] = []
        self._getters: list[Event] = []
        self.dropped = 0  # datagrams lost to a full buffer
        #: putter clocks for buffered items (happens-before sanitizer);
        #: parallel to ``items`` while the sanitizer is enabled
        self._hb_clocks: list[Any] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> bool:
        """Add ``item``; returns ``False`` if it was dropped (bounded+full)."""
        while self._getters:
            getter = self._getters.pop(0)
            if getter.triggered:  # e.g. cancelled by a timeout race
                continue
            getter.succeed(item)
            return True
        if self.capacity is not None and len(self.items) >= self.capacity:
            if self.drop_when_full:
                self.dropped += 1
                return False
            raise StoreFull(f"store at capacity {self.capacity}")
        self.items.append(item)
        hb = self.sim._hb
        if hb is not None:
            # a buffered item carries its putter's clock so the eventual
            # getter inherits the edge even without a direct hand-off
            self._hb_clocks.append(hb._capture())
        return True

    def get(self) -> Event:
        """Event that fires with the oldest item."""
        ev = self.sim.event()
        if self.items:
            ev.succeed(self.items.pop(0))
            hb = self.sim._hb
            if hb is not None and self._hb_clocks:
                hb.join_event(ev, self._hb_clocks.pop(0))
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; ``None`` when empty."""
        if not self.items:
            return None
        item = self.items.pop(0)
        hb = self.sim._hb
        if hb is not None and self._hb_clocks:
            hb._join_frame(self._hb_clocks.pop(0))
        return item

    def cancel(self, getter: Event) -> None:
        """Withdraw a pending :meth:`get` (e.g. its timeout won the race).

        Without this, an abandoned getter silently consumes the next
        ``put`` — for a socket that means a datagram is lost after every
        receive timeout.
        """
        if getter in self._getters:
            self._getters.remove(getter)


class Resource:
    """Counted semaphore with FIFO hand-off.

    >>> lock = Resource(sim, capacity=1)
    >>> # inside a process:
    >>> #   yield lock.acquire()
    >>> #   ... critical section ...
    >>> #   lock.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: list[Event] = []
        #: accumulated releaser clock (happens-before sanitizer): joins
        #: into every later grant so critical sections are totally ordered
        self._hb_clock: Optional[Any] = None

    def acquire(self) -> Event:
        ev = self.sim.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed(self)
            hb = self.sim._hb
            if hb is not None and self._hb_clock is not None:
                hb.join_event(ev, self._hb_clock)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError("release() without matching acquire()")
        hb = self.sim._hb
        if hb is not None:
            self._hb_clock = hb._merged(self._hb_clock, hb._capture())
        while self._waiters:
            waiter = self._waiters.pop(0)
            if waiter.triggered:
                continue
            waiter.succeed(self)  # hand the slot straight over
            return
        self.in_use -= 1

    @property
    def available(self) -> int:
        return self.capacity - self.in_use


class Segment:
    """One keyed shared-memory segment: a value slot plus its semaphore.

    Wrapping a segment with :func:`repro.sim.hb.shared` names it for the
    happens-before sanitizer; every :meth:`read`/:meth:`write` is then a
    tracked access while a sanitizer is enabled on the simulator.
    """

    def __init__(self, sim: Simulator, key: int):
        self.sim = sim
        self.key = key
        self.value: Any = None
        self.lock = Resource(sim, capacity=1)
        self.writes = 0
        self.reads = 0
        #: sanitizer tracking name; set by :func:`repro.sim.hb.shared`
        self.hb_name: Optional[str] = None

    def write(self, value: Any) -> None:
        """Unlocked write (caller holds the semaphore)."""
        hb = self.sim._hb
        if hb is not None and self.hb_name is not None:
            hb.on_access(self, "write")
        self.value = value
        self.writes += 1

    def read(self) -> Any:
        hb = self.sim._hb
        if hb is not None and self.hb_name is not None:
            hb.on_access(self, "read")
        self.reads += 1
        return self.value


class SharedMemory:
    """Registry of :class:`Segment`\\ s addressed by integer key.

    Mirrors the paper's key layout (Table 4.3): the same key addresses the
    semaphore and the memory region, and distinct key ranges on the monitor
    machine vs the wizard machine mean all daemons can coexist on one host.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._segments: dict[int, Segment] = {}

    def segment(self, key: int) -> Segment:
        """Get-or-create the segment for ``key`` (``shmget`` with IPC_CREAT)."""
        seg = self._segments.get(key)
        if seg is None:
            seg = self._segments[key] = Segment(self.sim, key)
        return seg

    def keys(self) -> list[int]:
        return sorted(self._segments)

    def locked_write(self, key: int, value: Any):
        """Process generator: acquire the segment lock, write, release."""
        seg = self.segment(key)
        yield seg.lock.acquire()
        try:
            seg.write(value)
        finally:
            seg.lock.release()

    def locked_read(self, key: int):
        """Process generator: acquire the segment lock, read, release.

        Returns the stored value as the generator's return value.
        """
        seg = self.segment(key)
        yield seg.lock.acquire()
        try:
            return seg.read()
        finally:
            seg.lock.release()
