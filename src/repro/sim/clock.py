"""Per-host wall clocks with injectable skew (gray-failure plumbing).

Every daemon that *stamps* data — the probe's scan times, the system
monitor's record timestamps, the transmitter's snapshot stamps — reads
its host's :class:`HostClock` instead of ``sim.now``.  A healthy clock is
the identity function, so deployments without clock faults behave (and
trace) exactly as before.  The chaos plane's ``skew-clock`` fault sets a
constant offset and/or a linear drift rate; consumers on *other* hosts
must then survive timestamps from the future or the distant past, which
is what the receiver's relative-epoch rebasing (see
:mod:`repro.core.receiver`) is tested against.

The model is the classic two-parameter clock: ``C(t) = t + offset +
drift * (t - t_set)`` where ``t`` is true (simulator) time and ``t_set``
is when the skew was last programmed.  Re-programming steps the clock to
exactly the requested skew (an NTP-style step): accumulated drift error
is discarded, not folded into the new offset.
"""

from __future__ import annotations

from .kernel import Simulator

__all__ = ["HostClock"]


class HostClock:
    """A skewable wall clock attached to one host."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.offset = 0.0
        self.drift = 0.0
        self._set_at = 0.0

    @property
    def skewed(self) -> bool:
        return self.offset != 0.0 or self.drift != 0.0

    def now(self) -> float:
        """The host's idea of the current time."""
        t = self.sim.now
        if self.offset == 0.0 and self.drift == 0.0:
            return t
        return t + self.offset + self.drift * (t - self._set_at)

    def set_skew(self, offset: float, drift: float = 0.0) -> None:
        """Program the clock: constant ``offset`` seconds plus ``drift``
        seconds of error per true second, both measured from now."""
        self.offset = float(offset)
        self.drift = float(drift)
        self._set_at = self.sim.now

    def clear_skew(self) -> None:
        """Step the clock back to true time (an NTP correction)."""
        self.set_skew(0.0, 0.0)
