"""Discrete-event simulation kernel.

The kernel is the substrate every other subsystem (network, hosts, the Smart
socket components) runs on.  It is a compact, from-scratch, generator-based
event loop in the style of SimPy:

* a :class:`Simulator` owns a priority queue of timestamped :class:`Event`\\ s,
* a :class:`Process` wraps a Python generator; each ``yield``\\ ed event
  suspends the process until the event fires,
* :class:`Timeout` models the passage of simulated time,
* :class:`AnyOf` / :class:`AllOf` compose events (used e.g. for
  "receive with timeout" in the UDP socket layer).

Design notes
------------
Simulated time is a ``float`` of seconds.  Events scheduled at equal times are
ordered FIFO by a monotonically increasing sequence number so runs are fully
deterministic.  There is no wall-clock coupling anywhere: a whole testbed
experiment runs in milliseconds of real time.

Schedule sanitizer
------------------
"No outcome depends on the FIFO tie-break" is an *invariant*, and the
kernel can check it TSan-style instead of assuming it:

* :meth:`Simulator.enable_tie_shuffle` inserts a seeded random draw
  between the timestamp and the sequence number in the queue ordering,
  so events at equal times are processed in a (deterministically)
  shuffled order instead of FIFO;
* :meth:`Simulator.enable_event_trace` records every processed event
  into an :class:`~repro.sim.trace.EventTrace`.

The shuffle only randomises *causally independent* simultaneous events:
an event scheduled while another event is being processed is a causal
successor (an ACK sent while handling a segment, a store hand-off, a
frame pushed onto a link) and inherits its cause's tie key, so within
one causal lineage program order survives at any shared timestamp.
Shuffling inside a lineage would reorder cause before effect — e.g. a
burst of same-delay loopback frames would arrive permuted, which is
packet reordering, not a tie-break, and no simulation could (or should)
be invariant under it.  Only root events — those scheduled from outside
the event loop, i.e. genuinely concurrent origins — draw fresh keys.

Running the same experiment twice with *different* shuffle seeds and
diffing the canonical traces (order-insensitive within one timestamp)
proves the execution is tie-break independent: any divergence would
change downstream event times and show up in the diff.

Concurrency sanitizer
---------------------
:meth:`Simulator.enable_sanitizer` installs a happens-before race
detector (:class:`~repro.sim.hb.HBSanitizer`).  The kernel feeds it the
causal skeleton — every event capture on ``succeed``/``fail``, every
process resume, every :class:`AnyOf`/:class:`AllOf` join — while the
resource and network layers add lock, channel and message edges.  All
hooks are behind single ``is None`` checks, so the detector costs
nothing when off.

Profiler
--------
:meth:`Simulator.enable_profile` installs a deterministic event
profiler (:class:`~repro.sim.profile.SimProfiler`): every processed
event, every process resume and every scheduled event (attributed to
the process that scheduled it) is counted, giving per-handler event
attribution that is a pure function of the simulated execution — no
wall clock, no randomness, so dual runs agree byte-for-byte.  Same
``is None`` discipline as the sanitizer: zero hot-path cost when off.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for kernel misuse (yielding non-events, double triggering...)."""


class Interrupt(Exception):
    """Thrown *into* a process when another process interrupts it.

    ``cause`` carries an arbitrary payload describing why the interrupt
    happened (e.g. ``"shutdown"`` when a monitor daemon is stopped).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


def _defuse(event: "Event") -> None:
    """Swallow a failure on an event nobody waits for any more."""
    event._ok = True


# Event states.
PENDING = 0
TRIGGERED = 1  # scheduled for processing, value decided
PROCESSED = 2  # callbacks have run


class Event:
    """A happening at a point in simulated time.

    Events are one-shot: they can succeed (with a value) or fail (with an
    exception) exactly once.  Processes waiting on the event are resumed when
    the simulator processes it.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_state", "_hb",
                 "__weakref__")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = PENDING
        #: vector clock captured at trigger time (sanitizer only)
        self._hb: Any = None

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        if self._state == PENDING:
            raise SimulationError("event value not yet decided")
        return self._ok

    @property
    def value(self) -> Any:
        if self._state == PENDING:
            raise SimulationError("event value not yet decided")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay`` seconds."""
        if self._state != PENDING:
            raise SimulationError("event already triggered")
        self._state = TRIGGERED
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire by raising ``exc`` in waiters."""
        if self._state != PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        self._state = TRIGGERED
        self._ok = False
        self._value = exc
        self.sim._schedule(self, delay)
        return self

    # -- kernel internals ----------------------------------------------------
    def _process_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._state = PROCESSED
        if callbacks:
            for cb in callbacks:
                cb(self)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Run ``cb(event)`` when the event is processed (immediately if done)."""
        if self.callbacks is None:
            cb(self)
        else:
            self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event that fires after a fixed delay; ``yield sim.timeout(d)``."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._state = TRIGGERED
        self._ok = True
        self._value = value
        sim._schedule(self, delay)


class Process(Event):
    """A coroutine-as-process.  The process *is* an event: it triggers with
    the generator's return value when the generator finishes (or fails with
    the uncaught exception).
    """

    __slots__ = ("gen", "name", "_target", "_interrupts", "_started")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise SimulationError(f"Process needs a generator, got {gen!r}")
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Optional[Event] = None
        self._interrupts: list[Interrupt] = []
        self._started = False
        # Kick the process off at the current sim time.
        boot = Event(sim)
        boot.succeed()
        boot.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        return self._state == PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            return
        self._interrupts.append(Interrupt(cause))
        if self._target is not None:
            # Detach from whatever we were waiting for; the event may still
            # fire later but will find no waiter — defuse any failure it
            # carries so an abandoned error does not crash the event loop.
            target, self._target = self._target, None
            if target.callbacks is not None and self._proceed in target.callbacks:
                target.callbacks.remove(self._proceed)
                target.add_callback(_defuse)
        wake = Event(self.sim)
        wake.succeed()
        wake.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        self.sim._active_proc = self
        hb = self.sim._hb
        if hb is not None:
            hb.begin_process(self, event)
        hook = self.sim._profile_resume
        if hook is not None:
            hook(self.name, self.sim._now)
        try:
            while True:
                try:
                    if not self._started:
                        # a generator must be entered before anything can be
                        # thrown into it (interrupt-before-first-run case);
                        # queued interrupts are delivered on the next resume
                        self._started = True
                        target = self.gen.send(None)
                    elif self._interrupts:
                        interrupt = self._interrupts.pop(0)
                        target = self.gen.throw(interrupt)
                    elif event is not None and not event.ok:
                        exc = event.value
                        event._ok = True  # mark as handled by this process
                        target = self.gen.throw(exc)
                    else:
                        target = self.gen.send(event.value if event is not None else None)
                except StopIteration as stop:
                    self._state = PENDING  # allow succeed()
                    self.succeed(stop.value)
                    return
                except Interrupt:
                    raise SimulationError(
                        f"process {self.name!r} did not handle an Interrupt"
                    ) from None

                if not isinstance(target, Event):
                    raise SimulationError(
                        f"process {self.name!r} yielded non-event {target!r}"
                    )
                if target.callbacks is None:
                    # Already processed: loop immediately with its value
                    # (the top of the loop re-raises if it had failed).
                    event = target
                    continue
                self._target = target
                target.add_callback(self._proceed)
                return
        except BaseException as exc:
            if isinstance(exc, SimulationError):
                raise
            self._state = PENDING
            self.fail(exc)
        finally:
            if hb is not None:
                hb.end_process()
            self.sim._active_proc = None

    def _proceed(self, event: Event) -> None:
        self._target = None
        self._resume(event)


class _Condition(Event):
    """Base for AnyOf / AllOf composition events."""

    __slots__ = ("events", "_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._done = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev.value for ev in self.events if ev.processed and ev.ok}

    def _check(self, event: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires as soon as *any* of the composed events fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._state != PENDING:
            # the race is already decided; a losing member that fails late
            # (e.g. a recv() beaten by its timeout, then the connection
            # dies) has no waiter left — defuse so it cannot crash the loop
            event._ok = True
            return
        if not event._ok:
            self.fail(event.value)
            event._ok = True
        else:
            self.succeed(self._collect())
        hb = self.sim._hb
        if hb is not None:
            hb.join_condition(self)


class AllOf(_Condition):
    """Fires when *all* of the composed events have fired."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._state != PENDING:
            event._ok = True  # late member of a failed condition: defuse
            return
        if not event._ok:
            self.fail(event.value)
            event._ok = True
            return
        self._done += 1
        if self._done == len(self.events):
            self.succeed(self._collect())
            hb = self.sim._hb
            if hb is not None:
                hb.join_condition(self)


class Simulator:
    """The event loop.

    >>> sim = Simulator()
    >>> def hello():
    ...     yield sim.timeout(3.0)
    ...     return sim.now
    >>> p = sim.process(hello())
    >>> sim.run()
    >>> p.value
    3.0
    """

    def __init__(self):
        self._queue: list[tuple[float, float, int, Event]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._active_proc: Optional[Process] = None
        #: schedule-sanitizer hooks (both off by default, zero hot-path
        #: cost beyond two ``is None`` checks)
        self._tie_rng: Optional[Any] = None
        self._event_trace: Optional[Any] = None
        #: tie key of the event currently being processed (None outside
        #: :meth:`step`); zero-delay descendants inherit it
        self._current_tie: Optional[float] = None
        #: happens-before sanitizer (None = off, zero hot-path cost)
        self._hb: Optional[Any] = None
        #: deterministic event profiler (None = off, zero hot-path cost);
        #: the three hook callables are cached pre-bound so the hot paths
        #: skip per-call method binding
        self._profile: Optional[Any] = None
        self._profile_schedule: Optional[Callable[..., None]] = None
        self._profile_event: Optional[Callable[..., None]] = None
        self._profile_resume: Optional[Callable[..., None]] = None

    # -- schedule sanitizer --------------------------------------------------
    def enable_tie_shuffle(self, rng) -> None:
        """Shuffle the processing order of equal-timestamp events.

        ``rng`` must be a seeded stream (e.g.
        ``RandomStreams(s).stream("schedule-tiebreak")``): each scheduled
        event draws a tie-break key from it, replacing FIFO order among
        events that share a timestamp while keeping the run fully
        deterministic given the shuffle seed.  Dual runs with different
        shuffle seeds + :meth:`enable_event_trace` turn "the simulation
        does not depend on tie-break order" into a checked invariant.
        """
        self._tie_rng = rng

    def enable_event_trace(self, trace) -> None:
        """Record every processed event into ``trace`` (any object with a
        ``record(when, event)`` method, canonically
        :class:`~repro.sim.trace.EventTrace`)."""
        self._event_trace = trace

    def enable_sanitizer(self, sanitizer=None):
        """Install a happens-before race detector and return it.

        ``sanitizer`` defaults to a fresh
        :class:`~repro.sim.hb.HBSanitizer`.  Only state wrapped with
        :func:`~repro.sim.hb.shared` is tracked; detected races end up
        in ``sanitizer.races`` as
        :class:`~repro.sim.hb.RaceReport` objects.
        """
        if sanitizer is None:
            from .hb import HBSanitizer
            sanitizer = HBSanitizer()
        sanitizer.attach(self)
        self._hb = sanitizer
        return sanitizer

    def enable_profile(self, profiler=None):
        """Install a deterministic event profiler and return it.

        ``profiler`` defaults to a fresh
        :class:`~repro.sim.profile.SimProfiler`.  The profiler counts
        processed events by type, resumes by process name, and scheduled
        events by the process that scheduled them — nothing wall-clock
        or RNG flavored, so a seeded run's attribution is reproducible
        byte-for-byte and the schedule/HB sanitizers stay undisturbed.
        """
        if profiler is None:
            from .profile import SimProfiler
            profiler = SimProfiler()
        bind = getattr(profiler, "bind_sim", None)
        if bind is not None:
            bind(self)
        self._profile = profiler
        self._profile_schedule = profiler.on_schedule
        self._profile_event = profiler.on_event
        self._profile_resume = profiler.on_resume
        return profiler

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_proc

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        # queue order: (time, tie, seq).  tie is 0.0 (pure FIFO) unless the
        # schedule sanitizer shuffles equal-time events; seq keeps the
        # order total so the Event objects are never compared
        if self._tie_rng is None:
            tie = 0.0
        elif self._current_tie is not None:
            # causal successor: keep the cause's tie key so program order
            # within one causal lineage survives at any shared timestamp
            # (seq breaks the tie FIFO).  Without this, a burst of frames
            # scheduled back-to-back onto the same fixed-delay path would
            # be *reordered* on arrival — that is packet reordering, not a
            # tie-break, and go-back-N rightly reacts to it.
            tie = self._current_tie
        else:
            tie = self._tie_rng.random()
        if self._hb is not None:
            self._hb.on_schedule(event)
        hook = self._profile_schedule
        if hook is not None:
            hook(event, self._active_proc)
        heapq.heappush(self._queue, (self._now + delay, tie, next(self._seq), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event.

        If the event carried a failure that no waiter *defused* (by having the
        exception thrown into it), the exception propagates out of the event
        loop — an uncaught crash inside a simulated daemon fails the run
        loudly instead of disappearing.
        """
        when, tie, _, event = heapq.heappop(self._queue)
        self._now = when
        if self._event_trace is not None:
            self._event_trace.record(when, event)
        hook = self._profile_event
        if hook is not None:
            hook(when, event)
        self._current_tie = tie
        hb = self._hb
        if hb is not None:
            hb.begin_event(event)
        try:
            event._process_callbacks()
        finally:
            self._current_tie = None
            if hb is not None:
                hb.end_event()
        if not event._ok:
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                break
            self.step()
        if until is not None:
            self._now = max(self._now, until)
