"""Deterministic, named random-number streams.

Every stochastic element of the simulation (cross traffic, probe jitter,
random server selection, rshaper's random bandwidth draws...) pulls from its
own named substream derived from a single root seed.  Two benefits:

* experiments are exactly reproducible given a seed, and
* adding a new consumer of randomness does not perturb the draws seen by
  existing consumers (streams are independent by name, not by call order).
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator

__all__ = ["RandomStreams"]


class RandomStreams:
    """Factory of independent :class:`random.Random` streams keyed by name."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created on first use)."""
        rng = self._streams.get(name)
        if rng is None:
            material = f"{self.seed}:{name}".encode()
            digest = hashlib.sha256(material).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def uniform(self, name: str, lo: float, hi: float) -> float:
        return self.stream(name).uniform(lo, hi)

    def expovariate(self, name: str, rate: float) -> float:
        return self.stream(name).expovariate(rate)

    def choice(self, name: str, seq):
        return self.stream(name).choice(seq)

    def sample(self, name: str, seq, k: int):
        return self.stream(name).sample(seq, k)

    def randint(self, name: str, lo: int, hi: int) -> int:
        return self.stream(name).randint(lo, hi)

    def jittered(self, name: str, base: float, frac: float) -> Iterator[float]:
        """Infinite generator of ``base`` ± ``frac``·``base`` values."""
        rng = self.stream(name)
        while True:
            yield base * (1.0 + rng.uniform(-frac, frac))
