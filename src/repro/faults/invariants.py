"""Invariant oracles for the chaos explorer (``repro explore``).

A *trial* is one deterministic simulation of a scenario under a
:class:`~repro.faults.plan.FaultPlan`.  The scenario runner boils the run
down to a :class:`TrialOutcome` — plain picklable data, no simulator
objects — and this module judges it against a registry of invariants:

**Safety** (a completed job must be *right*):

``safety.no-crash``
    No unhandled exception escaped the application or a daemon.  The
    fault vocabulary only removes or degrades resources; nothing in it
    licenses a traceback.
``safety.result-fingerprint``
    The result digest is bit-exact against the fault-free oracle run of
    the same scenario (for matmul the digest hashes the product bytes).
``safety.block-accounting``
    Every block completed exactly once: no lost shards, no duplicates.
``safety.lease-owner``
    A session slot never re-adopts a server it already abandoned: every
    departure excluded the server for the rest of the job, so the same
    address appearing twice in one slot's history means the exclusion
    set leaked.  (A *sibling* session may keep riding a server another
    slot excluded — the shared exclusion set is deliberately pessimistic
    and lease expiry does not prove the server dead, so cross-session
    overlap is recorded as telemetry, not flagged.)
``safety.telemetry``
    Recovery counters are consistent: failovers never exceed requeued
    checkpoints, per-session and per-result counts agree, nothing is
    negative.

**Liveness**:

``liveness.deadline``
    The job finishes within a deadline derived from the fault-free
    elapsed time plus the plan's fault horizon — every injected outage
    heals, so a stuck job means a recovery path wedged.

Each violation carries a *fingerprint* — ``invariant@site`` — that the
shrinker preserves while minimizing plans: two plans that trip the same
invariant at the same site count as the same bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Callable, Optional

__all__ = [
    "Violation",
    "TrialOutcome",
    "INVARIANTS",
    "check_all",
    "invariant_names",
]


@dataclass(frozen=True)
class Violation:
    """One invariant breach.  ``site`` locates the failure coarsely —
    stable across plan shrinking — while ``detail`` carries the exact
    numbers for humans."""

    invariant: str
    site: str
    detail: str

    @property
    def fingerprint(self) -> str:
        """The shrinker's equivalence class: invariant id + failure site."""
        return f"{self.invariant}@{self.site}"

    def to_dict(self) -> dict:
        out = asdict(self)
        out["fingerprint"] = self.fingerprint
        return out


@dataclass
class TrialOutcome:
    """Everything the oracles need from one trial, as plain data.

    Produced by :func:`repro.faults.scenarios.run_trial`; deliberately
    free of simulator objects so outcomes cross process boundaries
    (parallel explorer workers) and serialize into corpus artifacts.
    """

    scenario: str
    world_seed: int
    mutant: str = ""
    #: the executed plan, as ``FaultPlan.to_json()``
    plan: dict = field(default_factory=dict)
    #: driver finished with a result before the deadline
    completed: bool = False
    deadline: float = 0.0
    #: sim clock when stepping stopped
    end_time: float = 0.0
    #: job elapsed in sim seconds (-1 when the job never finished)
    elapsed: float = -1.0
    #: result digest (``""`` when the job never finished)
    fingerprint: str = ""
    #: fault-free digest of the same scenario (``""`` = not computed)
    oracle_fingerprint: str = ""
    blocks_done: int = 0
    blocks_total: int = 0
    requeued: int = 0
    #: failovers reported by the application result
    failovers: int = 0
    #: failovers summed over the sessions (must agree with the above)
    session_failovers: int = 0
    lease_expiries: int = 0
    slow_migrations: int = 0
    dead_sessions: int = 0
    #: live sessions riding a server the *shared* exclusion set names —
    #: informational only: a sibling's lease expiry is a pessimistic
    #: signal, and the adoption may have raced the exclusion (seen on
    #: healthy builds under trunk partitions)
    live_on_excluded: list[str] = field(default_factory=list)
    #: addresses adopted twice by one session slot (corpse re-hired)
    rehired_corpses: list[str] = field(default_factory=list)
    #: the documented loud-failure path: every server slot died and the
    #: run aborted with its diagnostic RuntimeError (not an invariant
    #: breach — the plan simply killed everything the job had)
    all_slots_dead: bool = False
    #: unhandled exception, as ``"ExcType: message"`` (``""`` = none)
    exception: str = ""
    #: coarse crash site: ``module.function`` of the deepest repro frame
    exc_site: str = ""
    #: chaos-controller log length (how much of the plan actually fired)
    chaos_applied: int = 0
    #: sha256 of the canonical kernel event trace (trace runs only)
    trace_hash: str = ""

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TrialOutcome":
        return cls(**data)


# ---------------------------------------------------------------------------
# the oracles
# ---------------------------------------------------------------------------

def _no_crash(o: TrialOutcome) -> list[Violation]:
    if not o.exception:
        return []
    return [Violation(
        invariant="safety.no-crash",
        site=o.exc_site or "unknown",
        detail=o.exception,
    )]


def _result_fingerprint(o: TrialOutcome) -> list[Violation]:
    if not (o.completed and o.oracle_fingerprint):
        return []
    if o.fingerprint == o.oracle_fingerprint:
        return []
    return [Violation(
        invariant="safety.result-fingerprint",
        site="result",
        detail=(f"result digest {o.fingerprint} != fault-free oracle "
                f"{o.oracle_fingerprint}"),
    )]


def _block_accounting(o: TrialOutcome) -> list[Violation]:
    if not o.completed or o.blocks_total <= 0:
        return []
    if o.blocks_done == o.blocks_total:
        return []
    site = "blocks.lost" if o.blocks_done < o.blocks_total else "blocks.duplicated"
    return [Violation(
        invariant="safety.block-accounting",
        site=site,
        detail=f"{o.blocks_done} blocks accounted of {o.blocks_total}",
    )]


def _lease_owner(o: TrialOutcome) -> list[Violation]:
    out = []
    if o.rehired_corpses:
        out.append(Violation(
            invariant="safety.lease-owner",
            site="session.rehire",
            detail=("session re-adopted previously-abandoned server(s): "
                    + ", ".join(sorted(o.rehired_corpses))),
        ))
    return out


def _telemetry(o: TrialOutcome) -> list[Violation]:
    out = []
    counters = {
        "requeued": o.requeued, "failovers": o.failovers,
        "session_failovers": o.session_failovers,
        "lease_expiries": o.lease_expiries,
        "slow_migrations": o.slow_migrations,
        "blocks_done": o.blocks_done,
    }
    negative = sorted(k for k, v in counters.items() if v < 0)
    if negative:
        out.append(Violation(
            invariant="safety.telemetry", site="negative",
            detail="negative counter(s): " + ", ".join(negative),
        ))
    if o.completed and o.failovers > o.requeued:
        # every successful failover was preceded by a checkpoint of the
        # in-flight block — more failovers than requeues means a
        # checkpoint was skipped
        out.append(Violation(
            invariant="safety.telemetry", site="failovers>requeued",
            detail=f"{o.failovers} failovers but only {o.requeued} requeued blocks",
        ))
    if o.completed and o.session_failovers != o.failovers:
        out.append(Violation(
            invariant="safety.telemetry", site="failover-counters",
            detail=(f"result counted {o.failovers} failovers, sessions "
                    f"counted {o.session_failovers}"),
        ))
    return out


def _deadline(o: TrialOutcome) -> list[Violation]:
    if o.completed or o.exception or o.all_slots_dead:
        return []
    return [Violation(
        invariant="liveness.deadline",
        site="deadline",
        detail=(f"job not finished by t={o.deadline:.1f}s "
                f"(stopped at t={o.end_time:.1f}s)"),
    )]


#: the registry, in check order (dict insertion order is the verdict order)
INVARIANTS: dict[str, Callable[[TrialOutcome], list[Violation]]] = {
    "safety.no-crash": _no_crash,
    "safety.result-fingerprint": _result_fingerprint,
    "safety.block-accounting": _block_accounting,
    "safety.lease-owner": _lease_owner,
    "safety.telemetry": _telemetry,
    "liveness.deadline": _deadline,
}


def invariant_names() -> list[str]:
    return list(INVARIANTS)


def check_all(outcome: TrialOutcome,
              only: Optional[list[str]] = None) -> list[Violation]:
    """Run every registered oracle over one outcome; violations come back
    in registry order (deterministic for a deterministic outcome)."""
    out: list[Violation] = []
    for name, checker in INVARIANTS.items():
        if only is not None and name not in only:
            continue
        out.extend(checker(outcome))
    return out
