"""Deterministic fault plans.

A :class:`FaultPlan` is a declarative, time-ordered schedule of faults to
throw at a running deployment — the *what* and *when*, with no reference
to live objects, so the same plan replays bit-identically across runs and
can be generated from a seeded RNG (:meth:`FaultPlan.random_plan`).  The
:class:`~repro.faults.controller.ChaosController` is the *how*: it turns
each event into concrete operations on the cluster.

Fault taxonomy (the ``kind`` field of :class:`FaultEvent`):

``crash-host``      power-fail a machine: every daemon dies, every TCP
                    connection is torn down without a FIN, ports and
                    shared memory are wiped.
``restart-host``    power the machine back on and relaunch the daemons
                    it was running (with empty state).
``link-down`` /     hard-partition / heal one link (both directions),
``link-up``         via :meth:`repro.net.link.Link.set_up`.
``kill-daemon`` /   stop / relaunch a single daemon by role name
``restart-daemon``  (``probe``, ``sysmon``, ``netmon``, ``secmon``,
                    ``transmitter``, ``receiver``, ``wizard``).
``loss-burst``      raise random frame loss on every link of one host
                    for a bounded window — how probe-report loss bursts
                    are injected; ``direction`` restricts it to the
                    host's transmit (``tx``) or receive (``rx``) side.

Gray failures (ISSUE 6): faults that *degrade* instead of kill —

``slow-host``       throttle a host's CPU by ``value`` (service times
                    stretch, the host keeps heartbeating: fail-slow).
``degrade-link``    inflate latency / add jitter / reorder / loss on the
                    a<->b link, per direction (``fwd`` = target->peer,
                    ``rev`` = the reverse) so partitions can be
                    asymmetric; parameters ride in ``params``.
``skew-clock``      program a host's wall clock: ``value`` seconds of
                    offset plus an optional ``drift`` rate in ``params``
                    (permanent when ``duration`` is 0).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    import random

__all__ = ["FaultEvent", "FaultPlan", "FAULT_KINDS", "GRAY_KINDS",
           "DAEMON_ROLES", "PLAN_SCHEMA_VERSION"]

#: schema version stamped into :meth:`FaultPlan.to_json` artifacts
PLAN_SCHEMA_VERSION = 1

FAULT_KINDS: frozenset[str] = frozenset({
    "crash-host",
    "restart-host",
    "link-down",
    "link-up",
    "kill-daemon",
    "restart-daemon",
    "loss-burst",
    "slow-host",
    "degrade-link",
    "skew-clock",
})

#: kinds that degrade a component instead of killing it
GRAY_KINDS: frozenset[str] = frozenset({
    "slow-host", "degrade-link", "skew-clock",
})

#: legal per-kind ``direction`` values ("" means both directions)
_DIRECTIONS = {
    "loss-burst": ("", "both", "tx", "rx"),
    "degrade-link": ("", "both", "fwd", "rev"),
}

#: legal ``params`` keys of a degrade-link event
_DEGRADE_KEYS = ("latency", "jitter", "loss", "reorder", "reorder_extra")

#: daemon role names the controller can kill/restart individually —
#: control-plane roles plus the application-plane roles deployments may
#: register with :meth:`~repro.faults.controller.ChaosController.register_daemon`
DAEMON_ROLES: tuple[str, ...] = (
    "probe", "sysmon", "netmon", "secmon", "transmitter", "receiver", "wizard",
    "worker", "fileserver", "lease",
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.  ``target`` is a host name; ``peer`` carries
    the second link endpoint or the daemon role; ``value``/``duration``
    parameterise loss bursts, throttles and skews; ``direction``
    restricts directional faults to one side; ``params`` carries extra
    named knobs as a sorted tuple of ``(key, value)`` pairs (kept a
    tuple so events stay hashable and comparable)."""

    at: float
    kind: str
    target: str
    peer: str = ""
    value: float = 0.0
    duration: float = 0.0
    direction: str = ""
    params: tuple[tuple[str, float], ...] = ()

    def __post_init__(self):
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind in ("kill-daemon", "restart-daemon") \
                and self.peer not in DAEMON_ROLES:
            raise ValueError(f"unknown daemon role {self.peer!r}")
        if self.kind == "loss-burst" and not (0.0 < self.value <= 1.0):
            raise ValueError(f"loss rate must be in (0, 1], got {self.value}")
        if self.direction and self.direction not in \
                _DIRECTIONS.get(self.kind, ("",)):
            raise ValueError(
                f"bad direction {self.direction!r} for {self.kind}"
            )
        if self.kind == "slow-host" and self.value < 1.0:
            raise ValueError(
                f"slow factor must be >= 1, got {self.value}"
            )
        if self.kind == "degrade-link":
            p = dict(self.params)
            unknown = set(p) - set(_DEGRADE_KEYS)
            if unknown:
                raise ValueError(
                    f"unknown degrade params {sorted(unknown)}"
                )
            for key in ("loss", "reorder"):
                if not (0.0 <= p.get(key, 0.0) <= 1.0):
                    raise ValueError(
                        f"degrade {key} must be in [0, 1], got {p[key]}"
                    )
            for key in ("latency", "jitter", "reorder_extra"):
                if p.get(key, 0.0) < 0.0:
                    raise ValueError(
                        f"degrade {key} must be >= 0, got {p[key]}"
                    )
        if self.kind in ("loss-burst", "slow-host", "degrade-link") \
                and self.duration <= 0:
            raise ValueError(
                f"{self.kind} duration must be > 0, got {self.duration}"
            )

    def param(self, key: str, default: float = 0.0) -> float:
        return dict(self.params).get(key, default)

    # -- serialization ----------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form (for :meth:`FaultPlan.to_json`).  Default-valued
        fields are elided so the canonical form is minimal and stable."""
        out: dict = {"at": self.at, "kind": self.kind, "target": self.target}
        if self.peer:
            out["peer"] = self.peer
        if self.value:
            out["value"] = self.value
        if self.duration:
            out["duration"] = self.duration
        if self.direction:
            out["direction"] = self.direction
        if self.params:
            out["params"] = {k: v for k, v in self.params}
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        """Inverse of :meth:`to_dict`; re-runs full validation."""
        unknown = set(data) - {"at", "kind", "target", "peer", "value",
                               "duration", "direction", "params"}
        if unknown:
            raise ValueError(f"unknown event fields {sorted(unknown)}")
        params = data.get("params", {})
        if not isinstance(params, dict):
            raise ValueError(f"params must be a mapping, got {params!r}")
        return cls(
            at=float(data["at"]),
            kind=str(data["kind"]),
            target=str(data["target"]),
            peer=str(data.get("peer", "")),
            value=float(data.get("value", 0.0)),
            duration=float(data.get("duration", 0.0)),
            direction=str(data.get("direction", "")),
            params=tuple(sorted((str(k), float(v)) for k, v in params.items())),
        )

    def describe(self) -> str:
        if self.kind in ("link-down", "link-up"):
            return f"{self.kind} {self.target}<->{self.peer}"
        if self.kind in ("kill-daemon", "restart-daemon"):
            return f"{self.kind} {self.peer}@{self.target}"
        if self.kind == "loss-burst":
            side = f" [{self.direction}]" if self.direction else ""
            return (f"loss-burst {self.target}{side} p={self.value:g} "
                    f"for {self.duration:g}s")
        if self.kind == "slow-host":
            return (f"slow-host {self.target} x{self.value:g} "
                    f"for {self.duration:g}s")
        if self.kind == "degrade-link":
            arrow = {"fwd": "->", "rev": "<-"}.get(self.direction, "<->")
            knobs = " ".join(f"{k}={v:g}" for k, v in self.params)
            return (f"degrade-link {self.target}{arrow}{self.peer} "
                    f"{knobs} for {self.duration:g}s".replace("  ", " "))
        if self.kind == "skew-clock":
            drift = self.param("drift")
            text = f"skew-clock {self.target} offset={self.value:+g}s"
            if drift:
                text += f" drift={drift:g}"
            if self.duration > 0:
                text += f" for {self.duration:g}s"
            return text
        return f"{self.kind} {self.target}"


class FaultPlan:
    """An ordered schedule of :class:`FaultEvent`\\ s with builder helpers.

    Builders return ``self`` so plans chain::

        plan = (FaultPlan()
                .crash_host(5.0, "dione")
                .partition(12.0, "sw-g1", "wiz", duration=30.0)
                .kill_daemon(20.0, "mon2", "transmitter")
                .restart_daemon(25.0, "mon2", "transmitter"))
    """

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self._events: list[FaultEvent] = list(events)
        #: compound-builder call records ``{"builder": name, "args": {...}}``
        #: — provenance metadata for corpus artifacts; the events list is
        #: always the executable truth
        self._provenance: list[dict] = []

    def _record(self, builder: str, **args) -> None:
        self._provenance.append({
            "builder": builder,
            "args": {k: v for k, v in sorted(args.items()) if v is not None},
        })

    # -- builders ---------------------------------------------------------
    def add(self, event: FaultEvent) -> "FaultPlan":
        self._events.append(event)
        return self

    def crash_host(self, at: float, host: str) -> "FaultPlan":
        return self.add(FaultEvent(at, "crash-host", host))

    def restart_host(self, at: float, host: str) -> "FaultPlan":
        return self.add(FaultEvent(at, "restart-host", host))

    def link_down(self, at: float, a: str, b: str) -> "FaultPlan":
        return self.add(FaultEvent(at, "link-down", a, peer=b))

    def link_up(self, at: float, a: str, b: str) -> "FaultPlan":
        return self.add(FaultEvent(at, "link-up", a, peer=b))

    def partition(self, at: float, a: str, b: str,
                  duration: Optional[float] = None) -> "FaultPlan":
        """Down the a<->b link; heal it ``duration`` seconds later."""
        self._record("partition", at=at, a=a, b=b, duration=duration)
        self.link_down(at, a, b)
        if duration is not None:
            if duration <= 0:
                raise ValueError(f"partition duration must be > 0, got {duration}")
            self.link_up(at + duration, a, b)
        return self

    def flap_link(self, at: float, a: str, b: str, *,
                  period: float, count: int) -> "FaultPlan":
        """``count`` down/up cycles: down at ``at``, up half a period
        later, repeating every ``period`` seconds."""
        if period <= 0 or count <= 0:
            raise ValueError("flap needs period > 0 and count > 0")
        self._record("flap_link", at=at, a=a, b=b, period=period, count=count)
        for i in range(count):
            self.link_down(at + i * period, a, b)
            self.link_up(at + i * period + period / 2.0, a, b)
        return self

    def kill_daemon(self, at: float, host: str, role: str) -> "FaultPlan":
        return self.add(FaultEvent(at, "kill-daemon", host, peer=role))

    def restart_daemon(self, at: float, host: str, role: str) -> "FaultPlan":
        return self.add(FaultEvent(at, "restart-daemon", host, peer=role))

    def loss_burst(self, at: float, host: str, rate: float,
                   duration: float, direction: str = "both") -> "FaultPlan":
        """Drop each frame on every link of ``host`` with probability
        ``rate`` for ``duration`` seconds (probe-report loss bursts).
        ``direction`` narrows the burst to the host's transmit (``tx``)
        or receive (``rx``) side — real NICs often fail one way."""
        if duration <= 0:
            raise ValueError(f"burst duration must be > 0, got {duration}")
        return self.add(FaultEvent(
            at, "loss-burst", host, value=rate, duration=duration,
            direction="" if direction == "both" else direction,
        ))

    # -- gray failures (degrade, do not kill) ------------------------------
    def slow_host(self, at: float, host: str, factor: float,
                  duration: float) -> "FaultPlan":
        """Throttle ``host``'s CPU to ``1/factor`` of its rated speed for
        ``duration`` seconds: service times stretch, probes and leases
        keep answering — the canonical fail-slow server."""
        return self.add(FaultEvent(
            at, "slow-host", host, value=factor, duration=duration,
        ))

    def degrade_link(self, at: float, a: str, b: str, *, duration: float,
                     direction: str = "both", latency: float = 0.0,
                     jitter: float = 0.0, loss: float = 0.0,
                     reorder: float = 0.0) -> "FaultPlan":
        """Degrade the a<->b link for ``duration`` seconds: ``latency``
        seconds of extra one-way delay, uniform [0, ``jitter``] delay
        noise, random ``loss``, and a ``reorder`` fraction of frames
        delivered late.  ``direction='fwd'`` degrades only a->b,
        ``'rev'`` only b->a — an asymmetric gray partition."""
        params = tuple(sorted(
            (k, float(v)) for k, v in (("latency", latency),
                                       ("jitter", jitter), ("loss", loss),
                                       ("reorder", reorder)) if v
        ))
        return self.add(FaultEvent(
            at, "degrade-link", a, peer=b, duration=duration,
            direction="" if direction == "both" else direction,
            params=params,
        ))

    def skew_clock(self, at: float, host: str, offset: float, *,
                   drift: float = 0.0, duration: float = 0.0) -> "FaultPlan":
        """Program ``host``'s wall clock ``offset`` seconds away from true
        time (plus ``drift`` seconds of error per second).  A ``duration``
        of 0 leaves the skew in place; otherwise an NTP-style correction
        steps the clock back after ``duration`` seconds."""
        params = (("drift", float(drift)),) if drift else ()
        return self.add(FaultEvent(
            at, "skew-clock", host, value=offset, duration=duration,
            params=params,
        ))

    # -- convenience scenarios (the HA acceptance faults) ------------------
    def kill_wizard_during_request(
        self, at: float, wizard_host: str,
        restart_after: Optional[float] = None,
    ) -> "FaultPlan":
        """Take one wizard *replica* fully dark at ``at``: both its wizard
        (so in-flight UDP requests time out) and its receiver (so the
        replica would be stale even if revived).  Clients must fail over
        to the surviving replicas.  With ``restart_after`` the replica
        comes back that many seconds later — quarantine decay should then
        let clients re-adopt it."""
        self._record("kill_wizard_during_request", at=at,
                     wizard_host=wizard_host, restart_after=restart_after)
        self.kill_daemon(at, wizard_host, "wizard")
        self.kill_daemon(at, wizard_host, "receiver")
        if restart_after is not None:
            if restart_after <= 0:
                raise ValueError(
                    f"restart_after must be > 0, got {restart_after}"
                )
            self.restart_daemon(at + restart_after, wizard_host, "receiver")
            self.restart_daemon(at + restart_after, wizard_host, "wizard")
        return self

    def kill_server_mid_stream(
        self, at: float, server_host: str,
        restart_after: Optional[float] = None,
    ) -> "FaultPlan":
        """Power-fail an application server at ``at`` while connections
        are streaming: TCP teardown with no FIN, so the client side sees
        a reset (or a health-lease expiry) and the self-healing session
        must requeue the in-flight shard and fail over to a replacement
        server.  With ``restart_after`` the host restarts later."""
        self._record("kill_server_mid_stream", at=at,
                     server_host=server_host, restart_after=restart_after)
        self.crash_host(at, server_host)
        if restart_after is not None:
            if restart_after <= 0:
                raise ValueError(
                    f"restart_after must be > 0, got {restart_after}"
                )
            self.restart_host(at + restart_after, server_host)
        return self

    def gray_failure_storm(
        self, at: float, *, duration: float,
        slow_host: str = "", slow_factor: float = 8.0,
        link: Optional[tuple[str, str]] = None, latency: float = 0.25,
        loss: float = 0.05, skew_host: str = "", skew_offset: float = 30.0,
        drift: float = 0.0,
    ) -> "FaultPlan":
        """The gray acceptance compound: everything degrades at once but
        nothing dies — a fail-slow server (``slow_host`` throttled by
        ``slow_factor``), an asymmetric sick link (only the forward
        direction of ``link`` gains ``latency``/``loss``) and a skewed
        reporter clock on ``skew_host``, all for ``duration`` seconds.
        Components whose argument is empty are skipped; at least one
        must be given."""
        if not (slow_host or link or skew_host):
            raise ValueError("gray_failure_storm needs at least one victim")
        self._record("gray_failure_storm", at=at, duration=duration,
                     slow_host=slow_host or None, slow_factor=slow_factor,
                     link=list(link) if link is not None else None,
                     latency=latency, loss=loss, skew_host=skew_host or None,
                     skew_offset=skew_offset, drift=drift)
        if slow_host:
            self.slow_host(at, slow_host, slow_factor, duration)
        if link is not None:
            a, b = link
            self.degrade_link(at, a, b, duration=duration,
                              direction="fwd", latency=latency, loss=loss)
        if skew_host:
            self.skew_clock(at, skew_host, skew_offset, drift=drift,
                            duration=duration)
        return self

    # -- reading ----------------------------------------------------------
    def events(self) -> list[FaultEvent]:
        """Time-ordered events; ties keep insertion order (stable sort),
        so a plan is a deterministic program."""
        return sorted(self._events, key=lambda e: e.at)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self.events())

    @property
    def horizon(self) -> float:
        """Time of the last scheduled event (0 for an empty plan)."""
        if not self._events:
            return 0.0
        return max(e.at + e.duration for e in self._events)

    @property
    def provenance(self) -> list[dict]:
        """Compound-builder call records, in call order (metadata only)."""
        return list(self._provenance)

    # -- serialization ------------------------------------------------------
    def to_json(self) -> dict:
        """Plain-data form of the plan: the full event list (insertion
        order, so same-time ties replay identically) plus the
        compound-builder provenance.  ``from_json(to_json(p))`` is the
        identity on events and provenance — the backbone of replayable
        corpus artifacts (``tests/faults/corpus/CE-*.json``)."""
        return {
            "version": PLAN_SCHEMA_VERSION,
            "events": [e.to_dict() for e in self._events],
            "provenance": [dict(p) for p in self._provenance],
        }

    @classmethod
    def from_json(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_json` output.  Every event is
        re-validated through :class:`FaultEvent`, so a corrupt artifact
        fails loudly instead of replaying something else."""
        version = data.get("version", PLAN_SCHEMA_VERSION)
        if version != PLAN_SCHEMA_VERSION:
            raise ValueError(f"unsupported plan schema version {version!r}")
        plan = cls(FaultEvent.from_dict(e) for e in data.get("events", ()))
        plan._provenance = [dict(p) for p in data.get("provenance", ())]
        return plan

    def canonical_text(self) -> str:
        """Canonical JSON of the executable part of the plan (events only,
        sorted keys, no whitespace) — the input to :meth:`fingerprint`."""
        return json.dumps(
            [e.to_dict() for e in self._events],
            sort_keys=True, separators=(",", ":"),
        )

    def fingerprint(self) -> str:
        """Hex digest identifying this exact event schedule.  Two plans
        with the same fingerprint replay identically (provenance is
        metadata and deliberately excluded)."""
        digest = hashlib.sha256(self.canonical_text().encode())
        return digest.hexdigest()[:16]

    # -- randomised plans ---------------------------------------------------
    @classmethod
    def random_plan(
        cls,
        rng: "random.Random",
        *,
        horizon: float,
        hosts: Iterable[str],
        links: Iterable[tuple[str, str]] = (),
        daemons: Iterable[tuple[str, str]] = (),
        n_events: int = 6,
        mean_outage: float = 10.0,
        gray: bool = False,
    ) -> "FaultPlan":
        """Generate a seeded random plan: every fault that takes something
        down schedules the matching recovery, so the system always gets a
        chance to heal before ``horizon``.

        ``rng`` should come from a named
        :class:`~repro.sim.rand.RandomStreams` stream — the plan is then a
        pure function of the seed.  With ``gray=True`` the menu grows the
        degradation kinds (``slow-host``, ``skew-clock``, and
        ``degrade-link`` when links are given); the default draw sequence
        is untouched, so pre-existing seeded plans replay byte-identically.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        hosts = sorted(hosts)
        links = sorted(tuple(l) for l in links)
        daemons = sorted(tuple(d) for d in daemons)
        if not hosts:
            raise ValueError("random_plan needs at least one host")
        plan = cls()
        plan._record("random_plan", horizon=horizon, n_events=n_events,
                     mean_outage=mean_outage, gray=gray or None)
        menu = ["crash-host", "loss-burst"]
        if links:
            menu.append("link-down")
        if daemons:
            menu.append("kill-daemon")
        if gray:
            # appended after the legacy kinds: rng.choice indexes shift
            # only for plans that opted in
            menu.append("slow-host")
            menu.append("skew-clock")
            if links:
                menu.append("degrade-link")
        for _ in range(n_events):
            at = rng.uniform(0.05 * horizon, 0.6 * horizon)
            outage = min(
                rng.expovariate(1.0 / mean_outage), 0.35 * horizon
            ) + 0.5
            kind = rng.choice(menu)
            if kind == "crash-host":
                host = rng.choice(hosts)
                plan.crash_host(at, host)
                plan.restart_host(at + outage, host)
            elif kind == "link-down":
                a, b = rng.choice(links)
                plan.partition(at, a, b, duration=outage)
            elif kind == "kill-daemon":
                host, role = rng.choice(daemons)
                plan.kill_daemon(at, host, role)
                plan.restart_daemon(at + outage, host, role)
            elif kind == "slow-host":
                plan.slow_host(at, rng.choice(hosts),
                               factor=rng.uniform(3.0, 10.0),
                               duration=outage)
            elif kind == "skew-clock":
                plan.skew_clock(at, rng.choice(hosts),
                                offset=rng.uniform(-45.0, 45.0),
                                duration=outage)
            elif kind == "degrade-link":
                a, b = rng.choice(links)
                plan.degrade_link(
                    at, a, b, duration=outage,
                    direction=rng.choice(["both", "fwd", "rev"]),
                    latency=rng.uniform(0.05, 0.5),
                    loss=rng.uniform(0.0, 0.3),
                )
            else:
                plan.loss_burst(at, rng.choice(hosts),
                                rate=rng.uniform(0.1, 0.9),
                                duration=outage)
        return plan
