"""Scenario matrix for the chaos explorer.

Each :class:`Scenario` is a complete, deterministic world the explorer
can throw random :class:`~repro.faults.plan.FaultPlan`\\ s at: the HA
star of the failover experiments (two wizard replicas, two monitored
3-server groups, slow matmul CPUs) carrying one of the thesis
applications end-to-end.  :func:`run_trial` executes one plan against
one scenario and reduces the run to a plain
:class:`~repro.faults.invariants.TrialOutcome` for the invariant
oracles — no simulator objects escape, so trials parallelise across
processes and serialise into corpus artifacts.

The matrix:

``matmul``
    Self-healing matrix multiply, 2 sessions over 6 workers, faults on
    the server plane (hosts, access links, worker/lease daemons).
``massd``
    Massive download, 1 session over 6 shaped file servers — the single
    slot makes every checkpoint/failover land on the critical path.
``ha``
    The matmul job with the *control plane* in the fault surface too:
    wizard replicas, monitors, trunk links — request-path robustness.
``grayfail``
    The matmul job with watchdog-armed sessions and ``gray=True``
    plans: fail-slow hosts, sick links, clock skew.

A :data:`MUTANTS` registry supplies seeded known-bugs (e.g.
``drop-checkpoint``) so the explorer can prove, in CI, that the search
actually finds real defects within budget.
"""

from __future__ import annotations

import hashlib
import itertools
import traceback
from dataclasses import dataclass

import numpy as np

from ..apps import (
    FileServer,
    MassdClient,
    MatMulMaster,
    MatMulWorker,
    shape_host_egress,
)
from ..cluster import Cluster, Deployment
from ..core import Config, LeaseResponder, smart_sessions
from .controller import ChaosController
from .invariants import TrialOutcome
from .plan import FaultPlan

__all__ = [
    "Scenario",
    "SCENARIOS",
    "MUTANTS",
    "fault_surface",
    "run_trial",
    "trial_deadline",
    "LIVENESS_SLACK",
    "SERVICE_PORT",
]

SERVICE_PORT = 9000
BULK_MSS = 8192

#: liveness-deadline slack beyond the fault horizon.  Sized for the worst
#: *correct* stall the net model can produce: a loss burst can back a
#: connection's retransmit timer off to the 60 s RTO cap, and the binary
#: lease detector (no watchdog) rides it out — two chained backoffs plus
#: the healed job still fit.  Anything slower is a wedged recovery path.
LIVENESS_SLACK = 150.0

#: egress cap of every massd file server (8 Mbit/s ~ 1 MB/s)
MASSD_SHAPE_MBPS = 8.0


@dataclass(frozen=True)
class Scenario:
    """One explorable world + job, and the knobs the plan generator uses."""

    name: str
    app: str                    # "matmul" | "massd"
    sessions: int
    requirement: str
    gray: bool = False          # random plans may draw gray kinds
    watchdog: bool = False      # sessions run the phi-accrual watchdog
    control_plane: bool = False  # wizards/monitors/trunks join the surface
    n: int = 160                # matmul: matrix size
    blk: int = 80               # matmul: block size (160/80 -> 2x2 grid)
    data_kb: int = 1200         # massd: file size
    blk_kb: int = 100           # massd: block size (-> 12 blocks)
    request_at: float = 6.0     # when the client asks the wizard
    horizon: float = 20.0       # random-plan time horizon
    n_events: int = 8           # faults per random plan (pre-pairing)
    mean_outage: float = 4.0


_STALENESS = "host_cpu_free > 0.1\nhost_status_age < 10"

SCENARIOS: dict[str, Scenario] = {
    "matmul": Scenario(
        name="matmul", app="matmul", sessions=2, requirement=_STALENESS,
    ),
    "massd": Scenario(
        name="massd", app="massd", sessions=1, requirement=_STALENESS,
    ),
    "ha": Scenario(
        name="ha", app="matmul", sessions=2, requirement=_STALENESS,
        control_plane=True,
    ),
    "grayfail": Scenario(
        # no staleness clause: a skewed clock ages reports, and starving
        # the wizard of candidates is not the bug this scenario hunts
        name="grayfail", app="matmul", sessions=2,
        requirement="host_cpu_free > 0.05",
        gray=True, watchdog=True,
    ),
}

#: seeded known-bugs the explorer must be able to find (CI gate).
#: ``""`` is the healthy build.
MUTANTS: dict[str, str] = {
    "": "healthy build (no seeded bug)",
    "drop-checkpoint": (
        "the failover checkpoint counts the in-flight block as requeued "
        "but silently drops it — any mid-stream connection death loses a "
        "shard"
    ),
}


class _DropCheckpointMaster(MatMulMaster):
    def _checkpoint(self, tasks, task, stats) -> None:
        stats["requeued"] += 1  # the in-flight block is silently dropped


class _DropCheckpointMassd(MassdClient):
    def _checkpoint(self, tasks, task, stats) -> None:
        stats["requeued"] += 1  # the in-flight block is silently dropped


_APP_CLASSES = {
    ("matmul", ""): MatMulMaster,
    ("matmul", "drop-checkpoint"): _DropCheckpointMaster,
    ("massd", ""): MassdClient,
    ("massd", "drop-checkpoint"): _DropCheckpointMassd,
}


def fault_surface(spec: Scenario) -> dict:
    """What the plan generator may break: sorted host names, link
    endpoint pairs and (host, role) daemons of the scenario."""
    hosts = [f"s{i}" for i in range(6)]
    links = [(f"s{i}", "sw-g1" if i < 3 else "sw-g2") for i in range(6)]
    role = "worker" if spec.app == "matmul" else "fileserver"
    daemons = [(f"s{i}", role) for i in range(6)]
    daemons += [(f"s{i}", "lease") for i in range(6)]
    daemons += [(f"s{i}", "probe") for i in range(6)]
    if spec.control_plane:
        hosts += ["wiz", "wiz2", "mon1", "mon2"]
        links += [("sw-g1", "core"), ("sw-g2", "core"),
                  ("wiz", "core"), ("wiz2", "core"),
                  ("mon1", "sw-g1"), ("mon2", "sw-g2")]
        daemons += [("wiz", "wizard"), ("wiz2", "wizard"),
                    ("mon1", "sysmon"), ("mon1", "transmitter"),
                    ("mon2", "sysmon"), ("mon2", "transmitter")]
    return {
        "hosts": sorted(hosts),
        "links": sorted(links),
        "daemons": sorted(daemons),
    }


def trial_deadline(spec: Scenario, oracle_elapsed: float,
                   plan_horizon: float) -> float:
    """The liveness budget of one trial: every fault heals by the plan
    horizon, the healthy job takes ``oracle_elapsed``, and
    :data:`LIVENESS_SLACK` absorbs the slowest correct recovery."""
    return (spec.request_at + 3.0 * max(oracle_elapsed, 0.0)
            + plan_horizon + LIVENESS_SLACK)


def _matrices(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Small deterministic integer matrices: products are exact in
    float64, so the result fingerprint is bit-stable by construction."""
    idx = np.arange(n * n, dtype=np.int64)
    a = ((idx % 7) - 3).astype(float).reshape(n, n)
    b = ((idx % 5) - 2).astype(float).reshape(n, n)
    return a, b


def _reset_world_counters() -> None:
    """Fresh global id counters before each trial world.

    Connection/session/packet/allocation ids come from module-level
    ``itertools.count`` streams, and some leak into kernel process names
    (``lease-3-…``, ``tcp-send-17``) that the canonical event trace
    records.  Trials are isolated worlds, so resetting gives every trial
    the ids a fresh process would — the byte-stability contract (same
    trace hash on every replay, any worker count) depends on it."""
    from ..core import rsocket as _rsocket
    from ..core import session as _session
    from ..host import memory as _memory
    from ..net import packet as _packet
    from ..net import tcp as _tcp

    _tcp._conn_ids = itertools.count(1)
    _packet._ids = itertools.count(1)
    _memory._alloc_ids = itertools.count(1)
    _rsocket._session_ids = itertools.count(1)
    _session._session_ids = itertools.count(1)


def _build_world(spec: Scenario, seed: int, trace: bool):
    """The HA star of ``_failover_world`` (bench/experiments.py), carrying
    the scenario's application on every server."""
    extra = {}
    if spec.watchdog:
        extra = dict(session_watchdog_interval=0.5,
                     session_watchdog_min_samples=3,
                     session_watchdog_phi=2.5)
    config = Config(
        probe_interval=1.0, probe_miss_limit=3, transmit_interval=1.0,
        netmon_interval=1.0, client_timeout=1.0, client_retries=2,
        client_backoff_base=0.1, client_backoff_cap=1.0,
        transmit_backoff_cap=2.0, transmit_stall_limit=3.0,
        quarantine_period=5.0, wizard_staleness_limit=4.0,
        wizard_quarantine_period=5.0, lease_interval=0.5,
        lease_timeout=2.0, session_retries=3, **extra,
    )
    cluster = Cluster(seed=seed, trace_events=trace)
    wiz = cluster.add_host("wiz")
    wiz2 = cluster.add_host("wiz2")
    cli = cluster.add_host("cli")
    mon1 = cluster.add_host("mon1")
    mon2 = cluster.add_host("mon2")
    core = cluster.add_switch("core")
    sw1 = cluster.add_switch("sw-g1")
    sw2 = cluster.add_switch("sw-g2")
    cluster.link(wiz, core, subnet="10.0.0")
    cluster.link(wiz2, core, subnet="10.0.4")
    cluster.link(cli, core, subnet="10.0.3")
    cluster.link(mon1, sw1, subnet="10.0.1")
    cluster.link(sw1, core, subnet="10.0.1")
    cluster.link(mon2, sw2, subnet="10.0.2")
    cluster.link(sw2, core, subnet="10.0.2")
    servers = []
    for i in range(6):
        s = cluster.add_host(f"s{i}", speeds={"matmul": 1.5e6})
        cluster.link(s, sw1 if i < 3 else sw2,
                     subnet="10.0.1" if i < 3 else "10.0.2")
        servers.append(s)
    cluster.finalize()
    dep = Deployment(cluster, config=config, wizard_hosts=[wiz, wiz2])
    dep.add_group("g1", mon1, servers[:3])
    dep.add_group("g2", mon2, servers[3:])
    dep.start()
    services, responders = {}, {}
    for s in servers:
        if spec.app == "matmul":
            service = MatMulWorker(s, port=SERVICE_PORT, mss=BULK_MSS)
        else:
            shape_host_egress(s, MASSD_SHAPE_MBPS)
            service = FileServer(s, port=SERVICE_PORT, mss=BULK_MSS)
        service.start()
        services[s.name] = service
        responder = LeaseResponder(s, config)
        responder.start()
        responders[s.name] = responder
    return cluster, dep, cli, servers, services, responders


#: exception messages of the *documented* loud-failure path — the plan
#: killed every server the job had; not an invariant breach
_ALL_DEAD_MARKERS = (
    "every server slot died",
    "no worker connections supplied",
    "no server connections supplied",
)


def _exc_site(exc: BaseException) -> str:
    """Coarse, shrink-stable crash site: the deepest repro frame as
    ``module.function`` (no line numbers — those move as plans shrink)."""
    site = ""
    for frame in traceback.extract_tb(exc.__traceback__):
        fname = frame.filename.replace("\\", "/")
        if "/repro/" in fname:
            mod = fname.rsplit("/repro/", 1)[1]
            mod = mod.rsplit(".py", 1)[0].replace("/", ".")
            site = f"{mod}.{frame.name}"
    return site or type(exc).__name__


def run_trial(
    scenario: str,
    plan_json: dict,
    *,
    world_seed: int = 0,
    mutant: str = "",
    deadline: float = 0.0,
    oracle_fingerprint: str = "",
    trace: bool = False,
) -> TrialOutcome:
    """Execute one fault plan against one scenario, deterministically.

    ``deadline`` is in sim seconds; ``0`` means a generous default
    (request + plan horizon + 120 s).  The run never raises on
    application or daemon failure — everything lands in the outcome for
    the invariant oracles to judge.
    """
    spec = SCENARIOS[scenario]
    plan = FaultPlan.from_json(plan_json) if plan_json else FaultPlan()
    if mutant not in MUTANTS:
        raise ValueError(f"unknown mutant {mutant!r}")
    if not deadline:
        deadline = trial_deadline(spec, 0.0, plan.horizon) + 60.0
    _reset_world_counters()
    cluster, dep, cli, servers, services, responders = _build_world(
        spec, world_seed, trace)
    sim = cluster.sim
    name_of = {s.addr: s.name for s in servers}
    chaos = ChaosController(dep, plan)
    role = "worker" if spec.app == "matmul" else "fileserver"
    for sname in sorted(services):
        chaos.register_daemon(sname, role, services[sname])
    for sname in sorted(responders):
        chaos.register_daemon(sname, "lease", responders[sname])
    chaos.start()
    out: dict = {}

    def driver():
        yield sim.timeout(spec.request_at)
        client = dep.client_for(cli)
        sessions = yield from smart_sessions(
            client, spec.requirement, spec.sessions,
            service_port=SERVICE_PORT, mss=BULK_MSS)
        out["sessions"] = sessions
        prog = _APP_CLASSES[(spec.app, mutant)](cli)
        if spec.app == "matmul":
            a, b = _matrices(spec.n)
            result = yield from prog.run(sessions, n=spec.n, blk=spec.blk,
                                         a=a, b=b)
        else:
            result = yield from prog.run(sessions, data_kb=spec.data_kb,
                                         blk_kb=spec.blk_kb)
        out["result"] = result

    proc = sim.process(driver(), name="explore-driver")
    exc: BaseException | None = None
    while not proc.processed:
        nxt = sim.peek()
        if nxt == float("inf") or nxt > deadline:
            break
        try:
            sim.step()
        except Exception as e:  # the oracle records it; never propagate
            exc = e
            break
    chaos.stop()
    sessions = out.get("sessions", [])
    for session in sessions:
        try:
            session.close()
        except Exception:
            pass  # a half-dead slot may refuse an orderly close
    result = out.get("result")

    outcome = TrialOutcome(
        scenario=scenario, world_seed=world_seed, mutant=mutant,
        plan=plan.to_json(), deadline=deadline, end_time=sim.now,
        oracle_fingerprint=oracle_fingerprint,
        chaos_applied=len(chaos.log),
    )
    if exc is not None:
        if any(marker in str(exc) for marker in _ALL_DEAD_MARKERS):
            outcome.all_slots_dead = True
        else:
            outcome.exception = f"{type(exc).__name__}: {exc}"
            outcome.exc_site = _exc_site(exc)
    if result is not None:
        outcome.completed = True
        outcome.elapsed = result.elapsed
        outcome.fingerprint = result.fingerprint()
        outcome.blocks_done = sum(result.blocks_per_server.values())
        outcome.blocks_total = result.total_blocks
        outcome.requeued = result.requeued_blocks
        outcome.failovers = result.failovers
    if sessions:
        outcome.session_failovers = sum(s.failovers for s in sessions)
        outcome.lease_expiries = sum(s.lease_expiries for s in sessions)
        outcome.slow_migrations = sum(s.slow_migrations for s in sessions)
        outcome.dead_sessions = sum(1 for s in sessions if s.dead)
        outcome.live_on_excluded = sorted(
            name_of.get(s.addr, s.addr) for s in sessions
            if not s.dead and s.addr in s.excluded
        )
        rehired = []
        for s in sessions:
            seen = set()
            for addr in s.history:
                if addr in seen:
                    rehired.append(name_of.get(addr, addr))
                seen.add(addr)
        outcome.rehired_corpses = sorted(set(rehired))
    if trace and cluster.event_trace is not None:
        text = "\n".join(cluster.event_trace.canonical_lines())
        outcome.trace_hash = hashlib.sha256(text.encode()).hexdigest()[:16]
    return outcome
