"""The chaos controller: applies a :class:`~repro.faults.plan.FaultPlan`
to a live deployment.

The controller runs as one simulated process that sleeps to each event's
time and executes it against the cluster.  Everything it does is
reversible through the plan itself (restart/heal events); every applied
fault is appended to :attr:`ChaosController.log` as ``(sim_time,
description)`` so tests can assert on what actually happened.

Crash semantics: ``crash-host`` models a power failure of the *host
plane* — all daemons die, established TCP connections are torn down with
no FIN (peers discover via RST on their next segment), bound ports are
released and shared memory is wiped.  The network node itself keeps
forwarding (switches/routers are cabinet hardware, not the crashed OS).
``restart-host`` relaunches exactly the daemons deployment wired onto
that machine, with cold state — the recovery path the hardened control
plane is designed to survive.
"""

from __future__ import annotations


from ..cluster.deploy import Deployment
from ..core.config import Mode
from ..net.link import Link
from ..sim import Interrupt
from .plan import FaultEvent, FaultPlan

__all__ = ["ChaosController"]


class ChaosController:
    """Drives scheduled faults against a started :class:`Deployment`."""

    def __init__(self, deployment: Deployment, plan: FaultPlan):
        self.deployment = deployment
        self.cluster = deployment.cluster
        self.sim = self.cluster.sim
        self.plan = plan
        self._proc = None
        self._burst_procs: list = []
        #: (sim_time, description) of every fault actually applied
        self.log: list[tuple[float, str]] = []
        #: hosts currently crashed
        self.down_hosts: set[str] = set()
        #: (host, role) pairs currently killed individually
        self.down_daemons: set[tuple[str, str]] = set()
        self._daemons = self._build_registry()

    # -- registry ----------------------------------------------------------
    def _build_registry(self) -> dict[str, list[tuple[str, object]]]:
        """host name -> ordered [(role, daemon)] as the deployment wired it."""
        reg: dict[str, list[tuple[str, object]]] = {}

        def put(host_name: str, role: str, daemon) -> None:
            reg.setdefault(host_name, []).append((role, daemon))

        dep = self.deployment
        for replica in dep.replicas:
            put(replica.host.name, "receiver", replica.receiver)
            put(replica.host.name, "wizard", replica.wizard)
        for group in dep.groups.values():
            mon = group.monitor_host.name
            put(mon, "sysmon", group.sysmon)
            put(mon, "netmon", group.netmon)
            put(mon, "secmon", group.secmon)
            put(mon, "transmitter", group.transmitter)
            for server, probe in zip(group.servers, group.probes):
                put(server.name, "probe", probe)
        return reg

    def _daemon(self, host: str, role: str):
        """The daemon of ``role`` on ``host``, or ``None`` when the
        deployment never wired one there.  Fault generators explore
        adversarial plans, so a miss must be a logged no-op — never a
        crash that takes the whole simulation down."""
        for r, d in self._daemons.get(host, ()):
            if r == role:
                return d
        return None

    def _host(self, name: str):
        """The host named ``name``, or ``None`` (with a logged note) when
        the cluster has no such host — same no-op contract as
        :meth:`_daemon` for plans drawn over a stale fault surface."""
        host = self.cluster.hosts.get(name)
        if host is None:
            self._note(f"fault on {name} (no such host)")
        return host

    def register_daemon(self, host_name: str, role: str, daemon) -> None:
        """Add an application-plane daemon (``worker``, ``fileserver``,
        ``lease``, ...) to the registry so ``crash-host`` stops it and
        ``restart-host``/``restart-daemon`` can bring it back.  The
        daemon must expose ``start()``/``stop()``."""
        self._daemons.setdefault(host_name, []).append((role, daemon))

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            raise RuntimeError("chaos controller already running")
        self._proc = self.sim.process(self._run(), name="chaos-controller")

    def stop(self) -> None:
        for proc in (self._proc, *self._burst_procs):
            if proc is not None and proc.is_alive:
                proc.interrupt("stop")

    # -- the driver --------------------------------------------------------
    def _run(self):
        try:
            for event in self.plan.events():
                delay = event.at - self.sim.now
                if delay > 0:
                    yield self.sim.timeout(delay)
                yield from self._apply(event)
        except Interrupt:
            pass

    def _note(self, text: str) -> None:
        self.log.append((self.sim.now, text))

    def _apply(self, event: FaultEvent):
        kind = event.kind
        if kind == "crash-host":
            yield from self._crash_host(event.target)
        elif kind == "restart-host":
            self._restart_host(event.target)
        elif kind in ("link-down", "link-up"):
            self._set_links(event.target, event.peer, up=(kind == "link-up"))
        elif kind == "kill-daemon":
            yield from self._kill_daemon(event.target, event.peer)
        elif kind == "restart-daemon":
            self._restart_daemon(event.target, event.peer)
        elif kind == "loss-burst":
            self._start_burst(event)
        elif kind == "slow-host":
            self._start_slow(event)
        elif kind == "degrade-link":
            self._start_degrade(event)
        elif kind == "skew-clock":
            self._apply_skew(event)

    # -- host faults -------------------------------------------------------
    def _crash_host(self, host_name: str):
        if host_name in self.down_hosts:
            self._note(f"crash-host {host_name} (already down)")
            return
        host = self._host(host_name)
        if host is None:
            return
        # no FIN for anyone: peers learn from RSTs against the emptied
        # connection table when their next segment arrives
        for conn in list(host.stack.tcp.conns.values()):
            conn.abort()
        for role, daemon in self._daemons.get(host_name, ()):
            daemon.stop()
            self.down_daemons.discard((host_name, role))
        # let the interrupts deliver so daemon cleanup (socket close,
        # memory free) runs before we bulldoze what is left
        yield self.sim.timeout(0)
        for sock in list(host.stack.udp_ports.values()):
            sock.close()
        for listener in list(host.stack.tcp.listeners.values()):
            listener.close()
        for key in host.shm.keys():
            # power loss: RAM is gone — intentionally invisible to the
            # race sanitizer, a crash is not a synchronization bug
            host.shm.segment(key).write(None)  # repro: noqa[REPRO303]
        self.down_hosts.add(host_name)
        self._note(f"crash-host {host_name}")

    def _restart_host(self, host_name: str) -> None:
        if host_name not in self.down_hosts:
            self._note(f"restart-host {host_name} (was not down)")
            return
        self.down_hosts.discard(host_name)
        for role, daemon in self._daemons.get(host_name, ()):
            self._launch(role, daemon)
        self._note(f"restart-host {host_name}")

    def _launch(self, role: str, daemon) -> None:
        if role == "receiver" and self.deployment.mode != Mode.CENTRALIZED:
            return  # distributed receivers have no push listener to run
        if role == "netmon" and not daemon.peers:
            return  # single-group deployments never start the netmon
        daemon.start()

    # -- daemon faults ------------------------------------------------------
    def _kill_daemon(self, host_name: str, role: str):
        daemon = self._daemon(host_name, role)
        if daemon is None:
            self._note(f"kill-daemon {role}@{host_name} (no such daemon)")
            return
        key = (host_name, role)
        if host_name in self.down_hosts or key in self.down_daemons:
            self._note(f"kill-daemon {role}@{host_name} (already down)")
            return
        daemon.stop()
        # deliver the interrupt now so a paired restart (even at the same
        # sim time) finds ports released and the process dead
        yield self.sim.timeout(0)
        self.down_daemons.add(key)
        self._note(f"kill-daemon {role}@{host_name}")

    def _restart_daemon(self, host_name: str, role: str) -> None:
        daemon = self._daemon(host_name, role)
        if daemon is None:
            self._note(f"restart-daemon {role}@{host_name} (no such daemon)")
            return
        key = (host_name, role)
        if host_name in self.down_hosts or key not in self.down_daemons:
            self._note(f"restart-daemon {role}@{host_name} (not restartable)")
            return
        self.down_daemons.discard(key)
        self._launch(role, daemon)
        self._note(f"restart-daemon {role}@{host_name}")

    # -- link faults -------------------------------------------------------
    def _links_between(self, a: str, b: str) -> list[Link]:
        """Every link joining ``a`` and ``b`` — empty when no such link
        exists (same no-crash contract as :meth:`_daemon`)."""
        names = {a, b}
        return [
            link for link in self.cluster.network.links
            if {link.a.name, link.b.name} == names
        ]

    def _set_links(self, a: str, b: str, up: bool) -> None:
        kind = "link-up" if up else "link-down"
        links = self._links_between(a, b)
        if not links:
            self._note(f"{kind} {a}<->{b} (no such link)")
            return
        for link in links:
            link.set_up(up)
        self._note(f"{kind} {a}<->{b}")

    # -- loss bursts --------------------------------------------------------
    def _start_burst(self, event: FaultEvent) -> None:
        host = self._host(event.target)
        if host is None:
            return
        proc = self.sim.process(
            self._burst(host, event), name=f"chaos-burst-{event.target}"
        )
        self._burst_procs = [p for p in self._burst_procs if p.is_alive]
        self._burst_procs.append(proc)
        self._note(event.describe())

    def _burst(self, host, event: FaultEvent):
        """Process: raise loss on every channel touching the host, then
        restore the previous settings.  Overlapping bursts on the same
        host restore last-writer-wins — schedule them disjoint.
        ``event.direction`` narrows the burst to frames the host sends
        (``tx``) or receives (``rx``)."""
        rng = self.cluster.streams.stream(
            f"chaos-loss-{event.target}-{event.at:g}"
        )
        touched = []
        for nic in host.node.nics:
            tx = nic.link.channel_from(host.node)
            rx = nic.link.ab if tx is nic.link.ba else nic.link.ba
            channels = {"tx": (tx,), "rx": (rx,)}.get(
                event.direction, (tx, rx)
            )
            for channel in channels:
                touched.append(
                    (channel, channel.loss_rate, channel.loss_rng)
                )
                channel.loss_rate = event.value
                channel.loss_rng = rng
        try:
            yield self.sim.timeout(event.duration)
        except Interrupt:
            pass
        finally:
            for channel, rate, old_rng in touched:
                channel.loss_rate = rate
                channel.loss_rng = old_rng

    # -- gray failures ------------------------------------------------------
    def _start_slow(self, event: FaultEvent) -> None:
        host = self._host(event.target)
        if host is None:
            return
        proc = self.sim.process(
            self._slow(host, event), name=f"chaos-slow-{event.target}"
        )
        self._burst_procs = [p for p in self._burst_procs if p.is_alive]
        self._burst_procs.append(proc)
        self._note(event.describe())

    def _slow(self, host, event: FaultEvent):
        """Process: throttle the host's CPU for the window, then restore.
        The host never stops answering — its probe, lease responder and
        services all keep running, just ``value`` times slower."""
        from ..host import CpuThrottle

        throttle = CpuThrottle(self.sim, host.machine, factor=event.value)
        throttle.start()
        try:
            yield self.sim.timeout(event.duration)
        except Interrupt:
            pass
        finally:
            throttle.stop()

    def _degrade_channels(self, event: FaultEvent) -> list:
        """The per-direction channels of the target<->peer link(s):
        ``fwd`` is target->peer traffic, ``rev`` the reverse."""
        channels = []
        for link in self._links_between(event.target, event.peer):
            fwd = link.ab if link.a.name == event.target else link.ba
            rev = link.ba if fwd is link.ab else link.ab
            if event.direction in ("", "both", "fwd"):
                channels.append(fwd)
            if event.direction in ("", "both", "rev"):
                channels.append(rev)
        return channels

    def _start_degrade(self, event: FaultEvent) -> None:
        if not self._links_between(event.target, event.peer):
            self._note(f"{event.describe()} (no such link)")
            return
        proc = self.sim.process(
            self._degrade(event),
            name=f"chaos-degrade-{event.target}-{event.peer}",
        )
        self._burst_procs = [p for p in self._burst_procs if p.is_alive]
        self._burst_procs.append(proc)
        self._note(event.describe())

    def _degrade(self, event: FaultEvent):
        """Process: degrade the selected channels for the window, then
        restore the previous settings (same save/restore discipline as
        :meth:`_burst`)."""
        rng = self.cluster.streams.stream(
            f"chaos-degrade-{event.target}-{event.peer}-{event.at:g}"
        )
        latency = event.param("latency")
        jitter = event.param("jitter")
        loss = event.param("loss")
        reorder = event.param("reorder")
        touched = []
        for ch in self._degrade_channels(event):
            touched.append((
                ch, ch.extra_delay, ch.jitter, ch.reorder_rate,
                ch.reorder_extra, ch.degrade_rng, ch.loss_rate, ch.loss_rng,
            ))
            ch.extra_delay += latency
            if jitter or reorder:
                ch.jitter = jitter
                ch.reorder_rate = reorder
                # late enough that a healthy successor frame overtakes it
                ch.reorder_extra = event.param(
                    "reorder_extra", 2.0 * (ch.delay + ch.extra_delay) + 1e-3
                )
                ch.degrade_rng = rng
            if loss:
                ch.loss_rate = loss
                ch.loss_rng = rng
        try:
            yield self.sim.timeout(event.duration)
        except Interrupt:
            pass
        finally:
            for (ch, extra, jit, ro_rate, ro_extra, d_rng,
                 l_rate, l_rng) in touched:
                ch.extra_delay = extra
                ch.jitter = jit
                ch.reorder_rate = ro_rate
                ch.reorder_extra = ro_extra
                ch.degrade_rng = d_rng
                ch.loss_rate = l_rate
                ch.loss_rng = l_rng

    def _apply_skew(self, event: FaultEvent) -> None:
        """Program the target's wall clock; a bounded skew is stepped back
        (NTP-style correction) by a restore process."""
        host = self._host(event.target)
        if host is None:
            return
        clock = host.clock
        previous = (clock.offset, clock.drift)
        clock.set_skew(event.value, event.param("drift"))
        self._note(event.describe())
        if event.duration > 0:
            proc = self.sim.process(
                self._unskew(clock, previous, event.duration),
                name=f"chaos-unskew-{event.target}",
            )
            self._burst_procs = [p for p in self._burst_procs if p.is_alive]
            self._burst_procs.append(proc)

    def _unskew(self, clock, previous, duration: float):
        try:
            yield self.sim.timeout(duration)
        except Interrupt:
            pass
        finally:
            clock.set_skew(*previous)
