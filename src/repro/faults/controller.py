"""The chaos controller: applies a :class:`~repro.faults.plan.FaultPlan`
to a live deployment.

The controller runs as one simulated process that sleeps to each event's
time and executes it against the cluster.  Everything it does is
reversible through the plan itself (restart/heal events); every applied
fault is appended to :attr:`ChaosController.log` as ``(sim_time,
description)`` so tests can assert on what actually happened.

Crash semantics: ``crash-host`` models a power failure of the *host
plane* — all daemons die, established TCP connections are torn down with
no FIN (peers discover via RST on their next segment), bound ports are
released and shared memory is wiped.  The network node itself keeps
forwarding (switches/routers are cabinet hardware, not the crashed OS).
``restart-host`` relaunches exactly the daemons deployment wired onto
that machine, with cold state — the recovery path the hardened control
plane is designed to survive.
"""

from __future__ import annotations


from ..cluster.deploy import Deployment
from ..core.config import Mode
from ..net.link import Link
from ..sim import Interrupt
from .plan import FaultEvent, FaultPlan

__all__ = ["ChaosController"]


class ChaosController:
    """Drives scheduled faults against a started :class:`Deployment`."""

    def __init__(self, deployment: Deployment, plan: FaultPlan):
        self.deployment = deployment
        self.cluster = deployment.cluster
        self.sim = self.cluster.sim
        self.plan = plan
        self._proc = None
        self._burst_procs: list = []
        #: (sim_time, description) of every fault actually applied
        self.log: list[tuple[float, str]] = []
        #: hosts currently crashed
        self.down_hosts: set[str] = set()
        #: (host, role) pairs currently killed individually
        self.down_daemons: set[tuple[str, str]] = set()
        self._daemons = self._build_registry()

    # -- registry ----------------------------------------------------------
    def _build_registry(self) -> dict[str, list[tuple[str, object]]]:
        """host name -> ordered [(role, daemon)] as the deployment wired it."""
        reg: dict[str, list[tuple[str, object]]] = {}

        def put(host_name: str, role: str, daemon) -> None:
            reg.setdefault(host_name, []).append((role, daemon))

        dep = self.deployment
        for replica in dep.replicas:
            put(replica.host.name, "receiver", replica.receiver)
            put(replica.host.name, "wizard", replica.wizard)
        for group in dep.groups.values():
            mon = group.monitor_host.name
            put(mon, "sysmon", group.sysmon)
            put(mon, "netmon", group.netmon)
            put(mon, "secmon", group.secmon)
            put(mon, "transmitter", group.transmitter)
            for server, probe in zip(group.servers, group.probes):
                put(server.name, "probe", probe)
        return reg

    def _daemon(self, host: str, role: str):
        for r, d in self._daemons.get(host, ()):
            if r == role:
                return d
        raise KeyError(f"no {role!r} daemon deployed on host {host!r}")

    def register_daemon(self, host_name: str, role: str, daemon) -> None:
        """Add an application-plane daemon (``worker``, ``fileserver``,
        ``lease``, ...) to the registry so ``crash-host`` stops it and
        ``restart-host``/``restart-daemon`` can bring it back.  The
        daemon must expose ``start()``/``stop()``."""
        self._daemons.setdefault(host_name, []).append((role, daemon))

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            raise RuntimeError("chaos controller already running")
        self._proc = self.sim.process(self._run(), name="chaos-controller")

    def stop(self) -> None:
        for proc in (self._proc, *self._burst_procs):
            if proc is not None and proc.is_alive:
                proc.interrupt("stop")

    # -- the driver --------------------------------------------------------
    def _run(self):
        try:
            for event in self.plan.events():
                delay = event.at - self.sim.now
                if delay > 0:
                    yield self.sim.timeout(delay)
                yield from self._apply(event)
        except Interrupt:
            pass

    def _note(self, text: str) -> None:
        self.log.append((self.sim.now, text))

    def _apply(self, event: FaultEvent):
        kind = event.kind
        if kind == "crash-host":
            yield from self._crash_host(event.target)
        elif kind == "restart-host":
            self._restart_host(event.target)
        elif kind in ("link-down", "link-up"):
            self._set_links(event.target, event.peer, up=(kind == "link-up"))
        elif kind == "kill-daemon":
            yield from self._kill_daemon(event.target, event.peer)
        elif kind == "restart-daemon":
            self._restart_daemon(event.target, event.peer)
        elif kind == "loss-burst":
            self._start_burst(event)

    # -- host faults -------------------------------------------------------
    def _crash_host(self, host_name: str):
        if host_name in self.down_hosts:
            self._note(f"crash-host {host_name} (already down)")
            return
        host = self.cluster.host(host_name)
        # no FIN for anyone: peers learn from RSTs against the emptied
        # connection table when their next segment arrives
        for conn in list(host.stack.tcp.conns.values()):
            conn.abort()
        for role, daemon in self._daemons.get(host_name, ()):
            daemon.stop()
            self.down_daemons.discard((host_name, role))
        # let the interrupts deliver so daemon cleanup (socket close,
        # memory free) runs before we bulldoze what is left
        yield self.sim.timeout(0)
        for sock in list(host.stack.udp_ports.values()):
            sock.close()
        for listener in list(host.stack.tcp.listeners.values()):
            listener.close()
        for key in host.shm.keys():
            # power loss: RAM is gone — intentionally invisible to the
            # race sanitizer, a crash is not a synchronization bug
            host.shm.segment(key).write(None)  # repro: noqa[REPRO303]
        self.down_hosts.add(host_name)
        self._note(f"crash-host {host_name}")

    def _restart_host(self, host_name: str) -> None:
        if host_name not in self.down_hosts:
            self._note(f"restart-host {host_name} (was not down)")
            return
        self.down_hosts.discard(host_name)
        for role, daemon in self._daemons.get(host_name, ()):
            self._launch(role, daemon)
        self._note(f"restart-host {host_name}")

    def _launch(self, role: str, daemon) -> None:
        if role == "receiver" and self.deployment.mode != Mode.CENTRALIZED:
            return  # distributed receivers have no push listener to run
        if role == "netmon" and not daemon.peers:
            return  # single-group deployments never start the netmon
        daemon.start()

    # -- daemon faults ------------------------------------------------------
    def _kill_daemon(self, host_name: str, role: str):
        daemon = self._daemon(host_name, role)
        key = (host_name, role)
        if host_name in self.down_hosts or key in self.down_daemons:
            self._note(f"kill-daemon {role}@{host_name} (already down)")
            return
        daemon.stop()
        # deliver the interrupt now so a paired restart (even at the same
        # sim time) finds ports released and the process dead
        yield self.sim.timeout(0)
        self.down_daemons.add(key)
        self._note(f"kill-daemon {role}@{host_name}")

    def _restart_daemon(self, host_name: str, role: str) -> None:
        daemon = self._daemon(host_name, role)
        key = (host_name, role)
        if host_name in self.down_hosts or key not in self.down_daemons:
            self._note(f"restart-daemon {role}@{host_name} (not restartable)")
            return
        self.down_daemons.discard(key)
        self._launch(role, daemon)
        self._note(f"restart-daemon {role}@{host_name}")

    # -- link faults -------------------------------------------------------
    def _links_between(self, a: str, b: str) -> list[Link]:
        names = {a, b}
        found = [
            link for link in self.cluster.network.links
            if {link.a.name, link.b.name} == names
        ]
        if not found:
            raise KeyError(f"no link between {a!r} and {b!r}")
        return found

    def _set_links(self, a: str, b: str, up: bool) -> None:
        for link in self._links_between(a, b):
            link.set_up(up)
        self._note(f"{'link-up' if up else 'link-down'} {a}<->{b}")

    # -- loss bursts --------------------------------------------------------
    def _start_burst(self, event: FaultEvent) -> None:
        host = self.cluster.host(event.target)
        proc = self.sim.process(
            self._burst(host, event), name=f"chaos-burst-{event.target}"
        )
        self._burst_procs = [p for p in self._burst_procs if p.is_alive]
        self._burst_procs.append(proc)
        self._note(
            f"loss-burst {event.target} p={event.value:g} "
            f"for {event.duration:g}s"
        )

    def _burst(self, host, event: FaultEvent):
        """Process: raise loss on every channel touching the host, then
        restore the previous settings.  Overlapping bursts on the same
        host restore last-writer-wins — schedule them disjoint."""
        rng = self.cluster.streams.stream(
            f"chaos-loss-{event.target}-{event.at:g}"
        )
        touched = []
        for nic in host.node.nics:
            for channel in (nic.link.ab, nic.link.ba):
                touched.append(
                    (channel, channel.loss_rate, channel.loss_rng)
                )
                channel.loss_rate = event.value
                channel.loss_rng = rng
        try:
            yield self.sim.timeout(event.duration)
        except Interrupt:
            pass
        finally:
            for channel, rate, old_rng in touched:
                channel.loss_rate = rate
                channel.loss_rng = old_rng
