"""The chaos explorer: seeded, budgeted search of the fault-plan space.

``repro explore`` stops hand-writing fault schedules: it *generates*
them.  Each trial draws a random :class:`~repro.faults.plan.FaultPlan`
from a per-trial named RNG stream (pure function of the seed — the
whole search replays bit-identically), executes it against one of the
:data:`~repro.faults.scenarios.SCENARIOS` worlds, and judges the
outcome with the :mod:`~repro.faults.invariants` oracles.

On the first violation the search switches to *minimization*: a
delta-debugging shrinker (ddmin over the plan's events, then per-field
value shrinking) cuts the plan down while preserving the failure
fingerprint (invariant id + failure site), re-verifies the minimal plan
:data:`RE_VERIFY` times, and emits a replayable counterexample JSON
into the corpus (``tests/faults/corpus/CE-*.json``).  A committed
counterexample is a frozen bug report: ``repro explore --replay`` runs
it twice and asserts byte-stable traces and identical verdicts.

Coverage accounting tallies which (fault kind × scenario phase) cells
the executed trials exercised, so a green search that only ever crashed
hosts before the request is visibly shallow.

Parallel trials (``--workers N``) derive per-trial seeds up front and
key results by trial index, so the *found* counterexample — the lowest
violating index — is identical whatever the worker count.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace as _replace

from ..sim.rand import RandomStreams
from .invariants import Violation, check_all
from .plan import FaultPlan
from .scenarios import MUTANTS, SCENARIOS, fault_surface, run_trial, trial_deadline

__all__ = [
    "ExploreReport",
    "Counterexample",
    "explore",
    "generate_plan",
    "shrink_plan",
    "ddmin",
    "replay_counterexample",
    "corpus_check",
    "load_corpus",
    "CORPUS_VERSION",
    "RE_VERIFY",
]

CORPUS_VERSION = 1
#: times a minimized plan must reproduce its fingerprint before it is
#: believed (and written to the corpus)
RE_VERIFY = 3
#: cap on predicate evaluations during one shrink
SHRINK_BUDGET = 160

#: coverage phases: a fault lands before the request, during the job
#: stream, or after the healthy job would already be done
PHASES = ("setup", "stream", "tail")


# ---------------------------------------------------------------------------
# plan generation
# ---------------------------------------------------------------------------

def generate_plan(rng, spec, surface) -> FaultPlan:
    """One random plan for one trial.  Mostly
    :meth:`FaultPlan.random_plan`; a slice of the draws stacks a
    compound builder on top (flaps, partitions, wizard blackouts, gray
    storms) so the search also walks the correlated-fault corners the
    hand-written suites care about."""
    plan = FaultPlan.random_plan(
        rng, horizon=spec.horizon, hosts=surface["hosts"],
        links=surface["links"], daemons=surface["daemons"],
        n_events=spec.n_events, mean_outage=spec.mean_outage,
        gray=spec.gray,
    )
    draw = rng.random()
    if draw < 0.12:
        a, b = rng.choice(surface["links"])
        plan.flap_link(rng.uniform(1.0, spec.request_at + 4.0), a, b,
                       period=rng.uniform(0.6, 2.0),
                       count=rng.randint(2, 4))
    elif draw < 0.24:
        a, b = rng.choice(surface["links"])
        plan.partition(rng.uniform(1.0, 0.6 * spec.horizon), a, b,
                       duration=rng.uniform(1.0, 6.0))
    elif draw < 0.36 and spec.control_plane:
        plan.kill_wizard_during_request(
            spec.request_at - 0.2, rng.choice(["wiz", "wiz2"]),
            restart_after=rng.uniform(3.0, 8.0))
    elif draw < 0.36 and spec.gray:
        servers = [h for h in surface["hosts"] if h.startswith("s")]
        plan.gray_failure_storm(
            rng.uniform(spec.request_at, spec.request_at + 3.0),
            duration=rng.uniform(2.0, 8.0),
            slow_host=rng.choice(servers),
            slow_factor=rng.uniform(4.0, 10.0),
            skew_host=rng.choice(servers),
            skew_offset=rng.uniform(-40.0, 40.0),
        )
    return plan


def plan_coverage(plan: FaultPlan, spec, oracle_elapsed: float) -> set[tuple[str, str]]:
    """The (kind, phase) cells one plan touches."""
    stream_end = spec.request_at + max(oracle_elapsed, 0.0) + 1.0
    cells = set()
    for event in plan.events():
        if event.at < spec.request_at:
            phase = "setup"
        elif event.at <= stream_end:
            phase = "stream"
        else:
            phase = "tail"
        cells.add((event.kind, phase))
    return cells


# ---------------------------------------------------------------------------
# one trial
# ---------------------------------------------------------------------------

def _trial_job(payload: dict) -> dict:
    """Run one trial from plain data to plain data (module-level so a
    ProcessPoolExecutor can ship it to a worker)."""
    outcome = run_trial(
        payload["scenario"], payload["plan"],
        world_seed=payload["world_seed"], mutant=payload["mutant"],
        deadline=payload["deadline"],
        oracle_fingerprint=payload["oracle_fingerprint"],
    )
    violations = check_all(outcome)
    return {
        "index": payload["index"],
        "outcome": outcome.to_dict(),
        "violations": [v.to_dict() for v in violations],
    }


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------

def ddmin(items: list, predicate) -> list:
    """Classic delta debugging: the smallest sublist (under chunk
    removal) for which ``predicate`` still holds.  ``predicate(items)``
    must be True on entry."""
    n = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // n)
        reduced = False
        for start in range(0, len(items), chunk):
            candidate = items[:start] + items[start + chunk:]
            if candidate and predicate(candidate):
                items = candidate
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= len(items):
                break
            n = min(len(items), n * 2)
    return items


def _value_candidates(event) -> list:
    """Simpler versions of one event, most aggressive first: rounder
    times, shorter durations, rounder severities, no extra params."""
    out = []

    def push(**kw):
        try:
            out.append(_replace(event, **kw))
        except ValueError:
            pass  # simplification broke the event's own validation

    if event.duration > 1.0:
        push(duration=1.0)
    if event.at != round(event.at, 1):
        push(at=round(event.at, 1))
    if event.duration and event.duration != round(event.duration, 1):
        push(duration=round(event.duration, 1))
    if event.value and event.value != round(event.value, 2):
        push(value=round(event.value, 2))
    if event.params:
        push(params=())
    return out


def shrink_plan(plan: FaultPlan, predicate, budget: int = SHRINK_BUDGET):
    """Minimize ``plan`` while ``predicate(FaultPlan)`` stays True.

    Phase 1 is :func:`ddmin` over the time-ordered event list; phase 2
    simplifies the surviving events field by field.  Returns
    ``(minimized_plan, predicate_runs)``; the predicate is never called
    more than ``budget`` times — on exhaustion the best plan so far is
    returned (still a verified failing plan, just maybe not minimal).
    """
    runs = {"n": 0}

    def pred_events(events) -> bool:
        if runs["n"] >= budget:
            return False
        runs["n"] += 1
        return predicate(FaultPlan(events))

    events = ddmin(plan.events(), pred_events)
    for i in range(len(events)):
        for candidate in _value_candidates(events[i]):
            trial = events[:i] + [candidate] + events[i + 1:]
            if pred_events(trial):
                events = trial
                break
    return FaultPlan(events), runs["n"]


# ---------------------------------------------------------------------------
# the search
# ---------------------------------------------------------------------------

@dataclass
class Counterexample:
    """One minimized, re-verified failing plan — the corpus artifact."""

    scenario: str
    world_seed: int
    mutant: str
    seed: int
    trial: int
    invariant: str
    site: str
    detail: str
    fingerprint: str
    deadline: float
    oracle_fingerprint: str
    plan: dict
    search: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "version": CORPUS_VERSION,
            "scenario": self.scenario,
            "world_seed": self.world_seed,
            "mutant": self.mutant,
            "seed": self.seed,
            "trial": self.trial,
            "invariant": self.invariant,
            "site": self.site,
            "detail": self.detail,
            "fingerprint": self.fingerprint,
            "deadline": self.deadline,
            "oracle_fingerprint": self.oracle_fingerprint,
            "plan": self.plan,
            "search": self.search,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Counterexample":
        if data.get("version") != CORPUS_VERSION:
            raise ValueError(
                f"unsupported counterexample version {data.get('version')!r}")
        fields = {k: v for k, v in data.items() if k != "version"}
        return cls(**fields)

    @property
    def name(self) -> str:
        """Stable corpus file name: scenario + content digest."""
        text = json.dumps(self.plan, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(
            f"{self.scenario}:{self.mutant}:{self.fingerprint}:{text}".encode()
        ).hexdigest()[:10]
        return f"CE-{self.scenario}-{digest}"


@dataclass
class ExploreReport:
    """What one ``repro explore`` run did and found."""

    seed: int
    budget: int
    scenarios: list[str]
    mutant: str
    workers: int
    trials_run: int = 0
    #: all violating trials, in index order: {trial, scenario, fingerprints}
    violations: list[dict] = field(default_factory=list)
    counterexample: Counterexample | None = None
    #: scenario -> {"covered": ["kind/phase", ...], "cells": n, "total": n}
    coverage: dict = field(default_factory=dict)
    shrink: dict = field(default_factory=dict)

    @property
    def found(self) -> bool:
        return bool(self.violations)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "scenarios": self.scenarios,
            "mutant": self.mutant,
            "workers": self.workers,
            "trials_run": self.trials_run,
            "violations": self.violations,
            "counterexample": (self.counterexample.to_dict()
                               if self.counterexample else None),
            "coverage": self.coverage,
            "shrink": self.shrink,
        }


def _oracle_for(scenario: str, world_seed: int, cache: dict) -> tuple[str, float]:
    """(fingerprint, elapsed) of the fault-free run, computed once."""
    key = (scenario, world_seed)
    if key not in cache:
        outcome = run_trial(scenario, {}, world_seed=world_seed)
        if not outcome.completed:
            raise RuntimeError(
                f"oracle run of scenario {scenario!r} did not complete: "
                f"{outcome.exception or 'deadline'}")
        cache[key] = (outcome.fingerprint, outcome.elapsed)
    return cache[key]


def _make_payload(index: int, scenario: str, seed: int, world_seed: int,
                  mutant: str, oracle: tuple[str, float],
                  counters: dict) -> dict:
    """Build trial ``index``'s payload; the per-scenario trial counter
    names the RNG stream, so a scenario's i-th plan is the same whatever
    the scenario mix of the run."""
    spec = SCENARIOS[scenario]
    surface = fault_surface(spec)
    per_scenario = counters.get(scenario, 0)
    counters[scenario] = per_scenario + 1
    rng = RandomStreams(seed).stream(f"explore-{scenario}-{per_scenario}")
    plan = generate_plan(rng, spec, surface)
    oracle_fp, oracle_elapsed = oracle
    return {
        "index": index,
        "scenario": scenario,
        "plan": plan.to_json(),
        "world_seed": world_seed,
        "mutant": mutant,
        "deadline": trial_deadline(spec, oracle_elapsed, plan.horizon),
        "oracle_fingerprint": oracle_fp,
        "oracle_elapsed": oracle_elapsed,
    }


def explore(
    budget: int = 200,
    seed: int = 0,
    scenarios: list[str] | None = None,
    mutant: str = "",
    world_seed: int = 0,
    workers: int = 1,
    shrink: bool = True,
    stop_on_first: bool = True,
    progress=None,
) -> ExploreReport:
    """Search ``budget`` random fault plans for invariant violations.

    Scenarios interleave round-robin.  The search stops at the first
    violating trial (by index — deterministic across worker counts),
    shrinks its plan to a :class:`Counterexample`, and reports coverage
    over the executed trials.  ``progress(msg)`` gets occasional status
    lines.
    """
    if scenarios is None or not scenarios:
        scenarios = list(SCENARIOS)
    for name in scenarios:
        if name not in SCENARIOS:
            raise ValueError(f"unknown scenario {name!r}")
    if mutant not in MUTANTS:
        raise ValueError(f"unknown mutant {mutant!r}")
    say = progress or (lambda msg: None)
    report = ExploreReport(seed=seed, budget=budget, scenarios=list(scenarios),
                           mutant=mutant, workers=workers)
    oracle_cache: dict = {}
    oracles = {name: _oracle_for(name, world_seed, oracle_cache)
               for name in scenarios}
    say(f"oracles ready: " + ", ".join(
        f"{n}={oracles[n][0]} ({oracles[n][1]:.2f}s)" for n in scenarios))

    counters: dict[str, int] = {}
    payloads = [
        _make_payload(i, scenarios[i % len(scenarios)], seed, world_seed,
                      mutant, oracles[scenarios[i % len(scenarios)]], counters)
        for i in range(budget)
    ]

    covered: dict[str, set] = {name: set() for name in scenarios}
    first_hit: dict | None = None

    def absorb(result: dict) -> None:
        payload = payloads[result["index"]]
        spec = SCENARIOS[payload["scenario"]]
        plan = FaultPlan.from_json(payload["plan"])
        covered[payload["scenario"]].update(
            plan_coverage(plan, spec, payload["oracle_elapsed"]))
        report.trials_run += 1
        if result["violations"]:
            report.violations.append({
                "trial": result["index"],
                "scenario": payload["scenario"],
                "fingerprints": [v["fingerprint"] for v in result["violations"]],
            })

    if workers <= 1:
        for payload in payloads:
            result = _trial_job(payload)
            absorb(result)
            if result["violations"] and first_hit is None:
                first_hit = result
                if stop_on_first:
                    break
            if payload["index"] % 25 == 24:
                say(f"{payload['index'] + 1}/{budget} trials, no violation yet")
    else:
        chunk = max(workers * 2, 8)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for start in range(0, budget, chunk):
                batch = payloads[start:start + chunk]
                for result in pool.map(_trial_job, batch):
                    absorb(result)
                    if result["violations"] and first_hit is None:
                        first_hit = result
                if first_hit is not None and stop_on_first:
                    break
                say(f"{min(start + chunk, budget)}/{budget} trials, "
                    "no violation yet")
    report.violations.sort(key=lambda v: v["trial"])

    # coverage summary (kinds that can appear x phases)
    for name in scenarios:
        spec = SCENARIOS[name]
        surface = fault_surface(spec)
        kinds = {"crash-host", "restart-host", "loss-burst"}
        if surface["links"]:
            kinds.update({"link-down", "link-up"})
        if surface["daemons"]:
            kinds.update({"kill-daemon", "restart-daemon"})
        if spec.gray:
            kinds.update({"slow-host", "skew-clock", "degrade-link"})
        report.coverage[name] = {
            "covered": sorted(f"{k}/{p}" for k, p in covered[name]),
            "cells": len(covered[name]),
            "total": len(kinds) * len(PHASES),
        }

    if first_hit is None:
        return report

    # -- minimize the first (lowest-index) violating trial ------------------
    hit = (first_hit if stop_on_first or not report.violations else None)
    if hit is None or hit["index"] != report.violations[0]["trial"]:
        hit = _trial_job(payloads[report.violations[0]["trial"]])
    payload = payloads[hit["index"]]
    target = hit["violations"][0]["fingerprint"]
    say(f"violation {target} at trial {hit['index']} "
        f"({payload['scenario']}); shrinking")
    original = FaultPlan.from_json(payload["plan"])

    def still_fails(candidate: FaultPlan) -> bool:
        outcome = run_trial(
            payload["scenario"], candidate.to_json(),
            world_seed=world_seed, mutant=mutant,
            deadline=payload["deadline"],
            oracle_fingerprint=payload["oracle_fingerprint"],
        )
        return any(v.fingerprint == target for v in check_all(outcome))

    minimized, predicate_runs = ((original, 0) if not shrink
                                 else shrink_plan(original, still_fails))
    verified = sum(1 for _ in range(RE_VERIFY) if still_fails(minimized))
    report.shrink = {
        "original_events": len(original),
        "shrunk_events": len(minimized),
        "predicate_runs": predicate_runs,
        "reverified": verified,
        "of": RE_VERIFY,
    }
    say(f"shrunk {len(original)} -> {len(minimized)} events "
        f"in {predicate_runs} runs; re-verified {verified}/{RE_VERIFY}")
    if verified != RE_VERIFY:
        raise RuntimeError(
            f"minimized plan reproduced only {verified}/{RE_VERIFY} times — "
            "determinism broken, refusing to emit a counterexample")
    violation = hit["violations"][0]
    report.counterexample = Counterexample(
        scenario=payload["scenario"], world_seed=world_seed, mutant=mutant,
        seed=seed, trial=hit["index"],
        invariant=violation["invariant"], site=violation["site"],
        detail=violation["detail"], fingerprint=target,
        deadline=payload["deadline"],
        oracle_fingerprint=payload["oracle_fingerprint"],
        plan=minimized.to_json(),
        # trials_run is deliberately absent: it varies with the worker
        # count (a parallel batch finishes its stragglers), and the CE
        # must be byte-identical whatever the parallelism
        search={"budget": budget, **report.shrink},
    )
    return report


# ---------------------------------------------------------------------------
# corpus: replay + gates
# ---------------------------------------------------------------------------

def write_counterexample(ce: Counterexample, corpus_dir: str) -> str:
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, ce.name + ".json")
    with open(path, "w") as fh:
        json.dump(ce.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_corpus(corpus_dir: str) -> list[tuple[str, Counterexample]]:
    """Every ``CE-*.json`` under the corpus dir, name-sorted."""
    if not os.path.isdir(corpus_dir):
        return []
    out = []
    for fname in sorted(os.listdir(corpus_dir)):
        if not (fname.startswith("CE-") and fname.endswith(".json")):
            continue
        with open(os.path.join(corpus_dir, fname)) as fh:
            out.append((fname, Counterexample.from_dict(json.load(fh))))
    return out


def replay_counterexample(ce: Counterexample, mutant: str | None = None,
                          runs: int = 2) -> dict:
    """Replay one counterexample ``runs`` times with event tracing.

    Byte-stability means every run produces the same kernel trace hash
    and the same verdict list; ``reproduced`` means the recorded failure
    fingerprint is among the verdicts.  ``mutant`` overrides the
    recorded mutant (pass ``""`` to replay against the healthy build).
    """
    use_mutant = ce.mutant if mutant is None else mutant
    observed = []
    for _ in range(runs):
        outcome = run_trial(
            ce.scenario, ce.plan, world_seed=ce.world_seed,
            mutant=use_mutant, deadline=ce.deadline,
            oracle_fingerprint=ce.oracle_fingerprint, trace=True,
        )
        verdicts = [v.fingerprint for v in check_all(outcome)]
        observed.append({"trace": outcome.trace_hash, "verdicts": verdicts})
    stable = all(run == observed[0] for run in observed[1:])
    return {
        "name": ce.name,
        "mutant": use_mutant,
        "stable": stable,
        "reproduced": ce.fingerprint in observed[0]["verdicts"],
        "clean": not observed[0]["verdicts"],
        "runs": observed,
    }


def corpus_check(corpus_dir: str, progress=None) -> list[dict]:
    """The CI corpus gate: every committed counterexample must (a)
    replay byte-stably, (b) still reproduce its recorded failure under
    its recorded mutant, and (c) — when the bug was a seeded mutant —
    pass clean on the healthy build (HEAD fixed it or never had it)."""
    say = progress or (lambda msg: None)
    results = []
    for fname, ce in load_corpus(corpus_dir):
        entry = {"file": fname, "scenario": ce.scenario, "mutant": ce.mutant}
        rep = replay_counterexample(ce)
        entry["stable"] = rep["stable"]
        entry["reproduced"] = rep["reproduced"]
        entry["ok"] = rep["stable"] and rep["reproduced"]
        if ce.mutant:
            healthy = replay_counterexample(ce, mutant="", runs=1)
            entry["healthy_clean"] = healthy["clean"]
            entry["ok"] = entry["ok"] and healthy["clean"]
        say(f"{fname}: stable={entry['stable']} "
            f"reproduced={entry['reproduced']} ok={entry['ok']}")
        results.append(entry)
    return results
