"""Fault injection for the Smart-socket testbed.

Deterministic, seedable chaos: declare *what breaks when* in a
:class:`FaultPlan` (host crashes, link partitions and flaps, daemon
kills, probe-report loss bursts), then point a :class:`ChaosController`
at a started deployment to execute it.  Fixed seed + fixed plan =
bit-identical run — failures found by the chaos suite replay exactly.

Quick use::

    from repro.faults import ChaosController, FaultPlan

    plan = (FaultPlan()
            .crash_host(5.0, "dione")
            .restart_host(40.0, "dione")
            .partition(12.0, "dalmatian", "sw-192.168.3", duration=30.0)
            .kill_daemon(20.0, "mimas", "transmitter")
            .restart_daemon(25.0, "mimas", "transmitter"))
    chaos = ChaosController(deployment, plan)
    chaos.start()
    cluster.run(until=90.0)
    chaos.log      # [(sim_time, "crash-host dione"), ...]

The chaos *explorer* (``repro explore``) builds on this: random plans
over a scenario matrix, invariant oracles, counterexample shrinking —
see :mod:`repro.faults.explore`.
"""

from .controller import ChaosController
from .invariants import INVARIANTS, TrialOutcome, Violation, check_all
from .plan import DAEMON_ROLES, FAULT_KINDS, GRAY_KINDS, FaultEvent, FaultPlan
from .scenarios import MUTANTS, SCENARIOS, run_trial

__all__ = [
    "ChaosController",
    "FaultPlan",
    "FaultEvent",
    "FAULT_KINDS",
    "GRAY_KINDS",
    "DAEMON_ROLES",
    "INVARIANTS",
    "TrialOutcome",
    "Violation",
    "check_all",
    "MUTANTS",
    "SCENARIOS",
    "run_trial",
]
