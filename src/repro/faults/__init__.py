"""Fault injection for the Smart-socket testbed.

Deterministic, seedable chaos: declare *what breaks when* in a
:class:`FaultPlan` (host crashes, link partitions and flaps, daemon
kills, probe-report loss bursts), then point a :class:`ChaosController`
at a started deployment to execute it.  Fixed seed + fixed plan =
bit-identical run — failures found by the chaos suite replay exactly.

Quick use::

    from repro.faults import ChaosController, FaultPlan

    plan = (FaultPlan()
            .crash_host(5.0, "dione")
            .restart_host(40.0, "dione")
            .partition(12.0, "dalmatian", "sw-192.168.3", duration=30.0)
            .kill_daemon(20.0, "mimas", "transmitter")
            .restart_daemon(25.0, "mimas", "transmitter"))
    chaos = ChaosController(deployment, plan)
    chaos.start()
    cluster.run(until=90.0)
    chaos.log      # [(sim_time, "crash-host dione"), ...]
"""

from .controller import ChaosController
from .plan import DAEMON_ROLES, FAULT_KINDS, GRAY_KINDS, FaultEvent, FaultPlan

__all__ = [
    "ChaosController",
    "FaultPlan",
    "FaultEvent",
    "FAULT_KINDS",
    "GRAY_KINDS",
    "DAEMON_ROLES",
]
