"""Cluster builder: hosts, switches and links in a few declarative calls.

Wraps :class:`~repro.net.topology.Network` to co-create the compute side
(:class:`~repro.host.machine.Machine`) with the network side and deliver
ready-to-use :class:`~repro.cluster.host.SmartHost` objects.
"""

from __future__ import annotations

from typing import Optional

from ..host import Machine
from ..net import ETHERNET_100, Network, Node
from ..net.link import Link
from ..sim import EventTrace, HBSanitizer, RandomStreams, Simulator
from .host import SmartHost

__all__ = ["Cluster"]


class Cluster:
    """A simulated computing environment under construction.

    ``tie_break_seed`` / ``trace_events`` arm the kernel's schedule
    sanitizer (see :mod:`repro.sim.kernel`): with a tie-break seed, the
    FIFO order of equal-timestamp events is deterministically shuffled;
    with tracing, :attr:`event_trace` records a canonical event trace so
    dual runs under different shuffle seeds can be diffed.
    ``sanitize`` installs the happens-before race detector
    (:mod:`repro.sim.hb`) on the simulator; detected races accumulate in
    :attr:`sanitizer`.  ``profile`` installs the deterministic event
    profiler (:mod:`repro.sim.profile`); attribution accumulates in
    :attr:`profiler`.
    """

    def __init__(self, sim: Optional[Simulator] = None, seed: int = 0,
                 tie_break_seed: Optional[int] = None,
                 trace_events: bool = False,
                 sanitize: bool = False,
                 profile: bool = False):
        self.sim = sim or Simulator()
        self.network = Network(self.sim)
        self.streams = RandomStreams(seed)
        self.hosts: dict[str, SmartHost] = {}
        self.switches: dict[str, Node] = {}
        self._finalized = False
        self.event_trace: Optional[EventTrace] = None
        self.sanitizer: Optional[HBSanitizer] = None
        self.profiler = None
        if tie_break_seed is not None:
            # the shuffle stream hangs off its own root seed so the
            # simulation's own draws (self.streams) stay untouched
            self.sim.enable_tie_shuffle(
                RandomStreams(tie_break_seed).stream("schedule-tiebreak")
            )
        if trace_events:
            self.event_trace = EventTrace()
            self.sim.enable_event_trace(self.event_trace)
        if sanitize:
            self.sanitizer = self.sim.enable_sanitizer()
        if profile:
            self.profiler = self.sim.enable_profile()

    # -- construction ---------------------------------------------------------
    def add_host(
        self,
        name: str,
        bogomips: float = 3000.0,
        mem_mb: int = 256,
        speeds: Optional[dict[str, float]] = None,
        os_name: str = "Linux 2.4",
    ) -> SmartHost:
        node = self.network.add_host(name)
        machine = Machine(
            self.sim, name, bogomips=bogomips,
            mem_bytes=mem_mb << 20, speeds=speeds, os_name=os_name,
        )
        host = SmartHost(self.sim, node, machine, network=self.network)
        self.hosts[name] = host
        return host

    def add_switch(self, name: str) -> Node:
        """A switch/router node (forwards, no init-speed term, no stack)."""
        node = self.network.add_router(name)
        self.switches[name] = node
        return node

    def link(
        self,
        a,
        b,
        rate_bps: float = ETHERNET_100,
        delay: float = 50e-6,
        mtu: int = 1500,
        subnet: Optional[str] = None,
    ) -> Link:
        """Connect two endpoints (SmartHosts or switch nodes)."""
        node_a = a.node if isinstance(a, SmartHost) else a
        node_b = b.node if isinstance(b, SmartHost) else b
        return self.network.connect(
            node_a, node_b, rate_bps=rate_bps, delay=delay, mtu=mtu, subnet=subnet
        )

    def finalize(self) -> None:
        """Build routing tables and sync /proc views.  Call after topology
        construction, before starting daemons."""
        self.network.build_routes()
        for host in self.hosts.values():
            host.refresh_procfs_nics()
        self._finalized = True

    # -- access -------------------------------------------------------------------
    def host(self, name: str) -> SmartHost:
        try:
            return self.hosts[name]
        except KeyError:
            raise KeyError(f"unknown host {name!r}; have {sorted(self.hosts)}") from None

    def run(self, until: Optional[float] = None) -> None:
        if not self._finalized:
            raise RuntimeError("call finalize() before running the cluster")
        self.sim.run(until)
