"""Cluster layer: host composition, testbed construction, deployment."""

from .builder import Cluster
from .deploy import Deployment, GroupDeployment
from .host import SmartHost
from .testbed import (
    MachineSpec,
    TESTBED_MACHINES,
    TESTBED_SEGMENTS,
    build_testbed,
    segment_partition_nodes,
)
from .wan import WAN_PATHS, WanPathSpec, build_wan_paths

__all__ = [
    "Cluster",
    "SmartHost",
    "Deployment",
    "GroupDeployment",
    "build_testbed",
    "TESTBED_MACHINES",
    "TESTBED_SEGMENTS",
    "segment_partition_nodes",
    "MachineSpec",
    "build_wan_paths",
    "WAN_PATHS",
    "WanPathSpec",
]
