"""WAN path profiles for the RTT experiments of thesis Table 3.2 / Fig 3.6.

The thesis measures RTT-vs-packet-size on six paths ranging from the NUS
campus to APAN Japan and CMU (hundreds of ms) down to same-switch and
loopback (tens of µs).  :func:`build_wan_paths` reconstructs each as a
chain of routers whose propagation delays sum to the published ping RTTs,
with an optional delay-jitter injector — the thesis observes that on paths
with large base RTT "the effects of threshold M will be shadowed".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net import ETHERNET_100, MBPS
from ..sim import Simulator
from .builder import Cluster
from .host import SmartHost

__all__ = ["WanPathSpec", "WAN_PATHS", "build_wan_paths"]


@dataclass(frozen=True)
class WanPathSpec:
    """One row of thesis Table 3.2."""

    index: str
    src: str
    dst: str
    ping_rtt_ms: float
    description: str
    hops: int              # intermediate routers
    bottleneck_bps: float  # capacity of the narrowest link
    jitter_ms: float       # per-probe random extra queueing delay


WAN_PATHS: tuple[WanPathSpec, ...] = (
    WanPathSpec("a", "sagit", "tokxp", 126.0, "NUS campus to APAN Japan", 12, 90 * MBPS, 6.0),
    WanPathSpec("b", "sagit", "cmui", 238.0, "NUS campus to CMU USA", 22, 80 * MBPS, 12.0),
    WanPathSpec("c", "sagit", "ubin", 0.262, "local network segment", 1, ETHERNET_100, 0.0),
    WanPathSpec("d", "tokxp", "jpfreebsd", 0.552, "APAN Japan to ftp server in Japan", 2, ETHERNET_100, 0.0),
    WanPathSpec("e", "helene", "atlas", 0.196, "the same switch", 1, ETHERNET_100, 0.0),
    WanPathSpec("f", "sagit", "localhost", 0.041, "loopback interface", 0, 0.0, 0.0),
)


def build_wan_paths(sim: Simulator | None = None, seed: int = 0):
    """Build all 6 paths in one cluster.

    Returns ``(cluster, endpoints)`` where ``endpoints[index]`` is the
    ``(src_host, dst_name)`` pair to probe for that path.  Path *f* probes
    the source host's own address (loopback).
    """
    cluster = Cluster(sim, seed=seed)
    endpoints: dict[str, tuple[SmartHost, str]] = {}
    made_hosts: dict[str, SmartHost] = {}

    def host_for(name: str) -> SmartHost:
        if name not in made_hosts:
            made_hosts[name] = cluster.add_host(name)
        return made_hosts[name]

    for spec in WAN_PATHS:
        src = host_for(f"{spec.src}-{spec.index}")
        if spec.index == "f":
            # loopback path: the host still needs an address (a NIC), but
            # traffic to itself never touches the wire
            stub = cluster.add_switch(f"stub-{spec.index}")
            cluster.link(src, stub)
            endpoints[spec.index] = (src, src.name)
            continue
        dst = host_for(f"{spec.dst}-{spec.index}")
        # distribute the ping RTT over the hops; RTT covers both directions
        one_way = spec.ping_rtt_ms * 1e-3 / 2.0
        n_links = spec.hops + 1
        per_link = one_way / n_links
        prev = src
        for h in range(spec.hops):
            router = cluster.add_switch(f"r-{spec.index}-{h}")
            rate = spec.bottleneck_bps if h == spec.hops // 2 else ETHERNET_100 * 10
            cluster.link(prev, router, rate_bps=rate, delay=per_link)
            prev = router
        last_rate = spec.bottleneck_bps if spec.hops == 0 else ETHERNET_100 * 10
        link = cluster.link(prev, dst, rate_bps=last_rate, delay=per_link)
        if spec.jitter_ms > 0:
            rng = cluster.streams.stream(f"wan-jitter-{spec.index}")
            _attach_jitter(cluster, link, spec.jitter_ms, rng)
        endpoints[spec.index] = (src, dst.name)

    cluster.finalize()
    return cluster, endpoints


def _attach_jitter(cluster: Cluster, link, jitter_ms: float, rng) -> None:
    """Random cross-traffic bursts on both directions of a link, creating
    the delay variation that shadows the MTU knee on long paths."""
    sim = cluster.sim

    def chatter(channel):
        while True:
            yield sim.timeout(rng.expovariate(1.0 / 0.004))
            burst = rng.randint(1, 6) * 1500
            # occasional queue build-up worth up to ~jitter_ms
            if rng.random() < 0.25:
                burst += int(jitter_ms * 1e-3 * channel.rate_bps / 8 * rng.random())
            channel.occupy(burst)

    # deliberately fire-and-forget: jitter daemons run until the horizon
    sim.process(chatter(link.ab), name="wan-jitter-ab")  # repro: noqa[REPRO305]
    sim.process(chatter(link.ba), name="wan-jitter-ba")  # repro: noqa[REPRO305]
