"""The thesis testbed: 11 Linux machines in 6 network segments (§5.1).

Hardware follows Table 5.1 verbatim.  The topology follows Fig 5.1's
description: the five private lab segments ``192.168.1.0/24`` …
``192.168.5.0/24`` hang off the gateway *dalmatian*; the remote host
*sagit* sits in the School of Computing network ``137.132.81.0/24`` and
reaches the lab through dalmatian.  All segments are 100 Mbps Ethernet.

Per-host *matmul speeds* encode the thesis' own benchmark finding
(Fig 5.2): "the P3 866MHz and P4 2.4GHz CPUs have better performance than
the P4 1.6GHz ~ 1.8GHz ones" for its matrix program (cache effects), so
compute speed is deliberately **not** proportional to bogomips.  Values are
calibrated so the Chapter 5 experiments land near the published times.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net import ETHERNET_100
from ..sim import Simulator
from .builder import Cluster
from .host import SmartHost

__all__ = [
    "TESTBED_MACHINES",
    "MachineSpec",
    "build_testbed",
    "TESTBED_SEGMENTS",
    "segment_partition_nodes",
]


@dataclass(frozen=True)
class MachineSpec:
    """One row of thesis Table 5.1 (+ calibrated matmul speed, flops/s)."""

    name: str
    cpu: str
    bogomips: float
    ram_mb: int
    os: str
    matmul_flops: float
    segment: str


#: Table 5.1, with matmul speeds calibrated to Fig 5.2's ranking
TESTBED_MACHINES: tuple[MachineSpec, ...] = (
    MachineSpec("sagit", "P3 866MHz", 1730.15, 128, "Debian Linux 3.0r2 (2.4)", 38e6, "137.132.81"),
    MachineSpec("dalmatian", "P4 2.4GHz", 4771.02, 512, "Redhat Linux 8.0 (2.4)", 54e6, "192.168.1"),
    MachineSpec("mimas", "P4 1.7GHz", 3394.76, 192, "Redhat Linux 9.0 (2.4)", 30e6, "192.168.1"),
    MachineSpec("telesto", "P4 1.6GHz", 3185.04, 128, "Redhat Linux 7.3 (2.4)", 28e6, "192.168.2"),
    MachineSpec("lhost", "P3 866MHz", 1730.15, 128, "Redhat Linux 9.0 (2.4)", 36e6, "192.168.2"),
    MachineSpec("helene", "P4 1.7GHz", 3394.76, 256, "Redhat Linux 9.0 (2.4)", 32e6, "192.168.3"),
    MachineSpec("phoebe", "P4 1.7GHz", 3394.76, 256, "Redhat Linux 9.0 (2.4)", 31e6, "192.168.3"),
    MachineSpec("calypso", "P4 1.7GHz", 3394.76, 256, "Redhat Linux 9.0 (2.4)", 31.5e6, "192.168.4"),
    MachineSpec("dione", "P4 2.4GHz", 4771.02, 512, "Redhat Linux 7.3 (2.4)", 53e6, "192.168.4"),
    MachineSpec("titan-x", "P4 1.7GHz", 3394.76, 256, "Redhat Linux 7.3 (2.4)", 30.5e6, "192.168.5"),
    MachineSpec("pandora-x", "P4 1.8GHz", 3591.37, 256, "Redhat Linux 9.0 (2.4)", 33e6, "192.168.5"),
)

TESTBED_SEGMENTS: tuple[str, ...] = (
    "137.132.81",
    "192.168.1",
    "192.168.2",
    "192.168.3",
    "192.168.4",
    "192.168.5",
)

#: switch port latency on the 100 Mbps segments
_SWITCH_DELAY = 25e-6
#: extra propagation crossing the campus to the lab gateway
_CAMPUS_DELAY = 60e-6


def segment_partition_nodes(segment: str) -> tuple[str, str]:
    """Endpoint names of the link to cut to partition a lab segment from
    the rest of the testbed — feed straight into
    :meth:`repro.faults.FaultPlan.partition`.  Every segment reaches the
    world through the gateway *dalmatian*, so cutting the
    dalmatian<->switch uplink isolates the whole segment (dalmatian's own
    segment ``192.168.1`` cannot be cut away from itself)."""
    if segment not in TESTBED_SEGMENTS:
        raise KeyError(f"unknown segment {segment!r}; have {TESTBED_SEGMENTS}")
    if segment == "192.168.1":
        raise ValueError("192.168.1 is the gateway's own segment")
    return ("dalmatian", f"sw-{segment}")


def build_testbed(sim: Simulator | None = None, seed: int = 0,
                  tie_break_seed: int | None = None,
                  trace_events: bool = False,
                  sanitize: bool = False,
                  profile: bool = False) -> Cluster:
    """Construct the 11-machine testbed; returns a finalized cluster.

    Every segment is a switch; dalmatian has one NIC per lab segment (it is
    the gateway) plus one on the campus segment towards sagit.
    ``tie_break_seed``/``trace_events`` arm the schedule sanitizer,
    ``sanitize`` the happens-before race detector and ``profile`` the
    deterministic event profiler
    (:class:`~repro.cluster.builder.Cluster`).
    """
    cluster = Cluster(sim, seed=seed, tie_break_seed=tie_break_seed,
                      trace_events=trace_events, sanitize=sanitize,
                      profile=profile)
    hosts: dict[str, SmartHost] = {}
    for spec in TESTBED_MACHINES:
        hosts[spec.name] = cluster.add_host(
            spec.name,
            bogomips=spec.bogomips,
            mem_mb=spec.ram_mb,
            speeds={"matmul": spec.matmul_flops},
            os_name=spec.os,
        )

    switches = {seg: cluster.add_switch(f"sw-{seg}") for seg in TESTBED_SEGMENTS}

    # every machine attaches to its segment's switch
    for spec in TESTBED_MACHINES:
        cluster.link(
            hosts[spec.name], switches[spec.segment],
            rate_bps=ETHERNET_100, delay=_SWITCH_DELAY, subnet=spec.segment,
        )

    # dalmatian is the gateway: a NIC on each remaining segment
    gateway = hosts["dalmatian"]
    for seg in TESTBED_SEGMENTS:
        if seg in ("192.168.1",):
            continue  # already attached above
        delay = _CAMPUS_DELAY if seg == "137.132.81" else _SWITCH_DELAY
        cluster.link(gateway, switches[seg], rate_bps=ETHERNET_100,
                     delay=delay, subnet=seg)

    cluster.finalize()
    return cluster
