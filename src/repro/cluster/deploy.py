"""Deployment: wiring the Smart library's daemons onto a cluster.

Mirrors thesis Fig 3.1: each server group has a *monitor machine* running
the system/network/security monitors plus a transmitter; the *wizard
machine* runs the receiver and the wizard; probes run on every server.
Both operating modes are supported — centralized (transmitters push) and
distributed (wizard pulls per request).

High availability (beyond the thesis): pass ``wizard_hosts=[...]`` to run
a *replica set* — every listed host gets its own receiver + wizard pair,
every group's transmitter fans its snapshots out to all replicas, and
:meth:`Deployment.client_for` hands clients the ranked replica list so
they fail over when a replica dies or answers stale.  The single
``wizard_host`` form stays the thesis' one-wizard deployment, and
:attr:`Deployment.wizard` / :attr:`Deployment.receiver` keep naming the
primary replica.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sim import Interrupt
from ..core import (
    Config,
    DEFAULT_CONFIG,
    DummySecurityLog,
    Mode,
    NetworkMonitor,
    Receiver,
    SecurityMonitor,
    ServerProbe,
    SmartClient,
    SystemMonitor,
    Transmitter,
    Wizard,
)
from .builder import Cluster
from .host import SmartHost

__all__ = ["Deployment", "GroupDeployment", "WizardReplica", "BOOT_STAGGER"]

#: gap between consecutive daemon starts.  A real init system brings
#: daemons up sequentially, never in the same nanosecond; starting them
#: all at exactly t=0 made "who wins the uplink for its first frame" an
#: artifact of event-queue insertion order — exactly the tie-break
#: dependence the schedule sanitizer (repro.sim.kernel) exists to catch.
#: 1 ms is far below every monitor interval, and distinct sub-second
#: phases mean two integer-second periodic timers can never collide.
BOOT_STAGGER = 1e-3


@dataclass
class WizardReplica:
    """One wizard machine of the replica set: its receiver + wizard pair."""

    host: SmartHost
    receiver: Receiver
    wizard: Wizard


@dataclass
class GroupDeployment:
    """Daemons of one server group."""

    name: str
    monitor_host: SmartHost
    servers: list[SmartHost]
    sysmon: SystemMonitor
    netmon: NetworkMonitor
    secmon: SecurityMonitor
    transmitter: Transmitter
    probes: list[ServerProbe] = field(default_factory=list)


class Deployment:
    """A full Smart-library installation on a cluster."""

    def __init__(
        self,
        cluster: Cluster,
        wizard_host: Optional[SmartHost] = None,
        config: Config = DEFAULT_CONFIG,
        mode: Optional[str] = None,
        wizard_hosts: Optional[list[SmartHost]] = None,
    ):
        self.cluster = cluster
        self.config = config
        self.mode = mode or config.mode
        hosts = list(wizard_hosts) if wizard_hosts else []
        if not hosts and wizard_host is not None:
            hosts = [wizard_host]
        if not hosts:
            raise ValueError("Deployment needs at least one wizard host")
        self.wizard_hosts: list[SmartHost] = hosts
        self.wizard_host = hosts[0]
        self.groups: dict[str, GroupDeployment] = {}
        self._boot_proc = None
        #: the wizard replica set — one receiver + wizard pair per host
        self.replicas: list[WizardReplica] = []
        for host in hosts:
            # the receiver reads the *host's* wall clock to flag reporter
            # disagreement (suspected_skew); freshness itself is judged on
            # relative epochs, so a skew-clock fault on a wizard machine
            # never makes its own data look stale
            receiver = Receiver(cluster.sim, host.stack, host.shm, config,
                                clock=host.clock)
            wizard = Wizard(
                cluster.sim,
                host.stack,
                host.shm,
                config,
                mode=self.mode,
                receiver=receiver,
            )
            self.replicas.append(WizardReplica(host, receiver, wizard))
        # the primary replica keeps the thesis-era attribute names
        self.receiver = self.replicas[0].receiver
        self.wizard = self.replicas[0].wizard
        self._started = False

    # -- construction ---------------------------------------------------------
    def add_group(
        self,
        name: str,
        monitor_host: SmartHost,
        servers: list[SmartHost],
        security_levels: Optional[dict[str, int]] = None,
    ) -> GroupDeployment:
        if name in self.groups:
            raise ValueError(f"group {name!r} already deployed")
        sim = self.cluster.sim
        cfg = self.config
        sysmon = SystemMonitor(sim, monitor_host.stack, monitor_host.shm, cfg,
                               clock=monitor_host.clock)
        netmon = NetworkMonitor(sim, monitor_host.stack, monitor_host.shm, name, cfg)
        levels = security_levels or {s.name: 1 for s in servers}
        log = DummySecurityLog(
            "\n".join(f"{host} {level}" for host, level in levels.items())
        )
        secmon = SecurityMonitor(sim, monitor_host.shm, log, cfg)
        transmitter = Transmitter(
            sim,
            monitor_host.stack,
            monitor_host.shm,
            receiver_addrs=[h.addr for h in self.wizard_hosts],
            config=cfg,
            mode=self.mode,
            clock=monitor_host.clock,
        )
        group = GroupDeployment(
            name=name,
            monitor_host=monitor_host,
            servers=list(servers),
            sysmon=sysmon,
            netmon=netmon,
            secmon=secmon,
            transmitter=transmitter,
        )
        for server in servers:
            server.group = name
            probe = ServerProbe(
                sim,
                server.procfs,
                server.stack,
                monitor_addr=monitor_host.addr,
                group=name,
                config=cfg,
                security_level=levels.get(server.name, 1),
                clock=server.clock,
            )
            group.probes.append(probe)
            # register the server's /24 with every wizard replica
            prefix = server.addr.rsplit(".", 1)[0]
            for replica in self.replicas:
                replica.wizard.register_group(prefix, name)
        # the monitor sits inside its group's network: clients on that
        # subnet belong to this group even when the group serves nothing
        # (a monitor-only group, e.g. the client side of the massd runs);
        # never override a prefix some group's *servers* already claimed
        for replica in self.replicas:
            replica.wizard.group_prefixes.setdefault(
                monitor_host.addr.rsplit(".", 1)[0], name
            )
        # peer the network monitors all-to-all
        for other in self.groups.values():
            other.netmon.add_peer(name, monitor_host.addr)
            netmon.add_peer(other.name, other.monitor_host.addr)
        if self.mode == Mode.DISTRIBUTED:
            for replica in self.replicas:
                replica.receiver.add_transmitter(monitor_host.addr)
        self.groups[name] = group
        return group

    # -- lifecycle ----------------------------------------------------------------
    def _boot_sequence(self) -> list:
        """Per-group daemon ``start`` callables in deterministic boot order.

        The wizard-machine daemons (receiver, wizard) are not staggered:
        they only *listen* at start, so they cannot contend for an uplink,
        and callers reasonably expect them to exist as soon as
        :meth:`start` returns (e.g. to kill one for a failure test).
        """
        seq = []
        for group in self.groups.values():
            seq.append(group.sysmon.start)
            seq.append(group.secmon.start)
            if group.netmon.peers:
                seq.append(group.netmon.start)
            seq.append(group.transmitter.start)
            for probe in group.probes:
                seq.append(probe.start)
        return seq

    def _boot(self):
        """Process generator: bring daemons up one BOOT_STAGGER apart."""
        try:
            for i, daemon_start in enumerate(self._boot_sequence()):
                if i:
                    yield self.cluster.sim.timeout(BOOT_STAGGER)
                if not self._started:  # stop() raced the boot: quiesce
                    return
                daemon_start()
        except Interrupt:
            pass

    def start(self) -> None:
        if self._started:
            raise RuntimeError("deployment already started")
        if not self.groups:
            raise RuntimeError("deploy at least one group before start()")
        self._started = True
        for replica in self.replicas:
            if self.mode == Mode.CENTRALIZED:
                replica.receiver.start()
            replica.wizard.start()
        self._boot_proc = self.cluster.sim.process(self._boot(), name="deploy-boot")

    def stop(self) -> None:
        self._started = False
        if self._boot_proc is not None and self._boot_proc.is_alive:
            self._boot_proc.interrupt("stop")
        for group in self.groups.values():
            for probe in group.probes:
                probe.stop()
            group.sysmon.stop()
            group.netmon.stop()
            group.secmon.stop()
            group.transmitter.stop()
        for replica in self.replicas:
            replica.receiver.stop()
            replica.wizard.stop()

    # -- client access -----------------------------------------------------------
    def client_for(self, host: SmartHost, seed: int = 1) -> SmartClient:
        rng = self.cluster.streams.stream(f"client-{host.name}-{seed}")
        return SmartClient(
            self.cluster.sim,
            host.stack,
            config=self.config,
            rng=rng,
            wizard_addrs=[h.addr for h in self.wizard_hosts],
        )

    def all_servers(self) -> list[SmartHost]:
        out = []
        for group in self.groups.values():
            out.extend(group.servers)
        return out

    def warm_up_seconds(self) -> float:
        """Sim time after which the wizard's DBs are fully populated."""
        return (
            self.config.probe_interval
            + self.config.transmit_interval
            + max(1.0, self.config.netmon_interval)
            + 1.0
            + BOOT_STAGGER * len(self._boot_sequence())
        )
