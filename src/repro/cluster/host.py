"""SmartHost: one complete simulated machine — compute + network + IPC.

Glues a :class:`~repro.host.machine.Machine` (CPU/memory/disk), a network
:class:`~repro.net.node.Node` with its :class:`~repro.net.sockets.NetworkStack`,
a :class:`~repro.host.procfs.ProcFS` view and a per-machine System V-style
:class:`~repro.sim.resources.SharedMemory` into the thing the Smart
library's daemons run on.
"""

from __future__ import annotations


from ..host import Machine, ProcFS
from ..net import NetworkStack, Node
from ..sim import HostClock, SharedMemory, Simulator

__all__ = ["SmartHost"]


class SmartHost:
    """A host in the computing environment."""

    def __init__(self, sim: Simulator, node: Node, machine: Machine, network=None):
        self.sim = sim
        self.node = node
        self.machine = machine
        self.stack = NetworkStack(sim, node, network)
        self.procfs = ProcFS(machine, node.nics)
        self.shm = SharedMemory(sim)
        #: the host's wall clock — identity until a skew-clock fault
        #: programs an offset/drift (daemons stamp data through this)
        self.clock = HostClock(sim)
        #: server-group label, set at deployment time
        self.group: str = "default"

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def addr(self) -> str:
        return self.node.addr

    def refresh_procfs_nics(self) -> None:
        """Re-sync the /proc/net/dev view after links were added."""
        self.procfs.attach_nics(self.node.nics)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<SmartHost {self.name} @ {self.addr if self.node.nics else '?'}>"
