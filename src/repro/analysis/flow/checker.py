"""Orchestration for ``repro check --flow``.

Parses every file once, builds the project symbol table, then runs the
four analyses over it:

1. :class:`~repro.analysis.flow.messages.TagAnalysis` — wire-tag
   constant propagation to every send site, cross-checked against the
   parsed ``WIRE_TAG_HANDLERS`` registry (REPRO400);
2. :func:`~repro.analysis.flow.deadlock.deadlock_diagnostics` —
   wait-for cycles (REPRO401);
3. :func:`~repro.analysis.flow.lifecycle.lifecycle_diagnostics` —
   getter-race and handle leaks (REPRO402/403);
4. :func:`~repro.analysis.flow.deadlock.client_path_diagnostics` —
   unguarded blocking waits on the client request path (REPRO404).

``# repro: noqa[CODE]`` suppression works exactly as in the per-file
engine — same comment syntax, same line anchoring.  Output ordering is
fully deterministic: findings sort by (path, line, col, code), so two
runs over the same tree are byte-identical.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from ...lang.diagnostics import Diagnostic
from ..engine import _noqa_map, iter_python_files
from .deadlock import (TraceExtractor, client_path_diagnostics,
                       deadlock_diagnostics)
from .lifecycle import lifecycle_diagnostics
from .messages import TagAnalysis, graph_dot, graph_json, registry_diagnostics
from .symbols import FileUnit, SymbolTable, module_name_for

__all__ = ["FlowReport", "run_flow", "FLOW_RULE_COUNT"]

#: the F-series surface: REPRO400..REPRO404
FLOW_RULE_COUNT = 5


@dataclass
class ParseFailure:
    """A file that did not parse (no analysis ran on it)."""

    path: Path
    line: int
    col: int
    message: str


@dataclass
class FlowReport:
    """The outcome of one whole-program flow analysis."""

    units: list[FileUnit] = field(default_factory=list)
    parse_failures: list[ParseFailure] = field(default_factory=list)
    #: unsuppressed findings, sorted by (path, line, col, code)
    findings: list[tuple[FileUnit, Diagnostic]] = field(default_factory=list)
    suppressed: int = 0
    function_count: int = 0
    send_site_count: int = 0
    tag_count: int = 0
    table: "SymbolTable | None" = None
    analysis: "TagAnalysis | None" = None

    @property
    def exit_code(self) -> int:
        return 1 if (self.findings or self.parse_failures) else 0

    def graph_json(self) -> dict[str, object]:
        assert self.table is not None and self.analysis is not None
        return graph_json(self.table, self.analysis)

    def graph_dot(self) -> str:
        assert self.table is not None and self.analysis is not None
        return graph_dot(self.table, self.analysis)


def _load_units(paths: Iterable[Path],
                failures: list[ParseFailure]) -> list[FileUnit]:
    units: list[FileUnit] = []
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            failures.append(ParseFailure(
                path=path, line=exc.lineno or 0, col=(exc.offset or 1) - 1,
                message=exc.msg or "syntax error"))
            continue
        units.append(FileUnit(path=path, posix=path.as_posix(),
                              module=module_name_for(path),
                              source=source, tree=tree))
    return units


def run_flow(paths: Iterable[Path]) -> FlowReport:
    """Analyze every ``*.py`` under ``paths`` as one program."""
    report = FlowReport()
    report.units = _load_units(paths, report.parse_failures)
    table = SymbolTable(report.units)
    analysis = TagAnalysis(table)
    analysis.run()
    extractor = TraceExtractor(table)

    raw: list[tuple[FileUnit, Diagnostic]] = []
    raw.extend(registry_diagnostics(table, analysis))
    raw.extend(deadlock_diagnostics(extractor))
    raw.extend(lifecycle_diagnostics(table))
    raw.extend(client_path_diagnostics(extractor))

    noqa_by_posix = {u.posix: _noqa_map(u.source) for u in report.units}
    kept: list[tuple[FileUnit, Diagnostic]] = []
    for unit, diag in raw:
        silenced = noqa_by_posix[unit.posix].get(diag.line, frozenset())
        if silenced is None or (silenced and diag.code in silenced):
            report.suppressed += 1
        else:
            kept.append((unit, diag))
    kept.sort(key=lambda item: (item[0].posix, item[1].line,
                                item[1].col, item[1].code))
    report.findings = kept
    report.function_count = len(table.functions)
    report.send_site_count = len(analysis.send_sites)
    registered = {entry.tag for registry in table.registries
                  for entry in registry.entries}
    report.tag_count = len(registered | set(analysis.sent_tags()))
    report.table = table
    report.analysis = analysis
    return report
