"""Project-wide symbol table for the whole-program flow analyzer.

The per-file rule engine (:mod:`repro.analysis.engine`) sees one module
at a time; the F-series analyses need to see the *project*: which module
defines which class, which class owns which generator method, which
``MSG_``/``REPLY_`` constants exist, what the dataclass field defaults
are (``WizardReply.status`` defaults to ``REPLY_OK`` — a construction
that never names the tag still sends it), and what the live
``WIRE_TAG_HANDLERS`` registry literal claims.  This module builds that
table from parsed ASTs only — nothing is imported or executed, so the
analyzer runs on any tree, fixtures included.

Module names are derived from the path: everything from the ``repro``
path segment on becomes the dotted name (``src/repro/core/records.py``
→ ``repro.core.records``); files outside a ``repro`` tree use their
stem, so a fixture's registry can point at
``f400_registry_drift.Daemon.handle_ping`` and resolve.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "FileUnit",
    "FunctionInfo",
    "ClassInfo",
    "RegistryEntry",
    "WireRegistry",
    "SymbolTable",
    "module_name_for",
]


@dataclass(frozen=True)
class FileUnit:
    """One parsed source file under analysis."""

    path: Path
    posix: str
    module: str
    source: str
    tree: ast.Module


def module_name_for(path: Path) -> str:
    """Dotted module name from a file path (see module docstring)."""
    parts = path.as_posix().split("/")
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    if "repro" in parts[:-1]:
        dotted = parts[parts.index("repro"):-1] + [stem]
        if dotted[-1] == "__init__":
            dotted = dotted[:-1]
        return ".".join(dotted)
    return stem


@dataclass
class FunctionInfo:
    """A module-level function or a class method."""

    qualname: str
    module: str
    name: str
    cls: str  # simple class name, "" for module-level functions
    node: ast.FunctionDef
    params: tuple[str, ...]

    @property
    def is_generator(self) -> bool:
        return any(isinstance(n, (ast.Yield, ast.YieldFrom))
                   for n in ast.walk(self.node))


@dataclass
class ClassInfo:
    """A class: its methods and (dataclass-style) annotated fields."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: annotated fields in declaration order with their default exprs
    fields: tuple[tuple[str, "ast.expr | None"], ...] = ()


@dataclass
class RegistryEntry:
    """One ``tag -> (handler paths)`` row of a registry literal."""

    tag: str
    tag_node: ast.expr
    paths: tuple[tuple[str, ast.expr], ...]


@dataclass
class WireRegistry:
    """A parsed ``WIRE_TAG_HANDLERS = {...}`` dict literal."""

    unit: FileUnit
    node: ast.expr
    entries: tuple[RegistryEntry, ...]

    @property
    def tags(self) -> tuple[str, ...]:
        return tuple(e.tag for e in self.entries)


class SymbolTable:
    """Symbols of every analyzed file, queryable for call resolution."""

    def __init__(self, units: list[FileUnit]) -> None:
        self.units = units
        self.functions: dict[str, FunctionInfo] = {}
        self.module_functions: dict[tuple[str, str], FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        self.constants: dict[tuple[str, str], int] = {}
        #: global ``MSG_``/``REPLY_`` int constants (wire tags)
        self.tags: dict[str, int] = {}
        self.registries: list[WireRegistry] = []
        for unit in units:
            self._index_unit(unit)

    # -- construction -------------------------------------------------------
    def _index_unit(self, unit: FileUnit) -> None:
        for node in unit.tree.body:
            if isinstance(node, ast.FunctionDef):
                self._add_function(unit, node, cls="")
            elif isinstance(node, ast.ClassDef):
                self._add_class(unit, node)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    self._add_assign(unit, target.id, node.value)
            elif (isinstance(node, ast.AnnAssign) and node.value is not None
                  and isinstance(node.target, ast.Name)):
                self._add_assign(unit, node.target.id, node.value)

    def _add_assign(self, unit: FileUnit, name: str, value: ast.expr) -> None:
        if (isinstance(value, ast.Constant)
                and isinstance(value.value, int)
                and not isinstance(value.value, bool)):
            self.constants[(unit.module, name)] = value.value
            if name.startswith(("MSG_", "REPLY_")) and name not in self.tags:
                self.tags[name] = value.value
        elif name == "WIRE_TAG_HANDLERS" and isinstance(value, ast.Dict):
            registry = _parse_registry(unit, value)
            if registry is not None:
                self.registries.append(registry)

    def _add_function(self, unit: FileUnit, node: ast.FunctionDef,
                      cls: str) -> FunctionInfo:
        qual = (f"{unit.module}.{cls}.{node.name}" if cls
                else f"{unit.module}.{node.name}")
        params = tuple(a.arg for a in (
            node.args.posonlyargs + node.args.args))
        info = FunctionInfo(qualname=qual, module=unit.module,
                            name=node.name, cls=cls, node=node,
                            params=params)
        self.functions[qual] = info
        if not cls:
            self.module_functions[(unit.module, node.name)] = info
        return info

    def _add_class(self, unit: FileUnit, node: ast.ClassDef) -> None:
        info = ClassInfo(qualname=f"{unit.module}.{node.name}",
                         module=unit.module, name=node.name, node=node)
        fields: list[tuple[str, ast.expr | None]] = []
        for item in node.body:
            if isinstance(item, ast.FunctionDef):
                info.methods[item.name] = self._add_function(
                    unit, item, cls=node.name)
            elif (isinstance(item, ast.AnnAssign)
                  and isinstance(item.target, ast.Name)):
                fields.append((item.target.id, item.value))
        info.fields = tuple(fields)
        self.classes[info.qualname] = info
        self.classes_by_name.setdefault(node.name, []).append(info)

    # -- queries ------------------------------------------------------------
    def class_named(self, name: str, module: str) -> "ClassInfo | None":
        """The class called ``name``: same-module first, else the unique
        global definition (ambiguous names do not resolve)."""
        candidates = self.classes_by_name.get(name, [])
        local = [c for c in candidates if c.module == module]
        if len(local) == 1:
            return local[0]
        if len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_call(self, func: ast.expr, module: str,
                     cls: str) -> "FunctionInfo | ClassInfo | None":
        """Resolve a call's target to a known function, method or class.

        Deliberately conservative: bare names resolve against the caller's
        module, ``self.x`` against the caller's class, ``Class.x`` against
        a uniquely-named class.  Attribute chains through instances
        (``self.stack.tcp.connect``) do not resolve — the channel/op
        extraction handles those shapes structurally instead.
        """
        if isinstance(func, ast.Name):
            fn = self.module_functions.get((module, func.id))
            if fn is not None:
                return fn
            return self.class_named(func.id, module)
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner = func.value.id
            if owner == "self" and cls:
                info = self.class_named(cls, module)
                if info is not None:
                    return info.methods.get(func.attr)
                return None
            cinfo = self.class_named(owner, module)
            if cinfo is not None:
                return cinfo.methods.get(func.attr)
        return None

    def resolve_dotted(self, dotted: str) -> bool:
        """Does a registry handler path name a known function/method?"""
        return dotted in self.functions


def _parse_registry(unit: FileUnit, node: ast.Dict) -> "WireRegistry | None":
    entries: list[RegistryEntry] = []
    for key, value in zip(node.keys, node.values):
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        paths: list[tuple[str, ast.expr]] = []
        elts = value.elts if isinstance(value, (ast.Tuple, ast.List)) else []
        for elt in elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                paths.append((elt.value, elt))
        entries.append(RegistryEntry(tag=key.value, tag_node=key,
                                     paths=tuple(paths)))
    return WireRegistry(unit=unit, node=node, entries=tuple(entries))
