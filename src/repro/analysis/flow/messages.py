"""Wire-tag constant propagation and the static message-flow graph.

Every ``MSG_``/``REPLY_`` tag starts life as a module-level int constant
(:mod:`repro.core.records`).  This pass abstract-interprets each function
over *sets of tag names*: an expression's value is the set of wire tags
it may carry.  Propagation follows the shapes the daemons actually use —

* ``WireMessage(MSG_PULL, 8, None)`` — constructor args;
* ``WizardReply(seq=..., servers=())`` — a dataclass field *default*
  (``status: int = REPLY_OK``) tags constructions that never name it;
* ``WireMessage.pull()`` / ``reply = yield from self._process(...)`` —
  function return values, to a cross-function fixpoint;
* ``self._send_messages(conn, messages)`` — tagged arguments flow into
  callee parameters (the generic send helper inherits the snapshot's
  tags);
* containers, iteration, attribute access (``msg.type``), method calls
  on tagged objects (``reply.to_wire()``) keep the tags flowing.

A ``.send(...)``/``.sendto(...)`` call with any tagged argument is a
**send site**.  The set of send sites, cross-checked against the parsed
``WIRE_TAG_HANDLERS`` literal, yields the REPRO400 diagnostics and the
exported message-flow graph: the registry stops being hand-maintained
documentation and becomes a verified artifact.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ...lang.diagnostics import Diagnostic, make
from .symbols import ClassInfo, FileUnit, FunctionInfo, SymbolTable

__all__ = ["SendSite", "TagAnalysis", "graph_json", "graph_dot"]

_SEND_ATTRS = frozenset({"send", "sendto"})
_MAX_ROUNDS = 12


@dataclass
class SendSite:
    """One ``.send``/``.sendto`` call carrying wire tags."""

    fn: FunctionInfo
    unit: FileUnit
    node: ast.Call
    tags: tuple[str, ...]


class TagAnalysis:
    """Cross-function tag-set fixpoint over the symbol table."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.returns_tags: dict[str, frozenset[str]] = {}
        self.param_tags: dict[tuple[str, str], frozenset[str]] = {}
        self.send_sites: list[SendSite] = []
        self._unit_of: dict[str, FileUnit] = {
            u.module: u for u in table.units}

    # -- fixpoint driver ----------------------------------------------------
    def run(self) -> None:
        order = sorted(self.table.functions)
        for _ in range(_MAX_ROUNDS):
            before = (dict(self.returns_tags), dict(self.param_tags))
            self.send_sites = []
            for qual in order:
                self._analyze_function(self.table.functions[qual])
            if (self.returns_tags, self.param_tags) == before:
                break

    def sent_tags(self) -> frozenset[str]:
        out: set[str] = set()
        for site in self.send_sites:
            out.update(site.tags)
        return frozenset(out)

    # -- one function -------------------------------------------------------
    def _analyze_function(self, fn: FunctionInfo) -> None:
        env: dict[str, frozenset[str]] = {}
        for param in fn.params:
            tags = self.param_tags.get((fn.qualname, param))
            if tags:
                env[param] = tags
        returns: set[str] = set()
        # local fixpoint: assignments may read names bound further down
        # (loop-carried flows); a couple of passes reach stability
        for _ in range(_MAX_ROUNDS):
            changed = False
            for stmt in ast.walk(fn.node):
                changed |= self._visit_stmt(stmt, env, fn, returns)
            if not changed:
                break
        prev = self.returns_tags.get(fn.qualname, frozenset())
        merged = prev | frozenset(returns)
        if merged != prev:
            self.returns_tags[fn.qualname] = merged
        # send sites + call-site parameter bindings (every call expr)
        unit = self._unit_of[fn.module]
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            self._bind_call_params(node, env, fn)
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SEND_ATTRS):
                tags: set[str] = set()
                for arg in node.args:
                    tags |= self._tags_of(arg, env, fn)
                for kw in node.keywords:
                    tags |= self._tags_of(kw.value, env, fn)
                if tags:
                    self.send_sites.append(SendSite(
                        fn=fn, unit=unit, node=node,
                        tags=tuple(sorted(tags))))

    def _visit_stmt(self, stmt: ast.AST, env: dict[str, frozenset[str]],
                    fn: FunctionInfo, returns: set[str]) -> bool:
        changed = False
        if isinstance(stmt, ast.Assign):
            tags = self._tags_of(stmt.value, env, fn)
            for target in stmt.targets:
                changed |= self._bind_target(target, tags, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            tags = self._tags_of(stmt.value, env, fn)
            changed |= self._bind_target(stmt.target, tags, env)
        elif isinstance(stmt, ast.AugAssign):
            tags = self._tags_of(stmt.value, env, fn)
            changed |= self._bind_target(stmt.target, tags, env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            tags = self._tags_of(stmt.iter, env, fn)
            changed |= self._bind_target(stmt.target, tags, env)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            new = self._tags_of(stmt.value, env, fn) - returns
            if new:
                returns.update(new)
                changed = True
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            # x.append(tagged) / x.extend(tagged): the container is tagged
            if (isinstance(call.func, ast.Attribute)
                    and call.func.attr in ("append", "extend", "add", "insert")
                    and isinstance(call.func.value, ast.Name)):
                tags = frozenset().union(
                    *(self._tags_of(a, env, fn) for a in call.args)
                ) if call.args else frozenset()
                if tags:
                    changed |= self._bind_name(call.func.value.id, tags, env)
        return changed

    def _bind_target(self, target: ast.expr, tags: frozenset[str],
                     env: dict[str, frozenset[str]]) -> bool:
        if isinstance(target, ast.Name):
            return self._bind_name(target.id, tags, env)
        if isinstance(target, (ast.Tuple, ast.List)):
            changed = False
            for elt in target.elts:
                changed |= self._bind_target(elt, tags, env)
            return changed
        return False

    @staticmethod
    def _bind_name(name: str, tags: frozenset[str],
                   env: dict[str, frozenset[str]]) -> bool:
        prev = env.get(name, frozenset())
        merged = prev | tags
        if merged != prev:
            env[name] = merged
            return True
        return False

    def _bind_call_params(self, call: ast.Call,
                          env: dict[str, frozenset[str]],
                          fn: FunctionInfo) -> None:
        target = self.table.resolve_call(call.func, fn.module, fn.cls)
        if not isinstance(target, FunctionInfo):
            return
        params = list(target.params)
        if params[:1] == ["self"]:
            params = params[1:]
        for i, arg in enumerate(call.args):
            if i >= len(params):
                break
            tags = self._tags_of(arg, env, fn)
            if tags:
                key = (target.qualname, params[i])
                prev = self.param_tags.get(key, frozenset())
                if not tags <= prev:
                    self.param_tags[key] = prev | tags
        for kw in call.keywords:
            if kw.arg is None:
                continue
            tags = self._tags_of(kw.value, env, fn)
            if tags:
                key = (target.qualname, kw.arg)
                prev = self.param_tags.get(key, frozenset())
                if not tags <= prev:
                    self.param_tags[key] = prev | tags

    # -- expression abstract value ------------------------------------------
    def _tags_of(self, expr: "ast.expr | None", env: dict[str, frozenset[str]],
                 fn: FunctionInfo) -> frozenset[str]:
        if expr is None:
            return frozenset()
        if isinstance(expr, ast.Name):
            if expr.id in self.table.tags:
                return frozenset({expr.id})
            return env.get(expr.id, frozenset())
        if isinstance(expr, ast.Attribute):
            ref = self.table.resolve_call(expr, fn.module, fn.cls)
            if isinstance(ref, FunctionInfo):
                # a bare reference to a tag-returning function carries the
                # tags it would produce (snapshot's builder table)
                return self.returns_tags.get(ref.qualname, frozenset())
            return self._tags_of(expr.value, env, fn)
        if isinstance(expr, ast.Call):
            return self._tags_of_call(expr, env, fn)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            out: frozenset[str] = frozenset()
            for elt in expr.elts:
                out |= self._tags_of(elt, env, fn)
            return out
        if isinstance(expr, ast.Dict):
            out = frozenset()
            for v in list(expr.keys) + list(expr.values):
                out |= self._tags_of(v, env, fn)
            return out
        if isinstance(expr, ast.Subscript):
            return self._tags_of(expr.value, env, fn)
        if isinstance(expr, ast.Starred):
            return self._tags_of(expr.value, env, fn)
        if isinstance(expr, ast.BoolOp):
            out = frozenset()
            for v in expr.values:
                out |= self._tags_of(v, env, fn)
            return out
        if isinstance(expr, ast.IfExp):
            return (self._tags_of(expr.body, env, fn)
                    | self._tags_of(expr.orelse, env, fn))
        if isinstance(expr, ast.BinOp):
            return (self._tags_of(expr.left, env, fn)
                    | self._tags_of(expr.right, env, fn))
        if isinstance(expr, (ast.Await, ast.YieldFrom)):
            return self._tags_of(expr.value, env, fn)
        return frozenset()

    def _tags_of_call(self, call: ast.Call, env: dict[str, frozenset[str]],
                      fn: FunctionInfo) -> frozenset[str]:
        target = self.table.resolve_call(call.func, fn.module, fn.cls)
        if isinstance(target, ClassInfo):
            return self._construction_tags(call, target, env, fn)
        if isinstance(target, FunctionInfo):
            return self.returns_tags.get(target.qualname, frozenset())
        # unresolved: a call on a tagged callable/object stays tagged
        # (builder(...), reply.to_wire()); tagged args flow through
        # wrappers (dict(data))
        out = self._tags_of(call.func, env, fn)
        for arg in call.args:
            out |= self._tags_of(arg, env, fn)
        for kw in call.keywords:
            out |= self._tags_of(kw.value, env, fn)
        return out

    def _construction_tags(self, call: ast.Call, cls: ClassInfo,
                           env: dict[str, frozenset[str]],
                           fn: FunctionInfo) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for arg in call.args:
            out |= self._tags_of(arg, env, fn)
        for kw in call.keywords:
            out |= self._tags_of(kw.value, env, fn)
        # dataclass field defaults: fields not passed keep their default —
        # WizardReply(...) without status= still answers REPLY_OK
        passed = {name for name, _ in cls.fields[:len(call.args)]}
        passed.update(kw.arg for kw in call.keywords if kw.arg is not None)
        for name, default in cls.fields:
            if name in passed or default is None:
                continue
            if (isinstance(default, ast.Name)
                    and default.id in self.table.tags):
                out |= frozenset({default.id})
        return out


# -- registry cross-check (REPRO400) ---------------------------------------

def registry_diagnostics(
    table: SymbolTable, analysis: TagAnalysis,
) -> list[tuple[FileUnit, Diagnostic]]:
    """The REPRO400 findings: the parsed ``WIRE_TAG_HANDLERS`` literal vs
    the discovered send sites and symbol table.  Skipped entirely when the
    analyzed set carries no registry (single-file runs)."""
    out: list[tuple[FileUnit, Diagnostic]] = []
    if not table.registries:
        return out
    sent = analysis.sent_tags()
    registered: set[str] = set()
    for registry in table.registries:
        for entry in registry.entries:
            registered.add(entry.tag)
            for dotted, node in entry.paths:
                if not table.resolve_dotted(dotted):
                    out.append((registry.unit, make(
                        "REPRO400",
                        f"WIRE_TAG_HANDLERS[{entry.tag!r}] names "
                        f"{dotted!r}, which does not resolve to any "
                        f"function in the analyzed tree — the registered "
                        f"handler is gone or renamed",
                        line=node.lineno, col=node.col_offset)))
            if entry.tag not in sent:
                out.append((registry.unit, make(
                    "REPRO400",
                    f"registered wire tag {entry.tag} has no statically "
                    f"discoverable send site — either dead registry "
                    f"weight or a send path the analyzer cannot see",
                    line=entry.tag_node.lineno,
                    col=entry.tag_node.col_offset)))
    for site in analysis.send_sites:
        for tag in site.tags:
            if tag not in registered:
                out.append((site.unit, make(
                    "REPRO400",
                    f"wire tag {tag} is sent here but absent from "
                    f"WIRE_TAG_HANDLERS — the message would arrive with "
                    f"no registered consumer",
                    line=site.node.lineno, col=site.node.col_offset)))
    return out


# -- graph export -----------------------------------------------------------

def _component(fn: FunctionInfo) -> str:
    return f"{fn.module}.{fn.cls}" if fn.cls else fn.qualname


def _flow_edges(table: SymbolTable,
                analysis: TagAnalysis) -> dict[str, dict[str, list[str]]]:
    """tag -> {"senders": [...], "handlers": [...]}, fully sorted."""
    tags: dict[str, dict[str, set[str]]] = {}
    for site in analysis.send_sites:
        for tag in site.tags:
            slot = tags.setdefault(tag, {"senders": set(), "handlers": set()})
            slot["senders"].add(_component(site.fn))
    for registry in table.registries:
        for entry in registry.entries:
            slot = tags.setdefault(entry.tag,
                                   {"senders": set(), "handlers": set()})
            for dotted, _ in entry.paths:
                slot["handlers"].add(dotted.rsplit(".", 1)[0])
    return {tag: {"senders": sorted(slot["senders"]),
                  "handlers": sorted(slot["handlers"])}
            for tag, slot in sorted(tags.items())}


def graph_json(table: SymbolTable, analysis: TagAnalysis) -> dict[str, object]:
    """The message-flow graph as a JSON-ready dict (living architecture
    documentation: which component sends which tag to which handler)."""
    edges = _flow_edges(table, analysis)
    send_sites = [
        {"function": site.fn.qualname, "file": site.unit.posix,
         "line": site.node.lineno, "tags": list(site.tags)}
        for site in sorted(analysis.send_sites,
                           key=lambda s: (s.unit.posix, s.node.lineno,
                                          s.node.col_offset))
    ]
    return {
        "files": len(table.units),
        "functions": len(table.functions),
        "tags": edges,
        "send_sites": send_sites,
    }


def graph_dot(table: SymbolTable, analysis: TagAnalysis) -> str:
    """The same graph in Graphviz DOT form."""
    edges = _flow_edges(table, analysis)
    lines = ["digraph message_flow {", "  rankdir=LR;",
             '  node [shape=box, fontsize=10];']
    seen: set[tuple[str, str, str]] = set()
    for tag, slot in edges.items():
        for sender in slot["senders"]:
            for handler in slot["handlers"] or ["(unregistered)"]:
                key = (sender, handler, tag)
                if key in seen:
                    continue
                seen.add(key)
                lines.append(f'  "{sender}" -> "{handler}" '
                             f'[label="{tag}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"
