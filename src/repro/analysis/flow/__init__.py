"""Whole-program message-flow and lifecycle analyzer (F-series REPRO4xx).

The per-file rules of :mod:`repro.analysis` catch single-file mistakes;
the protocol bugs that actually bit (PR 4's mid-handshake crash and
``recv_timeout`` getter leak) were cross-component.  This package
analyzes ``src/repro`` as *one program*: a project symbol table
(:mod:`.symbols`), wire-tag constant propagation to every send site and
a verified message-flow graph (:mod:`.messages`), static deadlock
detection over the wait-for graph and client-path blocking-wait checks
(:mod:`.deadlock`), and resource-lifecycle leak checks
(:mod:`.lifecycle`) — exposed as ``repro check --flow`` via
:mod:`.checker`.
"""

from .checker import FLOW_RULE_COUNT, FlowReport, run_flow

__all__ = ["FLOW_RULE_COUNT", "FlowReport", "run_flow"]
