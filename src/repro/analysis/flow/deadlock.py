"""Wait-for graph extraction: static deadlock (REPRO401) and unguarded
client-path blocking waits (REPRO404).

Every analyzed function is abstracted into an ordered **op trace**:

* ``WAIT(chan, timed, guarded)`` — a blocking wire wait: a direct
  ``yield sock.recv()`` / ``yield listener.accept()``, or a
  ``yield sim.any_of([...])`` whose members include a recv/accept getter
  (timed iff any member is a ``timeout(...)`` handle);
* ``SEND(chan)`` — a ``.send``/``.sendto`` call or a TCP ``connect``
  (a connect is the message an ``accept`` waits for);
* ``CALL(qualname)`` — a call the symbol table resolves, inlined during
  expansion.  ``sim.process(...)`` spawn arguments are deliberately *not*
  inlined: a spawned loop runs concurrently, so its waits do not block
  the spawning path.

Channels are canonical strings built from statically-known ports
(``u:<port>`` datagram, ``lst:<port>`` listen/connect rendezvous,
``d:<port>:a``/``d:<port>:c`` the two directions of an accepted stream).
A port that cannot be resolved statically yields channel ``None`` —
still a blocking wait for REPRO404, but unmatchable for REPRO401, which
keeps the analysis conservative instead of speculative.

**REPRO401** draws an edge ``F -> G`` on channel ``C`` when ``F`` has an
untimed wait on ``C`` and *every* send of ``C`` in ``G``'s expanded
trace happens after one of ``G``'s own untimed waits — G cannot feed F
until G is itself fed.  A cycle in that graph (SCC of size >= 2, or a
self-loop) is a static deadlock: no edge carries a timeout, so the
simulated world would hang forever.

**REPRO404** expands the trace of every client entry point
(``request_servers``/``smart_sockets``/``smart_sessions``/``failover``
and any ``client_*`` function) and flags untimed wire waits with no
``Interrupt`` guard — the request path must never block unboundedly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ...lang.diagnostics import Diagnostic, make
from ..concurrency import BLOCKING_RECV_ATTRS, _catches_interrupt
from .symbols import FileUnit, FunctionInfo, SymbolTable

__all__ = ["FunctionTrace", "TraceExtractor", "deadlock_diagnostics",
           "client_path_diagnostics", "CLIENT_ENTRY_NAMES"]

#: functions whose bodies form the client request path (plus ``client_*``)
CLIENT_ENTRY_NAMES = frozenset({
    "request_servers", "smart_sockets", "smart_sessions", "failover",
})

_SEND_ATTRS = frozenset({"send", "sendto"})
_ACQUIRE_SOCKET = "udp_socket"
_ACQUIRE_LISTEN = "listen"
_MAX_INLINE_DEPTH = 6


@dataclass
class Op:
    """One abstract operation in a function's trace."""

    kind: str  # "wait" | "send" | "call"
    node: ast.AST
    chan: "str | None" = None
    timed: bool = False
    guarded: bool = False
    callee: str = ""
    #: the file the op's node lives in (survives call inlining)
    unit: "FileUnit | None" = None


@dataclass
class FunctionTrace:
    """The ordered op trace of one function."""

    fn: FunctionInfo
    unit: FileUnit
    ops: list[Op]


class TraceExtractor:
    """Builds the per-function op traces for a symbol table."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self._unit_of: dict[str, FileUnit] = {
            u.module: u for u in table.units}
        self.traces: dict[str, FunctionTrace] = {}
        for qual in sorted(table.functions):
            fn = table.functions[qual]
            unit = self._unit_of[fn.module]
            ops = _FunctionWalker(table, fn).run()
            for op in ops:
                op.unit = unit
            self.traces[qual] = FunctionTrace(fn=fn, unit=unit, ops=ops)

    # -- expansion ----------------------------------------------------------
    def expanded(self, qualname: str) -> list[Op]:
        """The trace with resolved calls inlined (depth-capped,
        recursion-guarded); a guarded call site marks inlined ops guarded."""
        return self._expand(qualname, 0, frozenset())

    def _expand(self, qualname: str, depth: int,
                stack: frozenset[str]) -> list[Op]:
        trace = self.traces.get(qualname)
        if trace is None or depth > _MAX_INLINE_DEPTH or qualname in stack:
            return []
        out: list[Op] = []
        inner_stack = stack | {qualname}
        for op in trace.ops:
            if op.kind != "call":
                out.append(op)
                continue
            for sub in self._expand(op.callee, depth + 1, inner_stack):
                if op.guarded and not sub.guarded:
                    sub = Op(kind=sub.kind, node=sub.node, chan=sub.chan,
                             timed=sub.timed, guarded=True,
                             callee=sub.callee, unit=sub.unit)
                out.append(sub)
        return out


class _FunctionWalker:
    """Single textual pass over one function body.

    Loop bodies are walked once (a trace is an abstraction of one
    iteration); ``try`` bodies whose handlers catch ``Interrupt`` (or a
    broader class) mark contained ops guarded.
    """

    def __init__(self, table: SymbolTable, fn: FunctionInfo) -> None:
        self.table = table
        self.fn = fn
        self.ops: list[Op] = []
        #: local name -> ("udp"|"lst"|"acc"|"con", port-id or None)
        self.roles: dict[str, tuple[str, "str | None"]] = {}
        #: recv/accept getter name -> its wait channel
        self.getters: dict[str, "str | None"] = {}
        #: names bound to ``timeout(...)`` handles
        self.timeouts: set[str] = set()

    def run(self) -> list[Op]:
        self._walk_body(self.fn.node.body, guarded=False)
        return self.ops

    # -- statements ---------------------------------------------------------
    def _walk_body(self, body: list[ast.stmt], guarded: bool) -> None:
        for stmt in body:
            self._walk_stmt(stmt, guarded)

    def _walk_stmt(self, stmt: ast.stmt, guarded: bool) -> None:
        if isinstance(stmt, ast.Try):
            body_guarded = guarded or any(
                _catches_interrupt(h) for h in stmt.handlers)
            self._walk_body(stmt.body, body_guarded)
            for handler in stmt.handlers:
                self._walk_body(handler.body, guarded)
            self._walk_body(stmt.orelse, guarded)
            self._walk_body(stmt.finalbody, guarded)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested defs get their own symbol-table entries
        if isinstance(stmt, ast.Assign):
            self._scan_expr(stmt.value, guarded)
            for target in stmt.targets:
                self._bind(target, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._scan_expr(stmt.value, guarded)
            self._bind(stmt.target, stmt.value)
            return
        for child_expr in _stmt_exprs(stmt):
            self._scan_expr(child_expr, guarded)
        for child_body in _stmt_bodies(stmt):
            self._walk_body(child_body, guarded)

    # -- bindings -----------------------------------------------------------
    def _bind(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        inner = value
        accepted = False
        if isinstance(inner, (ast.Yield, ast.YieldFrom)) and inner.value is not None:
            accepted = isinstance(inner, ast.Yield)
            inner = inner.value
        if not isinstance(inner, ast.Call):
            return
        func = inner.func
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        if attr == _ACQUIRE_SOCKET:
            port = self._port(inner.args[0]) if inner.args else None
            self.roles[target.id] = ("udp", port)
        elif attr == _ACQUIRE_LISTEN:
            port = self._port(inner.args[0]) if inner.args else None
            self.roles[target.id] = ("lst", port)
        elif attr == "connect":
            self.roles[target.id] = ("con", self._connect_port(inner))
        elif attr == "accept" and accepted:
            _, port = self.roles.get(_recv_root(func), ("", None))
            self.roles[target.id] = ("acc", port)
        elif attr == "timeout":
            self.timeouts.add(target.id)
        elif attr in BLOCKING_RECV_ATTRS:
            # un-yielded getter handle: g = conn.recv()
            self.getters[target.id] = self._wait_chan(func)

    # -- expressions --------------------------------------------------------
    def _scan_expr(self, expr: ast.expr, guarded: bool) -> None:
        if isinstance(expr, ast.Yield) and expr.value is not None:
            self._scan_yielded(expr.value, guarded)
            return
        if isinstance(expr, ast.YieldFrom):
            if isinstance(expr.value, ast.Call):
                self._scan_call(expr.value, guarded, yielded_from=True)
            return
        if isinstance(expr, ast.Call):
            self._scan_call(expr, guarded, yielded_from=False)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._scan_expr(child, guarded)

    def _scan_yielded(self, value: ast.expr, guarded: bool) -> None:
        if not isinstance(value, ast.Call):
            self._scan_expr(value, guarded)
            return
        func = value.func
        if isinstance(func, ast.Attribute):
            if func.attr in BLOCKING_RECV_ATTRS:
                self.ops.append(Op(kind="wait", node=value,
                                   chan=self._wait_chan(func),
                                   timed=False, guarded=guarded))
                return
            if func.attr in ("any_of", "all_of"):
                self._scan_condition(value, guarded)
                return
        self._scan_call(value, guarded, yielded_from=False)

    def _scan_condition(self, call: ast.Call, guarded: bool) -> None:
        members: list[ast.expr] = []
        for arg in call.args:
            if isinstance(arg, (ast.List, ast.Tuple, ast.Set)):
                members.extend(arg.elts)
            else:
                members.append(arg)
        timed = any(self._is_timeout(m) for m in members)
        for member in members:
            if isinstance(member, ast.Name) and member.id in self.getters:
                self.ops.append(Op(kind="wait", node=member,
                                   chan=self.getters[member.id],
                                   timed=timed, guarded=guarded))
            elif (isinstance(member, ast.Call)
                  and isinstance(member.func, ast.Attribute)
                  and member.func.attr in BLOCKING_RECV_ATTRS):
                self.ops.append(Op(kind="wait", node=member,
                                   chan=self._wait_chan(member.func),
                                   timed=timed, guarded=guarded))

    def _is_timeout(self, member: ast.expr) -> bool:
        if isinstance(member, ast.Name):
            return member.id in self.timeouts
        return (isinstance(member, ast.Call)
                and isinstance(member.func, ast.Attribute)
                and member.func.attr == "timeout")

    def _scan_call(self, call: ast.Call, guarded: bool,
                   yielded_from: bool) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr == "process":
                return  # spawned: runs concurrently, never inlined
            if func.attr in _SEND_ATTRS:
                self.ops.append(Op(kind="send", node=call,
                                   chan=self._send_chan(func, call),
                                   guarded=guarded))
            elif func.attr == "connect":
                port = self._connect_port(call)
                self.ops.append(Op(
                    kind="send", node=call,
                    chan=f"lst:{port}" if port is not None else None,
                    guarded=guarded))
            elif func.attr in BLOCKING_RECV_ATTRS and yielded_from:
                self.ops.append(Op(kind="wait", node=call,
                                   chan=self._wait_chan(func),
                                   timed=False, guarded=guarded))
        target = self.table.resolve_call(func, self.fn.module, self.fn.cls)
        if isinstance(target, FunctionInfo):
            self.ops.append(Op(kind="call", node=call, guarded=guarded,
                               callee=target.qualname))
        for arg in call.args:
            self._scan_expr(arg, guarded)
        for kw in call.keywords:
            self._scan_expr(kw.value, guarded)

    # -- channel normalization ----------------------------------------------
    def _port(self, expr: ast.expr) -> "str | None":
        """Canonical port id: literal int, resolvable module constant, or a
        ``*.ports.<name>`` config attribute; ``None`` when unknown."""
        if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
            return str(expr.value)
        if isinstance(expr, ast.Name):
            value = self.table.constants.get((self.fn.module, expr.id))
            if value is not None:
                return str(value)
            return None
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Attribute)
                and expr.value.attr == "ports"):
            return f"ports.{expr.attr}"
        return None

    def _connect_port(self, call: ast.Call) -> "str | None":
        # tcp.connect(addr, port, ...) — the port is the second positional
        if len(call.args) >= 2:
            return self._port(call.args[1])
        for kw in call.keywords:
            if kw.arg == "port":
                return self._port(kw.value)
        return None

    def _wait_chan(self, func: ast.Attribute) -> "str | None":
        kind, port = self.roles.get(_recv_root(func), ("", None))
        if port is None:
            return None
        if kind == "udp":
            return f"u:{port}"
        if kind == "lst":
            return f"lst:{port}"
        if kind == "acc":
            return f"d:{port}:a"
        if kind == "con":
            return f"d:{port}:c"
        return None

    def _send_chan(self, func: ast.Attribute,
                   call: ast.Call) -> "str | None":
        if func.attr == "sendto":
            port = (self._port(call.args[1])
                    if len(call.args) >= 2 else None)
            return f"u:{port}" if port is not None else None
        kind, port = self.roles.get(_recv_root(func), ("", None))
        if port is None:
            return None
        # a send on the accepted side feeds the connecting side's recv
        if kind == "acc":
            return f"d:{port}:c"
        if kind == "con":
            return f"d:{port}:a"
        return None


def _recv_root(func: ast.Attribute) -> str:
    """The local name a channel method hangs off (``sock.recv`` ->
    ``sock``, ``sock.rx.get`` -> ``sock``)."""
    node: ast.expr = func.value
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else ""


def _stmt_exprs(stmt: ast.stmt) -> list[ast.expr]:
    out: list[ast.expr] = []
    for fname in ("value", "test", "iter", "exc"):
        child = getattr(stmt, fname, None)
        if isinstance(child, ast.expr):
            out.append(child)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out.extend(item.context_expr for item in stmt.items)
    return out


def _stmt_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    out: list[list[ast.stmt]] = []
    for fname in ("body", "orelse", "finalbody"):
        child = getattr(stmt, fname, None)
        if isinstance(child, list):
            out.append(child)
    return out


# -- REPRO401: wait-for cycles ----------------------------------------------

def _blocked_sends(ops: list[Op]) -> frozenset[str]:
    """Channels this trace sends on, where *every* send happens after one
    of the trace's own untimed waits (the sender cannot produce until it
    has itself consumed)."""
    first_untimed_wait = None
    for i, op in enumerate(ops):
        if op.kind == "wait" and not op.timed:
            first_untimed_wait = i
            break
    sends: dict[str, bool] = {}
    for i, op in enumerate(ops):
        if op.kind != "send" or op.chan is None:
            continue
        preceded = first_untimed_wait is not None and i > first_untimed_wait
        sends[op.chan] = sends.get(op.chan, True) and preceded
    return frozenset(c for c, blocked in sends.items() if blocked)


def deadlock_diagnostics(
    extractor: TraceExtractor,
) -> list[tuple[FileUnit, Diagnostic]]:
    """REPRO401: SCCs of the wait-for graph."""
    waits: dict[str, list[Op]] = {}
    blocked: dict[str, frozenset[str]] = {}
    for qual in sorted(extractor.traces):
        ops = extractor.expanded(qual)
        wait_ops = [op for op in ops
                    if op.kind == "wait" and not op.timed
                    and op.chan is not None]
        if wait_ops:
            waits[qual] = wait_ops
        sends = _blocked_sends(ops)
        if sends:
            blocked[qual] = sends

    edges: dict[str, set[str]] = {}
    edge_chans: dict[tuple[str, str], set[str]] = {}
    for waiter, wait_ops in waits.items():
        wanted = {op.chan for op in wait_ops if op.chan is not None}
        for sender, sends in blocked.items():
            common = wanted & sends
            if common:
                edges.setdefault(waiter, set()).add(sender)
                edge_chans[(waiter, sender)] = common

    out: list[tuple[FileUnit, Diagnostic]] = []
    for scc in _cycles(edges):
        members = sorted(scc)
        chans: set[str] = set()
        anchor: "tuple[tuple[str, int, int], Op] | None" = None
        unit: "FileUnit | None" = None
        for waiter in members:
            for sender in edges.get(waiter, ()):
                if sender in scc:
                    chans |= edge_chans[(waiter, sender)]
            trace = extractor.traces[waiter]
            for op in waits[waiter]:
                key = (trace.unit.posix, op.node.lineno,  # type: ignore[attr-defined]
                       op.node.col_offset)  # type: ignore[attr-defined]
                if anchor is None or key < anchor[0]:
                    anchor = (key, op)
                    unit = trace.unit
        if anchor is None or unit is None:
            continue
        out.append((unit, make(
            "REPRO401",
            "static wait-for cycle: {" + ", ".join(members) + "} over "
            "channels {" + ", ".join(sorted(chans)) + "} — every send on "
            "the cycle happens only after its sender's own untimed "
            "blocking wait, and no edge carries a timeout",
            line=anchor[0][1], col=anchor[0][2])))
    return out


def _cycles(edges: dict[str, set[str]]) -> list[frozenset[str]]:
    """Strongly connected components that actually cycle (size >= 2, or a
    self-loop), via iterative Tarjan, deterministically ordered."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[frozenset[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work: list[tuple[str, "list[str]"]] = [
            (root, sorted(edges.get(root, ())))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succs = work[-1]
            advanced = False
            while succs:
                succ = succs.pop(0)
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, sorted(edges.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    comp.add(member)
                    if member == node:
                        break
                if len(comp) > 1 or (node in edges.get(node, set())):
                    sccs.append(frozenset(comp))

    for node in sorted(edges):
        if node not in index:
            strongconnect(node)
    return sorted(sccs, key=lambda s: sorted(s))


# -- REPRO404: client request path ------------------------------------------

def _is_client_entry(fn: FunctionInfo) -> bool:
    return fn.name in CLIENT_ENTRY_NAMES or fn.name.startswith("client_")


def client_path_diagnostics(
    extractor: TraceExtractor,
) -> list[tuple[FileUnit, Diagnostic]]:
    """REPRO404: untimed, unguarded wire waits reachable from client
    entry points (spawn edges excluded — background loops guard
    themselves)."""
    best_root: dict[int, tuple[str, Op]] = {}
    for qual in sorted(extractor.traces):
        trace = extractor.traces[qual]
        if not _is_client_entry(trace.fn):
            continue
        for op in extractor.expanded(qual):
            if op.kind != "wait" or op.timed or op.guarded:
                continue
            key = id(op.node)
            if key not in best_root or qual < best_root[key][0]:
                best_root[key] = (qual, op)
    out: list[tuple[FileUnit, Diagnostic]] = []
    for qual, op in best_root.values():
        if op.unit is None:
            continue
        out.append((op.unit, make(
            "REPRO404",
            f"blocking wire wait with no timeout and no Interrupt guard "
            f"is reachable from client entry point {qual} — the request "
            f"path can hang forever on a silent peer",
            line=op.node.lineno,  # type: ignore[attr-defined]
            col=op.node.col_offset)))  # type: ignore[attr-defined]
    return out
