"""Path-sensitive resource-lifecycle checks (REPRO402/REPRO403).

The PR 4 leak that motivated this series: ``UdpSocket.recv_timeout``
created a ``Store`` getter, raced it against a deadline with ``any_of``,
and on the timeout path simply returned — the getter stayed registered
and silently ate the *next* datagram.  The dynamic sanitizer caught it
after the fact; these rules catch the shape at lint time.

**REPRO402** — a ``yield sim.any_of([...])`` that races a getter handle
(a name bound from ``.get()``/``.recv()``, or such a call written
inline) against a non-getter competitor (deadline, second channel).
The losing getter must be dealt with on some later path: passed to a
``.cancel(...)`` call, its owner closed/aborted/suspended/cancelled, or
its handle removed from a registry (``remove``/``discard``/``pop``).
An inline call member can never be cancelled — it has no name — so it
is flagged outright.  Getters owned by closure variables of a nested
function are skipped: the enclosing scope owns the lifecycle.

**REPRO403** — a locally-acquired handle (``udp_socket``/``listen``/
``icmp_tap``/``ReliableSocket``) that neither escapes the function
(argument, return, yield, attribute/subscript store, container literal)
nor is released (``close``/``abort``/``stop``/``suspend``).  Purely
local acquisition with no release is a guaranteed leak on every path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ...lang.diagnostics import Diagnostic, make
from .symbols import FileUnit, FunctionInfo, SymbolTable

__all__ = ["lifecycle_diagnostics"]

_GETTER_ATTRS = frozenset({"get", "recv"})
_RELEASE_ATTRS = frozenset({"close", "abort", "stop", "suspend", "cancel"})
_UNREGISTER_ATTRS = frozenset({"remove", "discard", "pop"})
_ACQUIRE_ATTRS = frozenset({"udp_socket", "listen", "icmp_tap"})
_ACQUIRE_NAMES = frozenset({"ReliableSocket"})


def _pos(node: ast.AST) -> tuple[int, int]:
    return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))


def _root_name(node: ast.expr) -> str:
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else ""


def _ordered_nodes(fn: ast.FunctionDef) -> list[ast.AST]:
    nodes = [n for n in ast.walk(fn) if hasattr(n, "lineno")]
    nodes.sort(key=_pos)
    return nodes


@dataclass
class _Getter:
    name: str
    owner: str
    node: ast.Call


def _local_names(fn: FunctionInfo) -> set[str]:
    """Names in scope in ``fn``'s own frame: params, self, and anything
    assigned (or bound by a for/with) in the body."""
    names = set(fn.params) | {"self"}
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        names.add(sub.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    names.add(item.optional_vars.id)
    return names


def _check_getter_races(fn: FunctionInfo, unit: FileUnit,
                        out: list[tuple[FileUnit, Diagnostic]]) -> None:
    nodes = _ordered_nodes(fn.node)
    in_scope = _local_names(fn)
    getters: dict[str, _Getter] = {}
    for node in nodes:
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr in _GETTER_ATTRS):
            getters[node.targets[0].id] = _Getter(
                name=node.targets[0].id,
                owner=_root_name(node.value.func.value),
                node=node.value)

    for node in nodes:
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("any_of", "all_of")):
            continue
        members: list[ast.expr] = []
        for arg in node.args:
            if isinstance(arg, (ast.List, ast.Tuple, ast.Set)):
                members.extend(arg.elts)
            else:
                members.append(arg)
        raced: list[_Getter] = []
        inline: list[ast.Call] = []
        competitors = 0
        for member in members:
            if isinstance(member, ast.Name) and member.id in getters:
                raced.append(getters[member.id])
            elif (isinstance(member, ast.Call)
                  and isinstance(member.func, ast.Attribute)
                  and member.func.attr in _GETTER_ATTRS):
                inline.append(member)
            else:
                competitors += 1
        if competitors == 0 or not (raced or inline):
            continue
        for call in inline:
            out.append((unit, make(
                "REPRO402",
                f"anonymous .{call.func.attr}() getter raced inside "  # type: ignore[attr-defined]
                f"{fn.qualname} can never be cancelled — bind it to a "
                f"name and cancel it on the losing path",
                line=call.lineno, col=call.col_offset)))
        yield_pos = _pos(node)
        for getter in raced:
            if getter.owner and getter.owner not in in_scope:
                continue  # closure-owned: the enclosing scope cleans up
            if _released_after(nodes, yield_pos, getter):
                continue
            out.append((unit, make(
                "REPRO402",
                f"getter {getter.name!r} raced against a deadline in "
                f"{fn.qualname} is never cancelled on the losing path — "
                f"it would silently consume the next item "
                f"(the PR 4 recv_timeout leak shape)",
                line=getter.node.lineno, col=getter.node.col_offset)))


def _released_after(nodes: list[ast.AST], yield_pos: tuple[int, int],
                    getter: _Getter) -> bool:
    for node in nodes:
        if _pos(node) <= yield_pos or not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr == "cancel" and any(
                isinstance(a, ast.Name) and a.id == getter.name
                for a in node.args):
            return True
        if (func.attr in _RELEASE_ATTRS and getter.owner
                and _root_name(func.value) == getter.owner):
            return True
        if func.attr in _UNREGISTER_ATTRS and getter.owner and any(
                isinstance(a, ast.Name) and a.id == getter.owner
                for a in node.args):
            return True
    return False


def _check_handle_leaks(fn: FunctionInfo, unit: FileUnit,
                        out: list[tuple[FileUnit, Diagnostic]]) -> None:
    acquisitions: dict[str, ast.Call] = {}
    for node in ast.walk(fn.node):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)):
            continue
        call = node.value
        acquired = (
            (isinstance(call.func, ast.Attribute)
             and call.func.attr in _ACQUIRE_ATTRS)
            or (isinstance(call.func, ast.Name)
                and call.func.id in _ACQUIRE_NAMES))
        if acquired:
            acquisitions[node.targets[0].id] = call

    if not acquisitions:
        return
    escaped: set[str] = set()
    released: set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _RELEASE_ATTRS):
                released.add(_root_name(func.value))
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Name):
                        escaped.add(sub.id)
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name):
                        escaped.add(sub.id)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    for sub in ast.walk(node.value):
                        if isinstance(sub, ast.Name):
                            escaped.add(sub.id)
        elif isinstance(node, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
            for sub in ast.iter_child_nodes(node):
                if isinstance(sub, ast.Name):
                    escaped.add(sub.id)

    for name in sorted(acquisitions):
        if name in escaped or name in released:
            continue
        call = acquisitions[name]
        kind = (call.func.attr if isinstance(call.func, ast.Attribute)
                else call.func.id if isinstance(call.func, ast.Name)
                else "handle")
        out.append((unit, make(
            "REPRO403",
            f"{kind} handle {name!r} acquired in {fn.qualname} neither "
            f"escapes nor is released (close/abort/stop/suspend) — it "
            f"leaks on every path",
            line=call.lineno, col=call.col_offset)))


def lifecycle_diagnostics(
    table: SymbolTable,
) -> list[tuple[FileUnit, Diagnostic]]:
    """All REPRO402/REPRO403 findings for the analyzed tree."""
    out: list[tuple[FileUnit, Diagnostic]] = []
    unit_of = {u.module: u for u in table.units}
    for qual in sorted(table.functions):
        fn = table.functions[qual]
        unit = unit_of[fn.module]
        _check_getter_races(fn, unit, out)
        _check_handle_leaks(fn, unit, out)
    return out
