"""Orchestration for ``repro check --proto``.

Parses every file once (same loader as the flow analyzer), builds the
project symbol table, then runs the three S-series analyses over it:

1. :func:`~repro.analysis.typestate.machines.declaration_diagnostics`
   — every ``*_MACHINE``/``*_EXCHANGE`` dict literal in the tree vs
   the analyzer's registry (REPRO606);
2. :class:`~repro.analysis.typestate.walker.TypestateWalker` — the
   path-sensitive lifecycle walk over every function
   (REPRO600/601/602/604/605);
3. :func:`~repro.analysis.typestate.pairing.pairing_diagnostics` —
   request–reply pairing conformance (REPRO603).

``# repro: noqa[CODE]`` suppression works exactly as in the per-file
engine and the flow analyzer.  Output ordering is fully deterministic:
findings sort by (path, line, col, code), so two runs over the same
tree are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from ...lang.diagnostics import Diagnostic
from ..engine import _noqa_map
from ..flow.checker import ParseFailure, _load_units
from ..flow.symbols import FileUnit, SymbolTable
from .machines import _decl_assigns, declaration_diagnostics
from .pairing import pairing_diagnostics
from .walker import TypestateWalker

__all__ = ["ProtoReport", "run_typestate", "PROTO_RULE_COUNT"]

#: the S-series surface: REPRO600..REPRO606
PROTO_RULE_COUNT = 7


@dataclass
class ProtoReport:
    """The outcome of one typestate / protocol-conformance analysis."""

    units: list[FileUnit] = field(default_factory=list)
    parse_failures: list[ParseFailure] = field(default_factory=list)
    #: unsuppressed findings, sorted by (path, line, col, code)
    findings: list[tuple[FileUnit, Diagnostic]] = field(default_factory=list)
    suppressed: int = 0
    function_count: int = 0
    #: locals the walker bound to a protocol machine
    acquisition_count: int = 0
    #: ``*_MACHINE``/``*_EXCHANGE`` dict literals found in the tree
    declaration_count: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if (self.findings or self.parse_failures) else 0


def run_typestate(paths: Iterable[Path]) -> ProtoReport:
    """Analyze every ``*.py`` under ``paths`` as one program."""
    report = ProtoReport()
    report.units = _load_units(paths, report.parse_failures)
    table = SymbolTable(report.units)
    unit_by_module = {u.module: u for u in report.units}

    raw: list[tuple[FileUnit, Diagnostic]] = []
    raw.extend(declaration_diagnostics(table))
    walker = TypestateWalker(table)
    for qual in sorted(table.functions):
        fn = table.functions[qual]
        unit = unit_by_module.get(fn.module)
        if unit is None:  # pragma: no cover - table built from these units
            continue
        diags, acquisitions = walker.walk_function(fn)
        report.acquisition_count += acquisitions
        raw.extend((unit, diag) for diag in diags)
    raw.extend(pairing_diagnostics(table))

    noqa_by_posix = {u.posix: _noqa_map(u.source) for u in report.units}
    kept: list[tuple[FileUnit, Diagnostic]] = []
    for unit, diag in raw:
        silenced = noqa_by_posix[unit.posix].get(diag.line, frozenset())
        if silenced is None or (silenced and diag.code in silenced):
            report.suppressed += 1
        else:
            kept.append((unit, diag))
    kept.sort(key=lambda item: (item[0].posix, item[1].line,
                                item[1].col, item[1].code))
    report.findings = kept
    report.function_count = len(table.functions)
    report.declaration_count = sum(
        len(_decl_assigns(unit)) for unit in report.units)
    return report
