"""The declared protocol state machines — the S-series' source of truth.

Every stateful API the analyzer polices is described twice, on purpose:

* **here**, as a :class:`Machine` in :data:`MACHINES` — the operational
  form the path-sensitive walker interprets (op categories included);
* **next to the API it governs**, as a plain dict literal
  (``TCP_CONNECTION_MACHINE`` in :mod:`repro.net.tcp`,
  ``SMART_SESSION_MACHINE`` in :mod:`repro.core.session`, ...) — the
  living protocol spec a reader of that module sees.

REPRO606 keeps the two honest: every ``*_MACHINE`` / ``*_EXCHANGE``
dict literal found in the analyzed tree is parsed (never imported) and
compared field-by-field against this registry.  Editing one side
without the other fails ``repro check --proto`` — the declaration in
the source cannot silently rot into documentation.

The wizard request–reply exchange is declared the same way
(:class:`Exchange`): one request class, the set of reply tags that may
answer it, and the default tag a fall-through path implicitly handles.
Its reply set is additionally cross-checked against the ``REPLY_*``
rows of any parsed ``WIRE_TAG_HANDLERS`` registry, so the exchange and
the handler table cannot drift apart either.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Mapping

from ...lang.diagnostics import Diagnostic, make
from ..flow.symbols import FileUnit, SymbolTable

__all__ = [
    "Machine",
    "Exchange",
    "MACHINES",
    "EXCHANGES",
    "TCP_CONNECTION",
    "TCP_LISTENER",
    "UDP_SOCKET",
    "RELIABLE_SOCKET",
    "SMART_SESSION",
    "WIZARD_EXCHANGE",
    "declaration_diagnostics",
]


@dataclass(frozen=True)
class Machine:
    """One protocol state machine the typestate walker interprets."""

    #: class name of the governed API (``TcpConnection``)
    name: str
    #: the dict-literal variable the governed module must declare
    decl: str
    #: state a tracked object starts in after its canonical acquisition
    initial: str
    states: tuple[str, ...]
    #: terminal states: close-class ops from here are double-closes,
    #: data ops from here are use-after-close
    final: tuple[str, ...]
    #: ``(state, op) -> next state`` — an op with no row for the current
    #: state is a protocol violation
    transitions: Mapping[tuple[str, str], str]
    #: ops that move payload (send/recv shapes) — REPRO600/601 territory
    data_ops: frozenset[str] = field(default_factory=frozenset)
    #: ops that end a lifecycle — REPRO600 (double close) territory
    close_ops: frozenset[str] = field(default_factory=frozenset)
    #: ops that re-open / re-acquire — REPRO604 territory
    reopen_ops: frozenset[str] = field(default_factory=frozenset)
    #: states in which the resource counts as released for the
    #: exception-path check (REPRO602)
    released: tuple[str, ...] = ()

    @property
    def ops(self) -> frozenset[str]:
        """Every op the machine knows about (other attrs are ignored)."""
        return (self.data_ops | self.close_ops | self.reopen_ops
                | frozenset(op for _, op in self.transitions))

    def literal(self) -> dict[str, object]:
        """The exact dict literal the governed module must declare."""
        return {
            "name": self.name,
            "initial": self.initial,
            "states": self.states,
            "final": self.final,
            "transitions": {f"{state}.{op}": nxt for (state, op), nxt
                            in sorted(self.transitions.items())},
        }


@dataclass(frozen=True)
class Exchange:
    """One request–reply exchange: a request class and its reply tags."""

    name: str
    decl: str
    #: class constructed at a request site (``WizardRequest``)
    request: str
    #: every reply tag that may answer the request
    replies: tuple[str, ...]
    #: the tag a fall-through path implicitly handles (``REPLY_OK``)
    default: str

    def literal(self) -> dict[str, object]:
        return {"name": self.name, "request": self.request,
                "replies": self.replies, "default": self.default}


#: client-side TCP endpoint: acquisition via a driven
#: ``yield from tcp.connect(...)`` lands in *established*; binding the
#: un-driven generator (no ``yield from``) leaves it in *connecting*,
#: where no op is permitted
TCP_CONNECTION = Machine(
    name="TcpConnection",
    decl="TCP_CONNECTION_MACHINE",
    initial="established",
    states=("connecting", "established", "closed"),
    final=("closed",),
    transitions={
        ("established", "send"): "established",
        ("established", "recv"): "established",
        ("established", "close"): "closed",
        ("established", "abort"): "closed",
        # abort is the idempotent hard-teardown path (crashed host):
        # aborting an already-closed endpoint is legal by design
        ("closed", "abort"): "closed",
    },
    data_ops=frozenset({"send", "recv"}),
    close_ops=frozenset({"close", "abort"}),
    released=("closed",),
)

TCP_LISTENER = Machine(
    name="TcpListener",
    decl="TCP_LISTENER_MACHINE",
    initial="listening",
    states=("listening", "closed"),
    final=("closed",),
    transitions={
        ("listening", "accept"): "listening",
        ("listening", "close"): "closed",
    },
    data_ops=frozenset({"accept"}),
    close_ops=frozenset({"close"}),
    released=("closed",),
)

UDP_SOCKET = Machine(
    name="UdpSocket",
    decl="UDP_SOCKET_MACHINE",
    initial="open",
    states=("open", "closed"),
    final=("closed",),
    transitions={
        ("open", "sendto"): "open",
        ("open", "recv"): "open",
        ("open", "recv_timeout"): "open",
        ("open", "close"): "closed",
    },
    data_ops=frozenset({"sendto", "recv", "recv_timeout"}),
    close_ops=frozenset({"close"}),
    released=("closed",),
)

#: the rsocket session survives its transports: *suspended* is a legal
#: resting state (sends are buffered by design), so the machine has no
#: terminal state — but send/recv before the first ``connect()``
#: handshake, and ``resume()`` from anywhere but *suspended*, are
#: protocol violations
RELIABLE_SOCKET = Machine(
    name="ReliableSocket",
    decl="RELIABLE_SOCKET_MACHINE",
    initial="created",
    states=("created", "connected", "suspended"),
    final=(),
    transitions={
        ("created", "connect"): "connected",
        ("created", "suspend"): "created",  # harmless no-op by design
        ("connected", "send"): "connected",
        ("connected", "recv"): "connected",
        ("connected", "suspend"): "suspended",
        ("suspended", "send"): "suspended",  # buffered until resume
        ("suspended", "recv"): "suspended",  # drains the buffered rx
        ("suspended", "resume"): "connected",
        ("suspended", "connect"): "connected",  # resume delegates here
    },
    data_ops=frozenset({"send", "recv"}),
    close_ops=frozenset({"suspend"}),
    reopen_ops=frozenset({"resume", "connect"}),
    released=("created", "suspended"),
)

SMART_SESSION = Machine(
    name="SmartSession",
    decl="SMART_SESSION_MACHINE",
    initial="open",
    states=("open", "leased", "closed", "dead"),
    final=("closed", "dead"),
    transitions={
        ("open", "start_lease"): "leased",
        ("open", "stop_lease"): "open",  # stop is idempotent by design
        ("open", "failover"): "leased",
        ("open", "close"): "closed",
        ("leased", "stop_lease"): "open",
        ("leased", "failover"): "leased",
        ("leased", "close"): "closed",
    },
    close_ops=frozenset({"close"}),
    reopen_ops=frozenset({"failover", "start_lease"}),
    released=("closed", "dead"),
)

#: the wizard round trip: one ``WizardRequest`` must be answered by
#: exactly one of the declared reply tags; a request site that compares
#: the reply status must cover every non-default tag (``REPLY_OK`` is
#: the fall-through)
WIZARD_EXCHANGE = Exchange(
    name="wizard",
    decl="WIZARD_EXCHANGE",
    request="WizardRequest",
    replies=("REPLY_OK", "REPLY_NAK", "REPLY_STALE"),
    default="REPLY_OK",
)

#: decl-name -> machine, the registry REPRO606 enforces
MACHINES: dict[str, Machine] = {
    m.decl: m for m in (TCP_CONNECTION, TCP_LISTENER, UDP_SOCKET,
                        RELIABLE_SOCKET, SMART_SESSION)
}

#: decl-name -> exchange
EXCHANGES: dict[str, Exchange] = {WIZARD_EXCHANGE.decl: WIZARD_EXCHANGE}

#: class/acquisition name -> machine, for the walker's binding rules
MACHINE_BY_NAME: dict[str, Machine] = {m.name: m for m in MACHINES.values()}


# -- declared-literal drift (REPRO606) ---------------------------------------

def _literal_value(node: ast.expr) -> "object | None":
    """``ast.literal_eval`` that returns ``None`` instead of raising."""
    try:
        return ast.literal_eval(node)
    except (ValueError, TypeError, SyntaxError, MemoryError):
        return None


def _drifted_fields(declared: dict[str, object],
                    expected: dict[str, object]) -> list[str]:
    fields: list[str] = []
    for key in sorted(expected.keys() | declared.keys()):
        if declared.get(key) != expected.get(key):
            fields.append(key)
    return fields


def _decl_assigns(unit: FileUnit) -> "list[tuple[str, ast.expr]]":
    """Module-level ``NAME = {...}`` assigns whose name ends in
    ``_MACHINE`` or ``_EXCHANGE``."""
    out: list[tuple[str, ast.expr]] = []
    for node in unit.tree.body:
        target: "ast.expr | None" = None
        value: "ast.expr | None" = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if (isinstance(target, ast.Name) and value is not None
                and target.id.endswith(("_MACHINE", "_EXCHANGE"))
                and isinstance(value, ast.Dict)):
            out.append((target.id, value))
    return out


def declaration_diagnostics(
    table: SymbolTable,
) -> "list[tuple[FileUnit, Diagnostic]]":
    """All REPRO606 findings: source declarations vs this registry."""
    out: list[tuple[FileUnit, Diagnostic]] = []
    declared_exchanges: list[Exchange] = []
    for unit in table.units:
        for decl, node in _decl_assigns(unit):
            expected: "dict[str, object] | None" = None
            if decl in MACHINES:
                expected = MACHINES[decl].literal()
            elif decl in EXCHANGES:
                expected = EXCHANGES[decl].literal()
                declared_exchanges.append(EXCHANGES[decl])
            else:
                out.append((unit, make(
                    "REPRO606",
                    f"{decl} declares a protocol machine unknown to the "
                    f"analyzer registry — add it to "
                    f"repro.analysis.typestate.machines or rename the "
                    f"declaration",
                    line=node.lineno, col=node.col_offset)))
                continue
            declared = _literal_value(node)
            if not isinstance(declared, dict):
                out.append((unit, make(
                    "REPRO606",
                    f"{decl} is not a pure literal — the declared state "
                    f"machine must be statically parseable to be checked "
                    f"against the analyzer registry",
                    line=node.lineno, col=node.col_offset)))
                continue
            fields = _drifted_fields(declared, expected)
            if fields:
                out.append((unit, make(
                    "REPRO606",
                    f"{decl} drifted from the analyzer registry: field(s) "
                    f"{', '.join(fields)} differ — the declared protocol "
                    f"no longer matches what --proto enforces",
                    line=node.lineno, col=node.col_offset)))
    # the exchange's reply set must equal the REPLY_* rows of any parsed
    # WIRE_TAG_HANDLERS registry (skipped when neither is in the tree)
    for registry in table.registries:
        reply_rows = frozenset(
            t for t in registry.tags if t.startswith("REPLY_"))
        if not reply_rows:
            continue
        for exchange in (declared_exchanges or list(EXCHANGES.values())):
            if frozenset(exchange.replies) != reply_rows:
                out.append((registry.unit, make(
                    "REPRO606",
                    f"{exchange.decl} declares replies "
                    f"({', '.join(exchange.replies)}) but "
                    f"WIRE_TAG_HANDLERS registers "
                    f"({', '.join(sorted(reply_rows))}) — the exchange "
                    f"and the handler registry drifted apart",
                    line=registry.node.lineno,
                    col=registry.node.col_offset)))
    return out
