"""Typestate & protocol-conformance analyzer (``repro check --proto``).

The S-series (REPRO600–606): path-sensitive verification of
socket/session lifecycles against state machines declared next to the
APIs they govern, exception-path release checking, spawn-ownership
conflicts, request–reply pairing, and declaration drift.  See
:mod:`.machines` for the registry, :mod:`.walker` for the analysis and
DESIGN.md §16 for the rule catalogue.
"""

from .checker import PROTO_RULE_COUNT, ProtoReport, run_typestate
from .machines import EXCHANGES, MACHINES, Exchange, Machine

__all__ = [
    "ProtoReport",
    "run_typestate",
    "PROTO_RULE_COUNT",
    "MACHINES",
    "EXCHANGES",
    "Machine",
    "Exchange",
]
