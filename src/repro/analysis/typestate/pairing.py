"""Request–reply pairing conformance (REPRO603).

A function that constructs an exchange's request class (the wizard's
``WizardRequest``) is a *request site*: the reply that comes back
carries exactly one of the exchange's declared reply tags, so the site
— or something it calls — must be prepared to see every non-default
tag.  ``REPLY_OK`` is the declared default: a fall-through path
handles it implicitly, which is why a site comparing only
``REPLY_STALE`` and ``REPLY_NAK`` is complete.

"Handles" is syntactic but closure-aware: any reply-tag constant
appearing inside a comparison (``reply.status == REPLY_STALE``,
``status in (REPLY_NAK, REPLY_STALE)``) in the request function *or in
anything it transitively calls* through the flow symbol table's
conservative resolution, up to a bounded depth.  A site that compares
no tags at all is flagged too — it fired a request whose reply
dispatch it never inspects.
"""

from __future__ import annotations

import ast

from ...lang.diagnostics import Diagnostic, make
from ..flow.symbols import FileUnit, FunctionInfo, SymbolTable
from .machines import EXCHANGES, Exchange

__all__ = ["pairing_diagnostics"]

#: how many call hops reply handling may be delegated through
_CLOSURE_DEPTH = 6


def _request_sites(fn: FunctionInfo, exchange: Exchange) -> list[ast.Call]:
    sites: list[ast.Call] = []
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = ""
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name == exchange.request:
            sites.append(node)
    sites.sort(key=lambda n: (n.lineno, n.col_offset))
    return sites


def _compared_tags(fn: FunctionInfo, replies: frozenset[str]) -> set[str]:
    handled: set[str] = set()
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Compare):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in replies:
                handled.add(sub.id)
            elif isinstance(sub, ast.Attribute) and sub.attr in replies:
                handled.add(sub.attr)
    return handled


def _handled_tags(table: SymbolTable, fn: FunctionInfo,
                  replies: frozenset[str]) -> set[str]:
    """Reply tags compared by ``fn`` or its bounded call closure."""
    handled: set[str] = set()
    seen = {fn.qualname}
    frontier = [fn]
    for _ in range(_CLOSURE_DEPTH):
        if not frontier:
            break
        next_frontier: list[FunctionInfo] = []
        for current in frontier:
            handled |= _compared_tags(current, replies)
            for node in ast.walk(current.node):
                if not isinstance(node, ast.Call):
                    continue
                target = table.resolve_call(node.func, current.module,
                                            current.cls)
                if (isinstance(target, FunctionInfo)
                        and target.qualname not in seen):
                    seen.add(target.qualname)
                    next_frontier.append(target)
        frontier = next_frontier
    return handled


def pairing_diagnostics(
    table: SymbolTable,
) -> "list[tuple[FileUnit, Diagnostic]]":
    out: list[tuple[FileUnit, Diagnostic]] = []
    unit_by_module = {u.module: u for u in table.units}
    for decl in sorted(EXCHANGES):
        exchange = EXCHANGES[decl]
        replies = frozenset(exchange.replies)
        needed = replies - {exchange.default}
        for qual in sorted(table.functions):
            fn = table.functions[qual]
            unit = unit_by_module.get(fn.module)
            if unit is None:
                continue
            sites = _request_sites(fn, exchange)
            if not sites:
                continue
            missing = sorted(needed - _handled_tags(table, fn, replies))
            if not missing:
                continue
            for site in sites:
                out.append((unit, make(
                    "REPRO603",
                    f"{exchange.request} site never handles declared "
                    f"reply tag(s) {', '.join(missing)} — every "
                    f"non-default {exchange.name} reply must be "
                    f"dispatched ({exchange.default} is the "
                    f"fall-through)",
                    line=site.lineno, col=site.col_offset)))
    return out
