"""Path-sensitive typestate walker (REPRO600/601/602/604/605).

One function at a time, the walker tracks locals bound to a protocol
resource — a ``TcpConnection`` from a driven ``yield from
tcp.connect(...)``, a ``TcpListener`` from ``.listen(...)``, a
``UdpSocket`` getter handle, a ``ReliableSocket``/``SmartSession``
constructor call — as a *set of possible machine states*, and checks
every op against the declared transition tables in
:mod:`.machines`.

The analysis is deliberately biased toward **definite** errors:

* an op is flagged only when it is invalid from *every* state the
  object may be in — after an ``if``/``else`` join where only one arm
  closed, the merged state set still contains a live state and a
  subsequent ``send`` stays silent (may-errors are not reported);
* a tracked object that *escapes* — passed to an unresolvable call,
  aliased, stored into an attribute/container, returned, yielded, or
  captured by a nested ``def`` — stops being tracked entirely;
* loops are walked with a zero-or-one-iteration abstraction (the body
  contributes its states to the join but is not iterated to fixpoint),
  which again only ever *widens* the state set.

Calls that resolve through the flow symbol table get a conservative
interprocedural summary per parameter: the ops the callee *must* apply
(syntactically unconditional, top-level statements) vs *may* apply
(anywhere, nested closures included), plus an escape bit.  A callee
that touches none of the machine's ops preserves the caller's state —
the common ``log(conn)``-shaped helper stays precise — while anything
ambiguous ends tracking rather than guessing.  Generator callees only
have their summary applied when the call is actually driven
(``yield from``); an un-driven generator call escapes instead.

Exception paths (REPRO602): every ``raise``, and every ``return``
inside an ``except`` handler (``Interrupt`` included), is an
*exceptional exit*.  A locally-acquired, never-escaping resource that
is provably released on some path but still unreleased at an
exceptional exit is a leak; ops inside a ``finally`` are credited to
every exit recorded in its ``try``.

Spawns (REPRO605): an object handed to ``<sim>.process(gen(obj))``
now has a concurrent owner; a close/re-open-class op that continues
locally afterwards is flagged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ...lang.diagnostics import Diagnostic, make
from ..flow.symbols import FunctionInfo, SymbolTable
from .machines import (RELIABLE_SOCKET, SMART_SESSION, TCP_CONNECTION,
                       TCP_LISTENER, UDP_SOCKET, Machine)

__all__ = ["TypestateWalker"]


@dataclass(frozen=True)
class _St:
    """Per-path abstract state of one tracked local."""

    states: frozenset[str]
    spawn_line: int = 0  # non-zero once the object escaped into a spawn

    @property
    def spawned(self) -> bool:
        return self.spawn_line != 0


@dataclass
class _VarInfo:
    """Function-level facts about one tracked local."""

    machine: Machine
    line: int  # acquisition line


@dataclass
class _Exit:
    """One function exit point with its environment snapshot."""

    line: int
    col: int
    env: dict[str, _St]
    exceptional: bool
    label: str


@dataclass(frozen=True)
class _ParamSummary:
    """What a callee does to one of its parameters."""

    must_ops: frozenset[str]
    may_ops: frozenset[str]
    escapes: bool


_Env = dict[str, _St]


def _copy(env: _Env) -> _Env:
    return dict(env)


def _merge(*envs: "_Env | None") -> "_Env | None":
    """Join point: union the state sets; a name must be tracked on
    every live path to stay tracked."""
    live = [e for e in envs if e is not None]
    if not live:
        return None
    out: _Env = {}
    for name in live[0]:
        if not all(name in e for e in live):
            continue
        sts = [e[name] for e in live]
        states = frozenset().union(*(s.states for s in sts))
        spawn = max(s.spawn_line for s in sts)
        out[name] = _St(states, spawn)
    return out


def _desc(states: frozenset[str]) -> str:
    return "/".join(sorted(states))


class TypestateWalker:
    """Walk every function of a :class:`SymbolTable`, one at a time."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self._summary_cache: dict[str, dict[str, _ParamSummary]] = {}
        # per-function state, reset by walk_function
        self._fn: "FunctionInfo | None" = None
        self.findings: list[Diagnostic] = []
        self.vars: dict[str, _VarInfo] = {}
        self.escaped: set[str] = set()
        self.released: set[str] = set()
        self.exits: list[_Exit] = []
        self._exc_labels: list[str] = []

    # -- entry ---------------------------------------------------------------
    def walk_function(self, fn: FunctionInfo) -> tuple[list[Diagnostic], int]:
        """All S-series diagnostics for one function, plus the number of
        tracked acquisitions seen."""
        self._fn = fn
        self.findings = []
        self.vars = {}
        self.escaped = set()
        self.released = set()
        self.exits = []
        self._exc_labels = []
        out = self._walk_body(fn.node.body, {})
        if out is not None:
            self.exits.append(_Exit(line=fn.node.lineno,
                                    col=fn.node.col_offset, env=out,
                                    exceptional=False, label=""))
        self._leak_check()
        self.findings.sort(key=lambda d: (d.line, d.col, d.code))
        return self.findings, len(self.vars)

    # -- statement walk ------------------------------------------------------
    def _walk_body(self, body: list[ast.stmt],
                   env: "_Env | None") -> "_Env | None":
        for stmt in body:
            if env is None:
                break  # unreachable tail
            env = self._walk_stmt(stmt, env)
        return env

    def _walk_stmt(self, stmt: ast.stmt, env: _Env) -> "_Env | None":
        if isinstance(stmt, ast.If):
            self._scan_expr(stmt.test, env)
            then_out = self._walk_body(stmt.body, _copy(env))
            else_out = self._walk_body(stmt.orelse, _copy(env))
            return _merge(then_out, else_out)
        if isinstance(stmt, ast.While):
            self._scan_expr(stmt.test, env)
            body_out = self._walk_body(stmt.body, _copy(env))
            merged = _merge(env, body_out)
            return self._walk_body(stmt.orelse, merged)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter, env)
            for name in _target_names(stmt.target):
                env.pop(name, None)
            body_out = self._walk_body(stmt.body, _copy(env))
            merged = _merge(env, body_out)
            return self._walk_body(stmt.orelse, merged)
        if isinstance(stmt, ast.Try):
            return self._walk_try(stmt, env)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_expr(item.context_expr, env)
                if item.optional_vars is not None:
                    for name in _target_names(item.optional_vars):
                        env.pop(name, None)
            return self._walk_body(stmt.body, env)
        if isinstance(stmt, ast.Return):
            if isinstance(stmt.value, ast.Name):
                self._escape(stmt.value.id, env)
            else:
                self._scan_expr(stmt.value, env)
            self.exits.append(_Exit(
                line=stmt.lineno, col=stmt.col_offset, env=_copy(env),
                exceptional=bool(self._exc_labels),
                label=self._exc_labels[-1] if self._exc_labels else ""))
            return None
        if isinstance(stmt, ast.Raise):
            self._scan_expr(stmt.exc, env)
            self.exits.append(_Exit(
                line=stmt.lineno, col=stmt.col_offset, env=_copy(env),
                exceptional=True, label=_raise_label(stmt, self._exc_labels)))
            return None
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return None  # path leaves the loop body; join happens there
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # a nested def capturing a tracked local may drive its
            # lifecycle later — that is an escape
            for name in sorted({n.id for n in ast.walk(stmt)
                                if isinstance(n, ast.Name)} & env.keys()):
                self._escape(name, env)
            return env
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            return self._walk_assign(stmt, env)
        if isinstance(stmt, ast.Expr):
            value = stmt.value
            if (isinstance(value, ast.Yield)
                    and isinstance(value.value, ast.Name)):
                self._escape(value.value.id, env)  # consumer owns it now
            else:
                self._scan_expr(value, env)
            return env
        if isinstance(stmt, ast.Delete):
            for tgt in stmt.targets:
                for name in _target_names(tgt):
                    env.pop(name, None)
            return env
        for child in ast.iter_child_nodes(stmt):  # Assert, Match, ...
            if isinstance(child, ast.expr):
                self._scan_expr(child, env)
        return env

    def _walk_try(self, stmt: ast.Try, env: _Env) -> "_Env | None":
        before = _copy(env)
        mark = len(self.exits)
        body_out = self._walk_body(stmt.body, env)
        # a handler can be entered from any point inside the body
        handler_entry = _merge(before, body_out) or before
        outs: list["_Env | None"] = []
        for handler in stmt.handlers:
            label = _handler_label(handler)
            self._exc_labels.append(label)
            outs.append(self._walk_body(handler.body, _copy(handler_entry)))
            self._exc_labels.pop()
        if stmt.orelse:
            body_out = self._walk_body(stmt.orelse, body_out)
        outs.append(body_out)
        merged = _merge(*outs)
        if stmt.finalbody:
            # ops in a finally cover every exit recorded inside the try
            for name in self._final_releases(stmt.finalbody):
                self.released.add(name)
                for ex in self.exits[mark:]:
                    ex.env.pop(name, None)
            merged = self._walk_body(stmt.finalbody,
                                     merged if merged is not None
                                     else _copy(handler_entry))
            if not outs or all(o is None for o in outs):
                return None
        return merged

    def _final_releases(self, finalbody: list[ast.stmt]) -> list[str]:
        names: list[str] = []
        for stmt in finalbody:
            for node in ast.walk(stmt):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and isinstance(node.func.value, ast.Name)):
                    name = node.func.value.id
                    info = self.vars.get(name)
                    if (info is not None
                            and node.func.attr in info.machine.close_ops):
                        names.append(name)
        return names

    # -- assignment / acquisition --------------------------------------------
    def _walk_assign(self, stmt: ast.stmt, env: _Env) -> _Env:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                return env
            targets, value = [stmt.target], stmt.value
        else:
            assert isinstance(stmt, ast.AugAssign)
            self._scan_expr(stmt.value, env)
            return env
        self._scan_expr(value, env)
        acq = self._acquisition(value, env)
        for target in targets:
            if isinstance(target, ast.Name):
                if acq is not None:
                    machine, state = acq
                    env[target.id] = _St(frozenset({state}))
                    self.vars[target.id] = _VarInfo(machine=machine,
                                                    line=stmt.lineno)
                    self.escaped.discard(target.id)
                    self.released.discard(target.id)
                else:
                    if isinstance(value, ast.Name):
                        # aliasing: two names, one lifecycle — stop
                        self._escape(value.id, env)
                    env.pop(target.id, None)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for name in _target_names(target):
                    env.pop(name, None)
            else:  # attribute/subscript store
                if isinstance(value, ast.Name):
                    self._escape(value.id, env)
        return env

    def _acquisition(self, value: ast.expr,
                     env: _Env) -> "tuple[Machine, str] | None":
        """Does this RHS bind a fresh protocol resource, and in which
        state?"""
        yielded = isinstance(value, ast.Yield) and value.value is not None
        driven = isinstance(value, ast.YieldFrom)
        inner = value.value if isinstance(
            value, (ast.Yield, ast.YieldFrom)) else value
        if not isinstance(inner, ast.Call):
            return None
        func = inner.func
        if isinstance(func, ast.Name):
            if func.id == RELIABLE_SOCKET.name:
                return RELIABLE_SOCKET, RELIABLE_SOCKET.initial
            if func.id == SMART_SESSION.name:
                return SMART_SESSION, SMART_SESSION.initial
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        if attr == "udp_socket":
            return UDP_SOCKET, UDP_SOCKET.initial
        if attr == "listen":
            return TCP_LISTENER, TCP_LISTENER.initial
        if (attr == "connect" and isinstance(func.value, ast.Attribute)
                and func.value.attr == "tcp"):
            # driven handshake lands established; binding the un-driven
            # generator leaves a connection no op is legal on yet
            state = "established" if driven else "connecting"
            return TCP_CONNECTION, state
        if attr == "accept" and yielded and isinstance(func.value, ast.Name):
            info = self.vars.get(func.value.id)
            if (info is not None and info.machine is TCP_LISTENER
                    and func.value.id in env):
                return TCP_CONNECTION, "established"
        return None

    # -- expression scan -----------------------------------------------------
    def _scan_expr(self, expr: "ast.expr | None", env: _Env,
                   driven: bool = False) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Call):
            self._scan_call(expr, env, driven)
            return
        if isinstance(expr, ast.YieldFrom):
            self._scan_expr(expr.value, env, driven=True)
            return
        if isinstance(expr, ast.Lambda):
            for name in sorted({n.id for n in ast.walk(expr)
                                if isinstance(n, ast.Name)} & env.keys()):
                self._escape(name, env)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._scan_expr(child, env)

    def _scan_call(self, call: ast.Call, env: _Env, driven: bool) -> None:
        func = call.func
        skip: set[int] = set()
        # 1. an op on a tracked local: conn.send(...), sess.close(), ...
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)):
            name = func.value.id
            st = env.get(name)
            if st is not None:
                self._apply_op(name, st, func.attr, call, env)
        elif not isinstance(func, (ast.Name, ast.Attribute)):
            self._scan_expr(func, env)
        elif isinstance(func, ast.Attribute):
            self._scan_expr(func.value, env)
        # 2. spawn-escape: sim.process(gen(conn)) hands conn to the
        # spawned generator, which owns its lifecycle from here on
        if isinstance(func, ast.Attribute) and func.attr == "process":
            for arg in call.args:
                if not isinstance(arg, ast.Call):
                    continue
                skip.add(id(arg))  # the generator call is consumed here
                for inner in arg.args:
                    if isinstance(inner, ast.Name) and inner.id in env:
                        st = env[inner.id]
                        env[inner.id] = _St(st.states, call.lineno)
                        self.escaped.add(inner.id)  # not a local leak
                    else:
                        self._scan_expr(inner, env)
        # 3. remaining args: summary application or escape
        resolved = self._resolve(func)
        for pos, arg in enumerate(call.args):
            self._scan_arg(arg, pos, env, resolved, call, driven, skip)
        for kw in call.keywords:
            self._scan_arg(kw.value, None, env, None, call, driven, skip)

    def _scan_arg(self, arg: ast.expr, pos: "int | None", env: _Env,
                  resolved: "FunctionInfo | None", call: ast.Call,
                  driven: bool, skip: set[int]) -> None:
        if id(arg) in skip:
            return
        if isinstance(arg, ast.Name):
            if arg.id in env:
                self._apply_summary(arg.id, pos, env, resolved, call, driven)
            return
        if isinstance(arg, ast.Starred):
            if isinstance(arg.value, ast.Name) and arg.value.id in env:
                self._escape(arg.value.id, env)
            else:
                self._scan_expr(arg.value, env)
            return
        if isinstance(arg, (ast.Tuple, ast.List, ast.Set, ast.Dict)):
            # stored into a container: the container owns it now
            for name in sorted({n.id for n in ast.walk(arg)
                                if isinstance(n, ast.Name)} & env.keys()):
                self._escape(name, env)
            return
        self._scan_expr(arg, env)

    # -- interprocedural summaries -------------------------------------------
    def _resolve(self, func: ast.expr) -> "FunctionInfo | None":
        if self._fn is None:
            return None
        target = self.table.resolve_call(func, self._fn.module, self._fn.cls)
        return target if isinstance(target, FunctionInfo) else None

    def _apply_summary(self, name: str, pos: "int | None", env: _Env,
                       resolved: "FunctionInfo | None", call: ast.Call,
                       driven: bool) -> None:
        """A tracked local passed as a call argument: consult the
        callee's per-parameter summary; escape when in doubt."""
        machine = self.vars[name].machine
        if resolved is None or pos is None:
            self._escape(name, env)
            return
        offset = 1 if resolved.cls else 0  # implicit self
        if pos + offset >= len(resolved.params):
            self._escape(name, env)
            return
        summary = self._summaries(resolved).get(
            resolved.params[pos + offset])
        if summary is None or summary.escapes:
            self._escape(name, env)
            return
        may = summary.may_ops & machine.ops
        if not may:
            return  # callee never touches the machine: state preserved
        must = summary.must_ops & machine.ops
        if must == may and len(may) == 1 and not (
                resolved.is_generator and not driven):
            op = next(iter(may))
            st = env.get(name)
            if st is not None:
                self._apply_op(name, st, op, call, env)
            return
        self._escape(name, env)  # ambiguous effect: stop tracking

    def _summaries(self, fn: FunctionInfo) -> dict[str, _ParamSummary]:
        cached = self._summary_cache.get(fn.qualname)
        if cached is not None:
            return cached
        params = set(fn.params)
        may: dict[str, set[str]] = {p: set() for p in params}
        must: dict[str, set[str]] = {p: set() for p in params}
        escapes: set[str] = set()
        for stmt in fn.node.body:
            op = _direct_op(stmt)
            if op is not None and op[0] in params:
                must[op[0]].add(op[1])
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                if (isinstance(node.func, ast.Attribute)
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id in params):
                    may[node.func.value.id].add(node.func.attr)
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Name) and sub.id in params:
                            escapes.add(sub.id)
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if isinstance(node.value, ast.Name):
                    escapes.add(node.value.id)
            elif isinstance(node, ast.Assign):
                if isinstance(node.value, ast.Name):
                    escapes.add(node.value.id)
        out = {p: _ParamSummary(must_ops=frozenset(must[p]),
                                may_ops=frozenset(may[p]),
                                escapes=p in escapes)
               for p in params}
        self._summary_cache[fn.qualname] = out
        return out

    # -- op application ------------------------------------------------------
    def _escape(self, name: str, env: _Env) -> None:
        if name in env:
            del env[name]
        if name in self.vars:
            self.escaped.add(name)

    def _apply_op(self, name: str, st: _St, op: str, call: ast.Call,
                  env: _Env) -> None:
        machine = self.vars[name].machine
        if op not in machine.ops:
            return  # not a lifecycle op of this machine
        if st.spawned and (op in machine.close_ops
                           or op in machine.reopen_ops):
            self.findings.append(make(
                "REPRO605",
                f"{machine.name} '{name}' escaped into a spawn at line "
                f"{st.spawn_line} but {op}() continues locally — the "
                f"spawned generator owns its lifecycle",
                line=call.lineno, col=call.col_offset))
            self._escape(name, env)
            return
        nxt = {machine.transitions[(s, op)] for s in st.states
               if (s, op) in machine.transitions}
        stay = {s for s in st.states if (s, op) not in machine.transitions}
        if nxt:
            # legal from at least one possible state: transition the
            # matching states, keep the rest (no may-error reports)
            if op in machine.close_ops:
                self.released.add(name)
            env[name] = _St(frozenset(nxt | stay), st.spawn_line)
            return
        desc = _desc(st.states)
        final = set(machine.final)
        if op in machine.close_ops and st.states <= final:
            code = "REPRO600"
            msg = (f"double close: {op}() on {machine.name} '{name}' "
                   f"already in terminal state {desc} on every path")
        elif op in machine.data_ops and st.states <= final:
            code = "REPRO600"
            msg = (f"use after close: {op}() on {machine.name} '{name}' "
                   f"closed on every path reaching here")
        elif op in machine.reopen_ops:
            sources = sorted(s for (s, o) in machine.transitions if o == op)
            code = "REPRO604"
            msg = (f"{op}() re-opens {machine.name} '{name}' from "
                   f"forbidden state {desc} — legal from: "
                   f"{', '.join(sources) or 'nowhere'}")
        else:
            code = "REPRO601"
            msg = (f"{op}() on {machine.name} '{name}' in state {desc} — "
                   f"the declared machine permits no such transition")
        self.findings.append(make(code, msg, line=call.lineno,
                                  col=call.col_offset))
        self._escape(name, env)

    # -- exception-path leaks (REPRO602) -------------------------------------
    def _leak_check(self) -> None:
        """A var that escapes mid-function is dropped from the env at
        that point, so exits recorded *before* the escape still soundly
        witness a leak — at those exits nothing else owned the object
        yet.  Requiring a proven release elsewhere (``self.released``)
        keeps intent explicit: fire-and-forget handles stay silent."""
        for name in sorted(self.vars):
            if name not in self.released:
                continue
            info = self.vars[name]
            rel = set(info.machine.released) | set(info.machine.final)
            leaks = [ex for ex in self.exits
                     if ex.exceptional and name in ex.env
                     and not ex.env[name].spawned
                     and not ex.env[name].states <= rel]
            if not leaks:
                continue
            first = min(leaks, key=lambda ex: (ex.line, ex.col))
            via = f" (via {first.label})" if first.label else ""
            self.findings.append(make(
                "REPRO602",
                f"{info.machine.name} '{name}' acquired at line "
                f"{info.line} is released on other paths but leaks on "
                f"the exception path exiting here{via}",
                line=first.line, col=first.col))


def _target_names(target: ast.expr) -> list[str]:
    return [n.id for n in ast.walk(target) if isinstance(n, ast.Name)]


def _handler_label(handler: ast.ExceptHandler) -> str:
    """Human-readable name of what an ``except`` clause catches."""
    node = handler.type
    if node is None:
        return "bare except"
    names: list[str] = []
    for sub in [node] + (list(node.elts)
                         if isinstance(node, ast.Tuple) else []):
        if isinstance(sub, ast.Name):
            names.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.append(sub.attr)
    return "/".join(names) or "exception"


def _raise_label(stmt: ast.Raise, exc_labels: list[str]) -> str:
    """Name of the exception a ``raise`` statement escapes with."""
    exc = stmt.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return exc_labels[-1] if exc_labels else "exception"


def _direct_op(stmt: ast.stmt) -> "tuple[str, str] | None":
    """``name.op(...)`` as a bare top-level statement, else None."""
    value: "ast.expr | None" = None
    if isinstance(stmt, ast.Expr):
        value = stmt.value
    elif isinstance(stmt, ast.Assign):
        value = stmt.value
    if isinstance(value, (ast.Yield, ast.YieldFrom)):
        value = value.value
    if (isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and isinstance(value.func.value, ast.Name)):
        return value.func.value.id, value.func.attr
    return None
