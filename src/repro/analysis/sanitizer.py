"""Dynamic race-detection runner behind ``repro check --sanitize``.

Where the R-series static rules catch racy *shapes*, this module runs a
scenario under the happens-before sanitizer
(:class:`~repro.sim.hb.HBSanitizer`) and reports the races that actually
execute.  Two kinds of scenario are accepted:

* a **named smoke scenario** — ``matmul`` (2 smart + 2 random servers) or
  ``massd`` (1-server transfer), the same testbed worlds CI runs, sized
  down so a sanitized pass stays in the seconds range;
* a **path** to a Python file defining ``run(sim)``: the runner creates a
  :class:`~repro.sim.kernel.Simulator`, enables the sanitizer, calls
  ``run(sim)`` (which sets up shared state and drives the clock), then
  reports whatever the detector saw.  This is how the golden seeded-race
  fixture executes.

Output is deterministic (race sites are rendered with file basenames and
simulated timestamps only), so ``--sanitize`` results can be pinned
byte-for-byte in golden files.  Exit status: 0 when race-free, 1 when
any race was detected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..sim import RaceReport, Simulator

__all__ = ["SanitizeResult", "NAMED_SCENARIOS", "run_scenario",
           "sanitize_main"]


@dataclass
class SanitizeResult:
    """Outcome of one sanitized scenario run."""

    scenario: str
    races: list[RaceReport] = field(default_factory=list)
    summary: str = ""

    @property
    def clean(self) -> bool:
        return not self.races

    def render(self) -> str:
        lines = [r.render(self.scenario) for r in self.races]
        lines.append(f"sanitize[{self.scenario}]: {self.summary}")
        return "\n".join(lines)


def _run_matmul() -> list:
    from ..bench.experiments import matmul_experiment

    arms = matmul_experiment(
        n_servers=2,
        blk=120,
        requirement="(host_cpu_bogomips > 4000) && (host_cpu_free > 0.9)"
                    " && (host_memory_free > 5)",
        random_servers=("lhost", "phoebe"),
        n=240,
        sanitize=True,
    )
    return [arm for arm in arms if arm.races is not None]


def _run_massd() -> list:
    from ..bench.experiments import massd_experiment

    arms = massd_experiment(
        group1_mbps=6.72,
        group2_mbps=1.33,
        requirement="monitor_network_bw > 6",
        n_servers=1,
        random_sets=[("pandora-x",)],
        data_kb=2000,
        sanitize=True,
    )
    return [arm for arm in arms if arm.races is not None]


def _run_failover() -> list:
    from ..bench.experiments import failover_experiment

    arms = [
        failover_experiment(scenario=scenario, sanitize=True)
        for scenario in ("wizard_kill", "server_kill")
    ]
    return [arm for arm in arms if arm.races is not None]


def _run_grayfail() -> list:
    from ..bench.experiments import grayfail_experiment

    arms = [
        grayfail_experiment(scenario=scenario, detector="adaptive",
                            sanitize=True)
        for scenario in ("slow_server", "degraded_link")
    ]
    return [arm for arm in arms if arm.races is not None]


#: named smoke scenarios: name -> zero-arg runner returning the arms that
#: carried a sanitizer (each arm contributes its races/access count)
NAMED_SCENARIOS: dict[str, Callable[[], list]] = {
    "matmul": _run_matmul,
    "massd": _run_massd,
    "failover": _run_failover,
    "grayfail": _run_grayfail,
}


def _run_named(name: str) -> SanitizeResult:
    arms = NAMED_SCENARIOS[name]()
    races: list[RaceReport] = []
    accesses = 0
    for arm in arms:
        races.extend(arm.races or ())
        accesses += arm.tracked_accesses
    result = SanitizeResult(scenario=name, races=races)
    result.summary = (f"{len(races)} race(s), {accesses} tracked "
                      f"access(es) across {len(arms)} arm(s)")
    return result


def _run_path(path: Path) -> SanitizeResult:
    source = path.read_text(encoding="utf-8")
    code = compile(source, str(path), "exec")
    namespace: dict = {"__name__": "repro_sanitize_scenario",
                      "__file__": str(path)}
    exec(code, namespace)  # noqa: S102 — the scenario file is the input
    entry = namespace.get("run")
    if not callable(entry):
        raise ValueError(f"{path}: scenario must define run(sim)")
    sim = Simulator()
    sanitizer = sim.enable_sanitizer()
    entry(sim)
    result = SanitizeResult(scenario=path.name,
                            races=list(sanitizer.races))
    result.summary = sanitizer.summary()
    return result


def run_scenario(scenario: str) -> SanitizeResult:
    """Run one scenario (named or path) under the race detector."""
    if scenario in NAMED_SCENARIOS:
        return _run_named(scenario)
    path = Path(scenario)
    if path.suffix == ".py" and path.exists():
        return _run_path(path)
    known = ", ".join(sorted(NAMED_SCENARIOS))
    raise KeyError(f"unknown scenario {scenario!r}: expected one of "
                   f"{known} or a path to a run(sim) scenario file")


def sanitize_main(scenario: str, out=None) -> int:
    """CLI body for ``repro check --sanitize``; returns the exit code."""
    import sys

    stream = out if out is not None else sys.stdout
    try:
        result = run_scenario(scenario)
    except (KeyError, ValueError) as exc:
        print(f"repro-check: {exc}", file=sys.stderr)
        return 2
    print(result.render(), file=stream)
    return 0 if result.clean else 1
