"""``repro-check`` — the codebase determinism/protocol/concurrency analyzer.

Usage::

    python -m repro check src              # the per-file repo gate
    repro-check src/repro/net/link.py      # one file
    repro-check --strict src               # warnings fail too
    repro-check --list-rules               # rule inventory, by series
    repro-check --sanitize matmul          # dynamic race detection
    repro-check --sanitize scenario.py     # ... on a run(sim) scenario
    repro-check --flow src/repro           # whole-program flow analysis
    repro-check --flow --json g.json src   # ... exporting the flow graph
    repro-check --perf src/repro           # hot-path performance lints
    repro-check --perf --profile p.json src  # ... ranked by measured heat
    repro-check --proto src/repro          # typestate/protocol analysis
    repro-check --all src/repro            # every static gate in one run

Exit codes mirror ``repro lint``: 0 clean (warnings allowed), 1
diagnostics at error severity (or any finding with ``--strict``; for
``--sanitize``, any detected race; for ``--flow``/``--perf``/
``--proto``, any finding or parse failure; for ``--all``, the worst of
the four static gates), 2 usage/IO problems.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .engine import ANALYZER_CODES, all_rules, check_paths

__all__ = ["check_main", "check_entry"]

#: rule-series headers for ``--list-rules``, keyed by the code's hundreds
#: digit: D (determinism, 1xx), P (protocol, 2xx), R (concurrency, 3xx),
#: F (message flow, 4xx), H (hot-path performance, 5xx), S (typestate &
#: protocol conformance, 6xx)
_SERIES: dict[str, str] = {
    "1": "D-series (determinism)",
    "2": "P-series (protocol consistency)",
    "3": "R-series (concurrency)",
    "4": "F-series (message flow)",
    "5": "H-series (hot-path performance)",
    "6": "S-series (typestate & protocol conformance)",
}


def _display_path(path: Path) -> str:
    """Repo/cwd-relative when possible (stable golden-file rendering)."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def _list_rules() -> None:
    """Rule inventory sorted by code, grouped under series headers.

    REPRO300 appears under the R-series header even though it has no
    static rule — it is emitted by the dynamic sanitizer behind
    ``--sanitize`` — and the F-series (4xx) / H-series (5xx) / S-series
    (6xx) codes are emitted by the whole-program analyzers behind
    ``--flow``, ``--perf`` and ``--proto``, so the printed inventory
    covers every code the checker can produce.
    """
    from ..sim.hb import RACE_CODE
    from ..lang.diagnostics import code_info

    static = {r.code: r.name for r in all_rules()}
    codes = dict(ANALYZER_CODES)
    codes[RACE_CODE] = code_info(RACE_CODE)
    last_series = ""
    for code in sorted(codes):
        series = _SERIES.get(code[len("REPRO")], "other")
        if series != last_series:
            if last_series:
                print()
            print(f"{series}:")
            last_series = series
        severity, title = codes[code]
        if code.startswith("REPRO4"):
            name = "whole-program (--flow)"
        elif code.startswith("REPRO5"):
            name = "whole-program (--perf)"
        elif code.startswith("REPRO6"):
            name = "whole-program (--proto)"
        else:
            name = static.get(code, "dynamic (--sanitize)")
        print(f"  {code}  {severity:<7}  {name}: {title}")


def _flow_main(paths: list[Path], dot: str | None,
               json_path: str | None) -> int:
    """Run the whole-program flow analyzer and render its report."""
    import json as json_mod

    from .flow import FLOW_RULE_COUNT, run_flow

    report = run_flow(paths)
    for failure in report.parse_failures:
        shown = _display_path(failure.path)
        print(f"{shown}:{failure.line}:{failure.col}: "
              f"error PARSE: {failure.message}")
    for unit, diag in report.findings:
        print(diag.render(_display_path(unit.path)))
    print(f"flow: {len(report.units)} file(s), "
          f"{report.function_count} function(s), "
          f"{report.send_site_count} tagged send site(s), "
          f"{report.tag_count} wire tag(s)")
    if report.exit_code == 0:
        note = (f", {report.suppressed} suppressed by noqa"
                if report.suppressed else "")
        print(f"{len(report.units)} file(s) flow-clean "
              f"({FLOW_RULE_COUNT} F rules{note})")
    if dot:
        Path(dot).write_text(report.graph_dot(), encoding="utf-8")
    if json_path:
        Path(json_path).write_text(
            json_mod.dumps(report.graph_json(), indent=2, sort_keys=True)
            + "\n", encoding="utf-8")
    return report.exit_code


def _perf_main(paths: list[Path], profile_path: str | None = None) -> int:
    """Run the hot-path analyzer and render its report.

    With ``profile_path`` (a ``repro profile`` JSON), findings are
    annotated with measured resume shares and ranked hottest-first.
    """
    import json as json_mod

    from .hotpath import HOT_RULE_COUNT, run_hotpath

    profile = None
    if profile_path:
        try:
            data = json_mod.loads(
                Path(profile_path).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            print(f"repro-check: cannot read profile {profile_path}: {exc}",
                  file=sys.stderr)
            return 2
        profile = (data.get("attribution", data)
                   if isinstance(data, dict) else None)
        if not isinstance(profile, dict) or "processes" not in profile:
            print(f"repro-check: {profile_path} is not a repro profile "
                  f"JSON (no attribution.processes)", file=sys.stderr)
            return 2

    report = run_hotpath(paths, profile=profile)
    for failure in report.parse_failures:
        shown = _display_path(failure.path)
        print(f"{shown}:{failure.line}:{failure.col}: "
              f"error PARSE: {failure.message}")
    for finding in report.findings:
        line = finding.diag.render(_display_path(finding.unit.path))
        if report.profiled:
            names = ",".join(finding.heat_names) or "<unattributed>"
            line += (f"  [heat {100 * (finding.heat or 0.0):.1f}% "
                     f"via {names}]")
        print(line)
    print(f"perf: {len(report.units)} file(s), "
          f"{report.function_count} function(s), "
          f"{report.hot_count} hot function(s), "
          f"{report.root_count} service-loop root(s)")
    if report.exit_code == 0:
        note = (f", {report.suppressed} suppressed by noqa"
                if report.suppressed else "")
        print(f"{len(report.units)} file(s) perf-clean "
              f"({HOT_RULE_COUNT} H rules{note})")
    return report.exit_code


def _proto_main(paths: list[Path]) -> int:
    """Run the typestate/protocol-conformance analyzer and render its
    report."""
    from .typestate import PROTO_RULE_COUNT, run_typestate

    report = run_typestate(paths)
    for failure in report.parse_failures:
        shown = _display_path(failure.path)
        print(f"{shown}:{failure.line}:{failure.col}: "
              f"error PARSE: {failure.message}")
    for unit, diag in report.findings:
        print(diag.render(_display_path(unit.path)))
    print(f"proto: {len(report.units)} file(s), "
          f"{report.function_count} function(s), "
          f"{report.acquisition_count} tracked acquisition(s), "
          f"{report.declaration_count} machine declaration(s)")
    if report.exit_code == 0:
        note = (f", {report.suppressed} suppressed by noqa"
                if report.suppressed else "")
        print(f"{len(report.units)} file(s) proto-clean "
              f"({PROTO_RULE_COUNT} S rules{note})")
    return report.exit_code


def _engine_main(paths: list[Path], strict: bool) -> int:
    """Run the per-file D/P/R rules and render their reports."""
    reports = check_paths(paths)
    findings = 0
    errors = 0
    suppressed = 0
    for report in reports:
        shown = _display_path(report.path)
        if report.parse_error is not None:
            print(f"{shown}:{report.parse_line}:{report.parse_col}: "
                  f"error PARSE: {report.parse_error}")
            findings += 1
            errors += 1
            continue
        suppressed += report.suppressed
        for diag in report.diagnostics:
            print(diag.render(shown))
            findings += 1
            errors += diag.is_error
    if findings == 0:
        note = f", {suppressed} suppressed by noqa" if suppressed else ""
        print(f"{len(reports)} file(s) clean "
              f"({len(all_rules())} D/P/R rules{note})")
    if errors or (strict and findings):
        return 1
    return 0


def check_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="Statically analyze the codebase for determinism "
                    "hazards (D-series REPRO1xx: bare random/wall-clock/"
                    "entropy, unordered scheduling, float time equality), "
                    "wire-protocol drift (P-series REPRO2xx: message "
                    "constants, record fields and byte accounting vs. the "
                    "variable registry) and concurrency hazards (R-series "
                    "REPRO3xx: unguarded blocking receives, unhandled wire "
                    "tags, untracked shared segments); run the "
                    "whole-program flow (--flow, F-series REPRO4xx), "
                    "hot-path performance (--perf, H-series REPRO5xx) or "
                    "typestate/protocol-conformance (--proto, S-series "
                    "REPRO6xx) analyzers; or run a scenario under the "
                    "dynamic happens-before race detector with --sanitize.",
    )
    parser.add_argument("paths", nargs="*",
                        help="files and/or directories to check")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as errors")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule inventory and exit")
    parser.add_argument("--sanitize", metavar="SCENARIO",
                        help="run SCENARIO (matmul, massd, or a path to a "
                             "run(sim) file) under the happens-before race "
                             "detector; exits 1 if any race is detected")
    parser.add_argument("--flow", action="store_true",
                        help="run the whole-program message-flow/lifecycle "
                             "analyzer (F-series REPRO4xx) over the given "
                             "paths as one program")
    parser.add_argument("--perf", action="store_true",
                        help="run the hot-path performance analyzer "
                             "(H-series REPRO5xx) over the given paths as "
                             "one program")
    parser.add_argument("--profile", metavar="PATH",
                        help="with --perf/--all: rank findings by measured "
                             "heat from a `repro profile` JSON")
    parser.add_argument("--proto", action="store_true",
                        help="run the typestate/protocol-conformance "
                             "analyzer (S-series REPRO6xx) over the given "
                             "paths as one program")
    parser.add_argument("--all", action="store_true",
                        help="run every static gate (per-file D/P/R, "
                             "--flow, --perf, --proto) in one process; "
                             "exit code is the worst of the four")
    parser.add_argument("--dot", metavar="PATH",
                        help="with --flow: write the message-flow graph as "
                             "Graphviz DOT to PATH")
    parser.add_argument("--json", metavar="PATH",
                        help="with --flow: write the message-flow graph as "
                             "JSON to PATH")
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules()
        return 0
    if args.sanitize:
        from .sanitizer import sanitize_main
        return sanitize_main(args.sanitize)
    if (args.dot or args.json) and not (args.flow or args.all):
        print("repro-check: --dot/--json require --flow", file=sys.stderr)
        return 2
    if args.profile and not (args.perf or args.all):
        print("repro-check: --profile requires --perf or --all",
              file=sys.stderr)
        return 2
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-check: no paths given", file=sys.stderr)
        return 2

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"repro-check: no such path: {p}", file=sys.stderr)
        return 2
    if args.all:
        engine_code = _engine_main(paths, strict=args.strict)
        flow_code = _flow_main(paths, dot=args.dot, json_path=args.json)
        perf_code = _perf_main(paths, profile_path=args.profile)
        proto_code = _proto_main(paths)
        return max(engine_code, flow_code, perf_code, proto_code)
    if args.flow:
        return _flow_main(paths, dot=args.dot, json_path=args.json)
    if args.perf:
        return _perf_main(paths, profile_path=args.profile)
    if args.proto:
        return _proto_main(paths)
    return _engine_main(paths, strict=args.strict)


def check_entry() -> None:
    """Console-script entry point for ``repro-check``."""
    raise SystemExit(check_main())
