"""``repro-check`` — the codebase determinism/protocol/concurrency analyzer.

Usage::

    python -m repro check src              # the repo gate
    repro-check src/repro/net/link.py      # one file
    repro-check --strict src               # warnings fail too
    repro-check --list-rules               # rule inventory, by series
    repro-check --sanitize matmul          # dynamic race detection
    repro-check --sanitize scenario.py     # ... on a run(sim) scenario

Exit codes mirror ``repro lint``: 0 clean (warnings allowed), 1
diagnostics at error severity (or any finding with ``--strict``; for
``--sanitize``, any detected race), 2 usage/IO problems.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .engine import ANALYZER_CODES, all_rules, check_paths

__all__ = ["check_main", "check_entry"]

#: rule-series headers for ``--list-rules``, keyed by the code's hundreds
#: digit: D (determinism, 1xx), P (protocol, 2xx), R (concurrency, 3xx)
_SERIES: dict[str, str] = {
    "1": "D-series (determinism)",
    "2": "P-series (protocol consistency)",
    "3": "R-series (concurrency)",
}


def _display_path(path: Path) -> str:
    """Repo/cwd-relative when possible (stable golden-file rendering)."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def _list_rules() -> None:
    """Rule inventory sorted by code, grouped under series headers.

    REPRO300 appears under the R-series header even though it has no
    static rule — it is emitted by the dynamic sanitizer behind
    ``--sanitize`` — so the printed inventory covers every code the
    checker can produce.
    """
    from ..sim.hb import RACE_CODE
    from ..lang.diagnostics import code_info

    static = {r.code: r.name for r in all_rules()}
    codes = dict(ANALYZER_CODES)
    codes[RACE_CODE] = code_info(RACE_CODE)
    last_series = ""
    for code in sorted(codes):
        series = _SERIES.get(code[len("REPRO")], "other")
        if series != last_series:
            if last_series:
                print()
            print(f"{series}:")
            last_series = series
        severity, title = codes[code]
        name = static.get(code, "dynamic (--sanitize)")
        print(f"  {code}  {severity:<7}  {name}: {title}")


def check_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="Statically analyze the codebase for determinism "
                    "hazards (D-series REPRO1xx: bare random/wall-clock/"
                    "entropy, unordered scheduling, float time equality), "
                    "wire-protocol drift (P-series REPRO2xx: message "
                    "constants, record fields and byte accounting vs. the "
                    "variable registry) and concurrency hazards (R-series "
                    "REPRO3xx: unguarded blocking receives, unhandled wire "
                    "tags, untracked shared segments), or run a scenario "
                    "under the dynamic happens-before race detector with "
                    "--sanitize.",
    )
    parser.add_argument("paths", nargs="*",
                        help="files and/or directories to check")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as errors")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule inventory and exit")
    parser.add_argument("--sanitize", metavar="SCENARIO",
                        help="run SCENARIO (matmul, massd, or a path to a "
                             "run(sim) file) under the happens-before race "
                             "detector; exits 1 if any race is detected")
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules()
        return 0
    if args.sanitize:
        from .sanitizer import sanitize_main
        return sanitize_main(args.sanitize)
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-check: no paths given", file=sys.stderr)
        return 2

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"repro-check: no such path: {p}", file=sys.stderr)
        return 2

    reports = check_paths(paths)
    findings = 0
    errors = 0
    suppressed = 0
    for report in reports:
        shown = _display_path(report.path)
        if report.parse_error is not None:
            print(f"{shown}:{report.parse_line}:{report.parse_col}: "
                  f"error PARSE: {report.parse_error}")
            findings += 1
            errors += 1
            continue
        suppressed += report.suppressed
        for diag in report.diagnostics:
            print(diag.render(shown))
            findings += 1
            errors += diag.is_error
    if findings == 0:
        note = f", {suppressed} suppressed by noqa" if suppressed else ""
        print(f"{len(reports)} file(s) clean "
              f"({len(all_rules())} D/P/R rules{note})")
    if errors or (args.strict and findings):
        return 1
    return 0


def check_entry() -> None:
    """Console-script entry point for ``repro-check``."""
    raise SystemExit(check_main())
