"""Codebase static analysis: determinism + wire-protocol consistency.

Sibling of :mod:`repro.lang.analysis` — that package checks requirement
*texts*; this one checks the repo's own *Python source*, because the
thesis' numbers are only reproducible while the simulation stays
deterministic and the wire constants stay consistent with the variable
registry.  Diagnostics reuse :class:`repro.lang.diagnostics.Diagnostic`
under the ``REPROxxx`` namespace; run it with ``python -m repro check``
or the ``repro-check`` entry point.
"""

from .engine import (
    ANALYZER_CODES,
    FileContext,
    FileReport,
    Rule,
    all_rules,
    check_file,
    check_paths,
    check_source,
    rule,
)
from .cli import check_main

__all__ = [
    "ANALYZER_CODES",
    "FileContext",
    "FileReport",
    "Rule",
    "rule",
    "all_rules",
    "check_source",
    "check_file",
    "check_paths",
    "check_main",
]
