"""Deterministic profiling runner behind ``repro profile``.

The static H-series lints (``repro check --perf``) flag hot-path
*shapes*; this runner measures where a scenario actually spends its
events, using the opt-in kernel profiler
(:meth:`~repro.sim.kernel.Simulator.enable_profile`).  Two kinds of
scenario are accepted, mirroring ``--sanitize``:

* a **named smoke scenario** — ``matmul`` or ``massd``, the same
  sized-down testbed worlds the sanitizer runs;
* a **path** to a Python file defining ``run(sim)``: the runner creates
  a :class:`~repro.sim.kernel.Simulator`, enables the profiler, calls
  ``run(sim)`` and reports whatever it saw.

Output splits cleanly in two:

* the **attribution** — per-process resume/allocation counts, per-type
  event counts, sim-time spans — is a pure function of the simulated
  execution: two runs of the same scenario produce byte-identical
  attribution JSON (CI pins this), and it is what
  ``repro check --perf --profile <json>`` ranks static findings by;
* the **wall** metrics — real elapsed seconds and events/sec — are
  measured here around the whole run and reported in a separate JSON
  subtree that consumers of the attribution ignore.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..sim import Simulator
from ..sim.profile import flame_tree, merge_attributions

__all__ = ["ProfileResult", "NAMED_SCENARIOS", "profile_scenario",
           "profile_main"]


@dataclass
class ProfileResult:
    """Outcome of one profiled scenario run."""

    scenario: str
    #: merged deterministic attribution (see :mod:`repro.sim.profile`)
    attribution: dict[str, Any] = field(default_factory=dict)
    #: arms that contributed (named scenarios run several worlds)
    arm_count: int = 0
    #: real elapsed seconds around the whole run (non-deterministic)
    wall_seconds: float = 0.0

    @property
    def events_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.attribution.get("total_events", 0) / self.wall_seconds

    def to_json(self) -> dict[str, Any]:
        """Attribution first (deterministic), wall metrics separate."""
        return {
            "scenario": self.scenario,
            "arms": self.arm_count,
            "attribution": self.attribution,
            "wall": {
                "seconds": round(self.wall_seconds, 3),
                "events_per_sec": round(self.events_per_sec, 1),
            },
        }

    def render(self) -> str:
        lines = [flame_tree(self.attribution)]
        lines.append(
            f"profile[{self.scenario}]: {self.attribution['total_events']} "
            f"event(s) over {self.attribution['sim_time_s']:.3f} sim-s "
            f"across {self.arm_count} arm(s); "
            f"{self.wall_seconds:.2f} wall-s "
            f"({self.events_per_sec:.0f} events/sec)")
        return "\n".join(lines)


def _run_matmul() -> list:
    from ..bench.experiments import matmul_experiment

    arms = matmul_experiment(
        n_servers=2,
        blk=120,
        requirement="(host_cpu_bogomips > 4000) && (host_cpu_free > 0.9)"
                    " && (host_memory_free > 5)",
        random_servers=("lhost", "phoebe"),
        n=240,
        profile=True,
    )
    return [arm.attribution for arm in arms if arm.attribution is not None]


def _run_massd() -> list:
    from ..bench.experiments import massd_experiment

    arms = massd_experiment(
        group1_mbps=6.72,
        group2_mbps=1.33,
        requirement="monitor_network_bw > 6",
        n_servers=1,
        random_sets=[("pandora-x",)],
        data_kb=2000,
        profile=True,
    )
    return [arm.attribution for arm in arms if arm.attribution is not None]


#: named smoke scenarios: name -> zero-arg runner returning the
#: per-arm attribution dicts (same worlds ``--sanitize`` runs)
NAMED_SCENARIOS: dict[str, Callable[[], list]] = {
    "matmul": _run_matmul,
    "massd": _run_massd,
}


def _run_path(path: Path) -> list:
    source = path.read_text(encoding="utf-8")
    code = compile(source, str(path), "exec")
    namespace: dict = {"__name__": "repro_profile_scenario",
                       "__file__": str(path)}
    exec(code, namespace)  # noqa: S102 — the scenario file is the input
    entry = namespace.get("run")
    if not callable(entry):
        raise ValueError(f"{path}: scenario must define run(sim)")
    sim = Simulator()
    profiler = sim.enable_profile()
    entry(sim)
    return [profiler.attribution()]


def profile_scenario(scenario: str) -> ProfileResult:
    """Run one scenario (named or path) under the event profiler."""
    if scenario in NAMED_SCENARIOS:
        runner: Callable[[], list] = NAMED_SCENARIOS[scenario]
        label = scenario
    else:
        path = Path(scenario)
        if not (path.suffix == ".py" and path.exists()):
            known = ", ".join(sorted(NAMED_SCENARIOS))
            raise KeyError(f"unknown scenario {scenario!r}: expected one of "
                           f"{known} or a path to a run(sim) scenario file")
        runner = lambda: _run_path(path)  # noqa: E731
        label = path.name
    start = time.perf_counter()
    parts = runner()
    wall = time.perf_counter() - start
    if not parts:
        raise ValueError(f"{scenario}: no arm produced an attribution")
    return ProfileResult(scenario=label,
                         attribution=merge_attributions(parts),
                         arm_count=len(parts), wall_seconds=wall)


def profile_main(scenario: str, json_path: "str | None" = None,
                 out=None) -> int:
    """CLI body for ``repro profile``; returns the exit code."""
    import sys

    stream = out if out is not None else sys.stdout
    try:
        result = profile_scenario(scenario)
    except (KeyError, ValueError) as exc:
        print(f"repro-profile: {exc}", file=sys.stderr)
        return 2
    print(result.render(), file=stream)
    if json_path:
        Path(json_path).write_text(
            json.dumps(result.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
    return 0
