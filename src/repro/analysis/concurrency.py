"""R-series rules (``REPRO30x``): concurrency hygiene in simulated code.

The dynamic happens-before sanitizer (:mod:`repro.sim.hb`) catches races
that actually execute; these static rules catch the concurrency shapes
that *lead* to them before any run:

* a blocking ``recv``/``accept`` yield with no timeout composition and no
  enclosing ``Interrupt`` guard hangs forever when the peer dies and
  leaks on daemon shutdown (REPRO301);
* a ``MSG_``/``REPLY_`` wire tag nobody handles is a protocol hole — the
  send side works, the message vanishes (REPRO302, cross-checked against
  the live :data:`repro.core.records.WIRE_TAG_HANDLERS` registry the way
  the P-series checks the variable registry);
* writing a shared-memory segment in a module that never touches
  :func:`repro.sim.hb.shared` means the race detector is blind exactly
  where daemons share state (REPRO303);
* an event callback that mutates kernel internals corrupts the queue the
  kernel is iterating (REPRO304);
* a spawned :class:`~repro.sim.kernel.Process` whose handle is dropped
  can never be joined, interrupted or error-checked (REPRO305);
* ``except:`` around channel operations swallows ``Interrupt`` and the
  kernel's own :class:`~repro.sim.kernel.SimulationError` (REPRO306).

Path scoping: ``repro/sim/`` is the synchronisation layer itself and is
exempt from REPRO303 (it implements the wrapper the rule demands).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from ..lang.diagnostics import Diagnostic
from .determinism import _root_name, _walk_runtime
from .engine import FileContext, Rule, rule

__all__ = [
    "BLOCKING_RECV_ATTRS",
    "CHANNEL_OP_ATTRS",
    "SEGMENT_ALLOWLIST",
    "INTERRUPT_CATCHERS",
]

#: attribute calls whose yielded event blocks until a peer acts
BLOCKING_RECV_ATTRS: frozenset[str] = frozenset({"recv", "accept"})

#: attribute calls that move data through sockets/channels (REPRO306)
CHANNEL_OP_ATTRS: frozenset[str] = frozenset({
    "recv", "accept", "send", "sendto", "connect", "transmit",
})

#: the IPC layer itself may write segments without the shared() wrapper
SEGMENT_ALLOWLIST: tuple[str, ...] = ("repro/sim/resources.py",
                                     "repro/sim/hb.py")

#: exception names whose handler counts as covering an Interrupt
INTERRUPT_CATCHERS: frozenset[str] = frozenset({
    "Interrupt", "Exception", "BaseException",
})

#: simulator attributes no callback may assign or mutate (REPRO304)
_SIM_INTERNALS: frozenset[str] = frozenset({
    "_queue", "_now", "_seq", "_active_proc", "_current_tie",
})


def _handler_names(handler: ast.ExceptHandler) -> Iterator[str]:
    t = handler.type
    nodes = t.elts if isinstance(t, ast.Tuple) else [t] if t else []
    for node in nodes:
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr


def _catches_interrupt(handler: ast.ExceptHandler) -> bool:
    return any(n in INTERRUPT_CATCHERS for n in _handler_names(handler))


@rule
class BlockingRecvRule(Rule):
    """REPRO301: ``yield x.recv()`` / ``yield x.accept()`` with neither a
    timeout composition (``any_of`` with a :class:`Timeout`) nor a
    lexically enclosing ``except Interrupt``.

    Such a yield blocks its process forever if the peer never sends —
    and a daemon ``stop()`` that interrupts the process crashes instead
    of unwinding.  Either compose the event with a timeout
    (``recv_timeout``) or guard the loop with ``except Interrupt``.
    """

    code = "REPRO301"
    name = "blocking-recv"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        yield from self._visit(ctx, ctx.tree, guarded=False)

    def _visit(self, ctx: FileContext, node: ast.AST,
               guarded: bool) -> Iterator[Diagnostic]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Try):
                body_guarded = guarded or any(
                    _catches_interrupt(h) for h in child.handlers)
                for stmt in child.body + child.orelse + child.finalbody:
                    yield from self._visit(ctx, stmt, body_guarded)
                for handler in child.handlers:
                    yield from self._visit(ctx, handler, guarded)
                continue
            if isinstance(child, ast.Yield) and not guarded:
                call = child.value
                # unwrap `a, b = yield conn.recv()` style values
                if (isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr in BLOCKING_RECV_ATTRS):
                    yield ctx.diag(
                        self.code,
                        f"`yield .{call.func.attr}()` blocks forever with "
                        f"no timeout composition and no enclosing `except "
                        f"Interrupt`; use a recv timeout or guard the loop "
                        f"so shutdown can unwind it",
                        call,
                    )
            yield from self._visit(ctx, child, guarded)


@rule
class UnhandledWireTagRule(Rule):
    """REPRO302: a ``MSG_``/``REPLY_`` constant with no registered handler.

    Cross-checked against the *live*
    :data:`repro.core.records.WIRE_TAG_HANDLERS` registry: defining a new
    wire tag without wiring a consumer means the send side type-checks
    and the message silently disappears — the lint catches the hole the
    moment the constant appears.
    """

    code = "REPRO302"
    name = "unhandled-wire-tag"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        from ..core.records import WIRE_TAG_HANDLERS

        for node in _walk_runtime(ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (isinstance(target, ast.Name)
                        and target.id.startswith(("MSG_", "REPLY_"))):
                    continue
                if not isinstance(node.value, ast.Constant):
                    continue
                handlers = WIRE_TAG_HANDLERS.get(target.id)
                if not handlers:
                    yield ctx.diag(
                        self.code,
                        f"wire tag {target.id} has no handler in "
                        f"WIRE_TAG_HANDLERS; a message sent with it would "
                        f"be silently dropped — register the consumer in "
                        f"core/records.py",
                        node,
                    )


@rule
class UntrackedSegmentWriteRule(Rule):
    """REPRO303: ``.segment(...).write(...)`` in a module that never
    references :func:`~repro.sim.hb.shared`.

    Segments written by daemons are exactly the state the happens-before
    sanitizer exists to watch; an unwrapped segment is invisible to it,
    so a racing read would pass every sanitized run unnoticed.
    """

    code = "REPRO303"
    name = "untracked-segment-write"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if ctx.in_allowlist(SEGMENT_ALLOWLIST):
            return
        uses_shared = any(
            isinstance(n, ast.Name) and n.id == "shared"
            for n in ast.walk(ctx.tree)
        )
        if uses_shared:
            return
        seg_names: set[str] = set()
        for node in _walk_runtime(ctx.tree):
            if isinstance(node, ast.Assign) and _is_segment_call(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        seg_names.add(target.id)
        for node in _walk_runtime(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "write"):
                continue
            base = node.func.value
            direct = _is_segment_call(base)
            via_name = isinstance(base, ast.Name) and base.id in seg_names
            if direct or via_name:
                yield ctx.diag(
                    self.code,
                    "segment written without shared() tracking: the "
                    "happens-before sanitizer cannot see this state — "
                    "wrap the segment with repro.sim.hb.shared(...)",
                    node,
                )


def _is_segment_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "segment")


@rule
class CallbackMutatesSimRule(Rule):
    """REPRO304: a callback passed to ``add_callback`` assigns simulator
    internals (``sim._queue``, ``sim._now``, ...).

    Callbacks run *inside* ``_process_callbacks`` while the kernel is
    mid-``step``; mutating scheduler state there corrupts the very queue
    being processed.  Schedule a new event instead.
    """

    code = "REPRO304"
    name = "callback-mutates-sim"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        funcs: dict[str, ast.AST] = {
            n.name: n for n in ast.walk(ctx.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for node in _walk_runtime(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "add_callback"
                    and node.args):
                continue
            cb = node.args[0]
            body: Optional[ast.AST] = None
            if isinstance(cb, ast.Lambda):
                body = cb.body
            elif isinstance(cb, ast.Name) and cb.id in funcs:
                body = funcs[cb.id]
            if body is None:
                continue
            for bad in ast.walk(body):
                if isinstance(bad, (ast.Assign, ast.AugAssign)):
                    targets = (bad.targets
                               if isinstance(bad, ast.Assign)
                               else [bad.target])
                    for t in targets:
                        if (isinstance(t, ast.Attribute)
                                and t.attr in _SIM_INTERNALS):
                            yield ctx.diag(
                                self.code,
                                f"callback assigns `{t.attr}` while the "
                                f"kernel is mid-step; schedule a new event "
                                f"instead of mutating simulator state",
                                bad,
                            )


@rule
class UnjoinedProcessRule(Rule):
    """REPRO305: ``sim.process(...)`` as a bare expression statement.

    Dropping the :class:`~repro.sim.kernel.Process` handle makes the
    process unjoinable and uninterruptible — shutdown paths cannot stop
    it and nothing can observe its failure.  Keep the reference (even in
    a list) or mark deliberate fire-and-forget with a noqa.
    """

    code = "REPRO305"
    name = "unjoined-process"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in _walk_runtime(ctx.tree):
            if not (isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr == "process"):
                continue
            root = _root_name(node.value.func)
            if root in ("self", "sim", "cluster") or (
                    isinstance(node.value.func.value, ast.Attribute)
                    and node.value.func.value.attr == "sim"):
                yield ctx.diag(
                    self.code,
                    "spawned process handle is discarded; keep the "
                    "Process so it can be joined or interrupted (noqa "
                    "for deliberate fire-and-forget daemons)",
                    node,
                )


@rule
class BareExceptChannelRule(Rule):
    """REPRO306: ``except:`` with channel operations in the ``try`` body.

    A bare except around ``send``/``recv``/``connect`` swallows
    :class:`~repro.sim.kernel.Interrupt` (breaking daemon shutdown) and
    :class:`~repro.sim.kernel.SimulationError` (hiding kernel misuse).
    Catch the specific channel exceptions instead.
    """

    code = "REPRO306"
    name = "bare-except-channel"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in _walk_runtime(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            has_channel_op = any(
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and n.func.attr in CHANNEL_OP_ATTRS
                for stmt in node.body for n in ast.walk(stmt)
            )
            if not has_channel_op:
                continue
            for handler in node.handlers:
                if handler.type is None:
                    yield ctx.diag(
                        self.code,
                        "bare `except:` around channel operations swallows "
                        "Interrupt and SimulationError; catch the specific "
                        "channel exceptions (ConnectionClosed, IcmpError "
                        "timeouts, ...) instead",
                        handler,
                    )
