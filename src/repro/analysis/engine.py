"""Plugin-style AST lint engine for the codebase itself.

Where :mod:`repro.lang.analysis` statically checks *requirement texts*,
this engine statically checks the *Python source of the repo* — the
monitoring plane monitoring itself.  Rules are small classes registered
with :func:`rule`; each gets a parsed :class:`FileContext` and yields
:class:`~repro.lang.diagnostics.Diagnostic` objects (the same typed,
span-carrying diagnostics the requirement analyzer emits, under the
``REPROxxx`` code namespace registered here).

Two rule families ship in sibling modules:

* :mod:`repro.analysis.determinism` — **D-series** (``REPRO1xx``): no
  wall-clock, OS entropy or bare ``random`` in simulated code paths, no
  unordered iteration feeding the event scheduler, no float equality on
  event times.
* :mod:`repro.analysis.protocol` — **P-series** (``REPRO2xx``): wire
  constants, record field lists and byte accounting in
  ``core/records.py``/``core/probe.py`` must stay consistent with the
  22+10 variable registry of :mod:`repro.lang.variables`.

Suppression: a line carrying ``# repro: noqa[CODE]`` (comma-separated
codes allowed) silences those codes on that line; a bare
``# repro: noqa`` silences every code on the line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Type

from ..lang.diagnostics import Diagnostic, Severity, register_codes

__all__ = [
    "ANALYZER_CODES",
    "FileContext",
    "FileReport",
    "Rule",
    "rule",
    "all_rules",
    "check_source",
    "check_file",
    "check_paths",
    "iter_python_files",
]

#: the REPROxxx diagnostic table — D-series (1xx) determinism rules,
#: P-series (2xx) protocol-consistency rules, R-series (3xx)
#: concurrency rules (REPRO300 is emitted by the *dynamic* happens-before
#: sanitizer in :mod:`repro.sim.hb`, not by a static rule), F-series
#: (4xx) whole-program message-flow/lifecycle analyses (emitted by
#: :mod:`repro.analysis.flow` behind ``--flow``, not by per-file rules)
#: H-series (5xx) hot-path performance analyses (emitted by
#: :mod:`repro.analysis.hotpath` behind ``--perf``) and S-series (6xx)
#: typestate/protocol-conformance analyses (emitted by
#: :mod:`repro.analysis.typestate` behind ``--proto``)
ANALYZER_CODES: dict[str, tuple[str, str]] = {
    "REPRO101": (Severity.ERROR, "bare random module in simulated code"),
    "REPRO102": (Severity.ERROR, "wall-clock read in simulated code"),
    "REPRO103": (Severity.ERROR, "calendar/date read in simulated code"),
    "REPRO104": (Severity.ERROR, "OS entropy source in simulated code"),
    "REPRO105": (Severity.ERROR, "unordered iteration feeds event scheduling"),
    "REPRO106": (Severity.WARNING, "float equality on event times"),
    "REPRO201": (Severity.ERROR, "wire message constants inconsistent"),
    "REPRO202": (Severity.ERROR, "WireDiagnostic drifted from lang Diagnostic"),
    "REPRO203": (Severity.ERROR, "probe keys drifted from variable registry"),
    "REPRO204": (Severity.ERROR, "server record byte accounting too small"),
    "REPRO301": (Severity.ERROR, "blocking receive without timeout or "
                                 "interrupt guard"),
    "REPRO302": (Severity.ERROR, "wire tag defined but never handled"),
    "REPRO303": (Severity.ERROR, "shared segment written without shared() "
                                 "tracking"),
    "REPRO304": (Severity.ERROR, "event callback mutates simulator state"),
    "REPRO305": (Severity.WARNING, "spawned process is never joined or kept"),
    "REPRO306": (Severity.ERROR, "bare except around channel operations"),
    "REPRO400": (Severity.ERROR, "message-flow registry drift"),
    "REPRO401": (Severity.ERROR, "static wait-for deadlock cycle"),
    "REPRO402": (Severity.ERROR, "store getter leaked on losing race path"),
    "REPRO403": (Severity.ERROR, "resource handle never released"),
    "REPRO404": (Severity.ERROR, "unguarded blocking wait on client "
                                 "request path"),
    "REPRO500": (Severity.ERROR, "linear status-DB scan on the request path"),
    "REPRO501": (Severity.ERROR, "full-DB copy/serialization per message"),
    "REPRO502": (Severity.ERROR, "hoistable construction in a hot loop"),
    "REPRO503": (Severity.ERROR, "loop-invariant recomputation in a hot "
                                 "loop"),
    "REPRO504": (Severity.ERROR, "unbounded blocking work on the "
                                 "event-dispatch path"),
    "REPRO505": (Severity.ERROR, "quadratic accumulation on message-rate "
                                 "state"),
    "REPRO600": (Severity.ERROR, "use after close / double close"),
    "REPRO601": (Severity.ERROR, "lifecycle op before the machine permits "
                                 "it"),
    "REPRO602": (Severity.ERROR, "acquired resource not closed on an "
                                 "exception path"),
    "REPRO603": (Severity.ERROR, "request site misses a declared reply tag"),
    "REPRO604": (Severity.ERROR, "failover/re-open from a forbidden state"),
    "REPRO605": (Severity.ERROR, "lifecycle op races a spawned owner"),
    "REPRO606": (Severity.ERROR, "declared state machine drifted from the "
                                 "analyzer registry"),
}

register_codes(ANALYZER_CODES)

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")


@dataclass
class FileContext:
    """Everything a rule needs about one parsed source file."""

    path: Path
    source: str
    tree: ast.Module
    #: forward-slash path used for rule path-scoping (allowlists match on
    #: suffix, so absolute vs relative does not matter)
    posix: str = ""

    def __post_init__(self) -> None:
        if not self.posix:
            self.posix = self.path.as_posix()

    def diag(self, code: str, message: str, node: ast.AST) -> Diagnostic:
        """A diagnostic with the code's default severity, anchored at
        ``node`` (1-based line, 0-based column, like the lang analyzer)."""
        from ..lang.diagnostics import make
        return make(code, message, line=getattr(node, "lineno", 0),
                    col=getattr(node, "col_offset", 0))

    def in_allowlist(self, suffixes: Iterable[str]) -> bool:
        return any(self.posix.endswith(s) for s in suffixes)


@dataclass
class FileReport:
    """Outcome of checking one file."""

    path: Path
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: findings silenced by ``# repro: noqa[...]`` comments
    suppressed: int = 0
    #: syntax-error text when the file did not parse (no rules ran)
    parse_error: Optional[str] = None
    parse_line: int = 0
    parse_col: int = 0

    @property
    def error_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.is_error) + (
            1 if self.parse_error is not None else 0
        )


class Rule:
    """Base class for one REPROxxx rule.

    Subclasses set :attr:`code` and :attr:`name` and implement
    :meth:`check`; registration happens via the :func:`rule` decorator so
    rule modules are plugins — importing them is enough.
    """

    code: str = ""
    name: str = ""

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        raise NotImplementedError


_REGISTRY: dict[str, Type[Rule]] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator registering a :class:`Rule` by its code."""
    if not cls.code or cls.code not in ANALYZER_CODES:
        raise ValueError(f"rule {cls.__name__} has unknown code {cls.code!r}")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule for code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> list[Rule]:
    """One fresh instance of every registered rule, ordered by code."""
    _load_rule_modules()
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def _load_rule_modules() -> None:
    # imported lazily so engine <-> rule-module imports cannot cycle
    from . import concurrency, determinism, protocol  # noqa: F401


def _noqa_map(source: str) -> dict[int, Optional[frozenset[str]]]:
    """line -> suppressed codes (``None`` means *all* codes)."""
    out: dict[int, Optional[frozenset[str]]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(text)
        if not m:
            continue
        if m.group(1) is None:
            out[lineno] = None
        else:
            codes = frozenset(
                c.strip().upper() for c in m.group(1).split(",") if c.strip()
            )
            out[lineno] = codes or None
    return out


def check_source(source: str, path: Path,
                 rules: Optional[list[Rule]] = None) -> FileReport:
    """Run every rule over one source text."""
    report = FileReport(path=path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        report.parse_error = exc.msg or "syntax error"
        report.parse_line = exc.lineno or 0
        report.parse_col = (exc.offset or 1) - 1
        return report
    ctx = FileContext(path=path, source=source, tree=tree)
    noqa = _noqa_map(source)
    findings: list[Diagnostic] = []
    for r in (rules if rules is not None else all_rules()):
        for diag in r.check(ctx):
            silenced = noqa.get(diag.line, frozenset())
            if silenced is None or (silenced and diag.code in silenced):
                report.suppressed += 1
            else:
                findings.append(diag)
    findings.sort(key=lambda d: (d.line, d.col, d.code))
    report.diagnostics = findings
    return report


def check_file(path: Path, rules: Optional[list[Rule]] = None) -> FileReport:
    return check_source(path.read_text(encoding="utf-8"), path, rules=rules)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated file walk."""
    seen: set[Path] = set()
    for p in paths:
        candidates = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for c in candidates:
            if c not in seen:
                seen.add(c)
                yield c


def check_paths(paths: Iterable[Path],
                rules: Optional[list[Rule]] = None) -> list[FileReport]:
    """Check every ``*.py`` under ``paths``; one report per file."""
    active = rules if rules is not None else all_rules()
    return [check_file(p, rules=active) for p in iter_python_files(paths)]
