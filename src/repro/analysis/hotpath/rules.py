"""The six H-series performance rules (REPRO500–505).

All six are *shape* rules over the hot context of :mod:`.heat`: they
fire only in functions reachable from a service loop or a registered
wire-tag handler (REPRO504 excepted — its context is the kernel
event-dispatch path itself, via ``add_callback`` registration).  Each
rule yields ``(FunctionInfo, Diagnostic)`` pairs; the checker attaches
file units, applies ``noqa`` and sorts.

The rules are deliberately conservative about what counts as evidence:

* **REPRO500** — a ``for`` loop iterating a status-DB directly
  (``for addr in sorted(sysdb)``, ``for a in db.items()``); a memoized
  candidate order (``for addr in self._candidate_order(sysdb)``) does
  not match, which is exactly the fix the rule wants.
* **REPRO501** — a full-copy/serialize call (``dict``, ``list``,
  ``tuple``, ``.copy()``, ``deepcopy``, ``dumps``) whose argument
  mentions a DB name or a shared-segment ``.read()``/``.snapshot()``.
* **REPRO502** — construction of a project class inside a hot loop with
  every argument loop-invariant (hoist it out or pool it); ``raise``
  sites are exempt (error paths are cold).
* **REPRO503** — a call to a known-expensive pure function (``sorted``,
  ``compile``, ``min``/``max``/``sum``, ``re.compile``) inside a loop
  body with every argument loop-invariant — the missing-cache shape.
  A loop's *own* iterable is evaluated once per entry and is exempt.
* **REPRO504** — a callback registered with ``add_callback`` whose call
  closure contains a ``while True:`` with no ``break``/``return``/
  ``yield``/``raise`` — unbounded blocking work inside
  :meth:`Simulator.step`, which stalls every other simulated host.
* **REPRO505** — a list grown via ``append``/``extend``/``insert``/
  ``+=`` in a hot function that is also membership-scanned (``in`` /
  ``not in``) there: O(n) scan per message over O(messages) state is
  quadratic; use a set/dict keyed view instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ...lang.diagnostics import Diagnostic, make
from ..flow.symbols import ClassInfo, FunctionInfo, SymbolTable
from .heat import HotContext, constant_true

__all__ = ["hot_rule_diagnostics", "HOT_RULE_COUNT", "DB_NAME_SUFFIXES"]

#: the H-series surface: REPRO500..REPRO505
HOT_RULE_COUNT = 6

#: a lowercase local name denotes a status-DB/host registry when it ends
#: with one of these or equals one of the exact names
DB_NAME_SUFFIXES = ("db",)
_DB_EXACT = frozenset({"hosts", "registry", "host_registry"})

_COPY_NAME_FUNCS = frozenset({"dict", "list", "tuple"})
_COPY_ATTR_FUNCS = frozenset({"deepcopy", "dumps"})
_SNAPSHOT_ATTRS = frozenset({"read", "snapshot"})
_EXPENSIVE_NAME_FUNCS = frozenset({"sorted", "compile", "min", "max", "sum"})
_EXPENSIVE_ATTR_FUNCS = frozenset({"compile"})
_GROW_ATTRS = frozenset({"append", "extend", "insert"})


def _is_dbish(name: str) -> bool:
    low = name.lower()
    return low.endswith(DB_NAME_SUFFIXES) or low in _DB_EXACT


def _dbish_name_in(expr: ast.expr) -> "str | None":
    """The first DB-flavoured name mentioned anywhere in ``expr``."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and _is_dbish(node.id):
            return node.id
        if isinstance(node, ast.Attribute) and _is_dbish(node.attr):
            return node.attr
    return None


def _snapshot_read_in(expr: ast.expr) -> bool:
    return any(isinstance(node, ast.Call)
               and isinstance(node.func, ast.Attribute)
               and node.func.attr in _SNAPSHOT_ATTRS
               for node in ast.walk(expr))


def _dotted(expr: ast.expr) -> "str | None":
    """Render ``x`` / ``self.x`` / ``a.b.c`` as a dotted key."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _assigned_names(node: ast.AST) -> set[str]:
    """Every bare name (re)bound anywhere under ``node``."""
    out: set[str] = set()

    def bind(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            out.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                bind(elt)
        elif isinstance(target, ast.Starred):
            bind(target.value)

    for child in ast.walk(node):
        if isinstance(child, ast.Assign):
            for target in child.targets:
                bind(target)
        elif isinstance(child, (ast.AugAssign, ast.AnnAssign,
                                ast.NamedExpr)):
            bind(child.target)
        elif isinstance(child, (ast.For, ast.AsyncFor)):
            bind(child.target)
        elif isinstance(child, (ast.With, ast.AsyncWith)):
            for item in child.items:
                if item.optional_vars is not None:
                    bind(item.optional_vars)
        elif isinstance(child, ast.comprehension):
            bind(child.target)
    return out


def _loop_invariant(expr: ast.expr, assigned: set[str]) -> bool:
    """Constants and names not rebound in the loop are invariant;
    anything else (attributes, calls, subscripts) is conservatively
    treated as loop-varying."""
    if isinstance(expr, ast.Constant):
        return True
    if isinstance(expr, ast.Name):
        return expr.id not in assigned
    if isinstance(expr, (ast.Tuple, ast.List)):
        return all(_loop_invariant(e, assigned) for e in expr.elts)
    if isinstance(expr, ast.UnaryOp):
        return _loop_invariant(expr.operand, assigned)
    return False


def _loops_in(fn: FunctionInfo) -> "list[ast.For | ast.While]":
    return [node for node in ast.walk(fn.node)
            if isinstance(node, (ast.For, ast.While))]


def _raised_calls(fn: FunctionInfo) -> set[int]:
    """ids of Call nodes that construct a raised exception (cold path)."""
    out: set[int] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Raise) and node.exc is not None:
            for sub in ast.walk(node.exc):
                if isinstance(sub, ast.Call):
                    out.add(id(sub))
    return out


def _hot_functions(ctx: HotContext) -> Iterator[FunctionInfo]:
    for qual in sorted(ctx.hot):
        fn = ctx.table.functions.get(qual)
        if fn is not None:
            yield fn


def _root_label(ctx: HotContext, qual: str) -> str:
    roots = ctx.roots_of(qual)
    return roots[0] if roots else qual


# -- REPRO500: linear DB scan ------------------------------------------------

def _scanned_db(iter_expr: ast.expr) -> "str | None":
    """The DB name a ``for`` iterable scans, if it scans one directly."""
    expr = iter_expr
    if (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
            and expr.func.id == "sorted" and expr.args):
        expr = expr.args[0]
    if (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in ("items", "values", "keys")
            and not expr.args):
        expr = expr.func.value
    if isinstance(expr, ast.Name) and _is_dbish(expr.id):
        return expr.id
    if isinstance(expr, ast.Attribute) and _is_dbish(expr.attr):
        return expr.attr
    return None


def _check_db_scan(ctx: HotContext, fn: FunctionInfo) -> Iterator[Diagnostic]:
    for loop in _loops_in(fn):
        if not isinstance(loop, ast.For):
            continue
        db = _scanned_db(loop.iter)
        if db is None:
            continue
        yield make(
            "REPRO500",
            f"{fn.qualname} linear-scans status DB {db!r} per request "
            f"(hot via {_root_label(ctx, fn.qualname)}) — index the DB "
            f"or memoize the candidate order instead of rescanning",
            line=loop.iter.lineno, col=loop.iter.col_offset)


# -- REPRO501: full-DB copy/serialization per message ------------------------

def _check_db_copy(ctx: HotContext, fn: FunctionInfo) -> Iterator[Diagnostic]:
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        is_copy = (
            (isinstance(func, ast.Name) and func.id in _COPY_NAME_FUNCS)
            or (isinstance(func, ast.Attribute)
                and func.attr in _COPY_ATTR_FUNCS))
        if not is_copy:
            continue
        arg = node.args[0]
        evidence = _dbish_name_in(arg)
        if evidence is None and _snapshot_read_in(arg):
            evidence = "a shared-segment snapshot"
        if evidence is None:
            continue
        verb = (func.id if isinstance(func, ast.Name) else func.attr)
        yield make(
            "REPRO501",
            f"{fn.qualname} {verb}-copies {evidence!r} wholesale per "
            f"message (hot via {_root_label(ctx, fn.qualname)}) — ship "
            f"deltas or reuse the last snapshot instead of re-copying "
            f"the full DB",
            line=node.lineno, col=node.col_offset)


# -- REPRO502: hoistable construction in a hot loop --------------------------

def _check_loop_construction(ctx: HotContext,
                             fn: FunctionInfo) -> Iterator[Diagnostic]:
    cold = _raised_calls(fn)
    for loop in _loops_in(fn):
        assigned = _assigned_names(loop)
        for node in ast.walk(loop):
            if not isinstance(node, ast.Call) or id(node) in cold:
                continue
            target = ctx.table.resolve_call(node.func, fn.module, fn.cls)
            if not isinstance(target, ClassInfo):
                continue
            args = list(node.args) + [kw.value for kw in node.keywords]
            if not all(_loop_invariant(a, assigned) for a in args):
                continue
            yield make(
                "REPRO502",
                f"{fn.qualname} constructs {target.name} with only "
                f"loop-invariant arguments inside a per-event loop (hot "
                f"via {_root_label(ctx, fn.qualname)}) — hoist the "
                f"construction out of the loop or pool the object",
                line=node.lineno, col=node.col_offset)


# -- REPRO503: loop-invariant recomputation ----------------------------------

def _check_invariant_recompute(ctx: HotContext,
                               fn: FunctionInfo) -> Iterator[Diagnostic]:
    loops = _loops_in(fn)
    own_iters = {id(loop.iter) for loop in loops
                 if isinstance(loop, ast.For)}
    for loop in loops:
        assigned = _assigned_names(loop)
        for node in ast.walk(loop):
            if (not isinstance(node, ast.Call) or not node.args
                    or id(node) in own_iters):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                name = func.id
                if name not in _EXPENSIVE_NAME_FUNCS:
                    continue
            elif isinstance(func, ast.Attribute):
                name = func.attr
                if name not in _EXPENSIVE_ATTR_FUNCS:
                    continue
            else:
                continue
            args = list(node.args) + [kw.value for kw in node.keywords]
            if not all(_loop_invariant(a, assigned) for a in args):
                continue
            if not any(isinstance(a, ast.Name) for a in node.args):
                continue  # recomputing over literals is not a cache miss
            yield make(
                "REPRO503",
                f"{fn.qualname} recomputes {name}() over loop-invariant "
                f"arguments every iteration (hot via "
                f"{_root_label(ctx, fn.qualname)}) — hoist it before the "
                f"loop or cache the result",
                line=node.lineno, col=node.col_offset)


# -- REPRO504: unbounded blocking work on the dispatch path ------------------

def _unbounded_loops(fn: FunctionInfo) -> list[ast.While]:
    out = []
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.While) or not constant_true(node.test):
            continue
        if any(isinstance(sub, (ast.Break, ast.Return, ast.Yield,
                                ast.YieldFrom, ast.Raise))
               for sub in ast.walk(node)):
            continue
        out.append(node)
    return out


def _callback_targets(table: SymbolTable) -> "dict[str, str]":
    """Callback qualname -> the registering function's qualname."""
    out: dict[str, str] = {}
    for qual in sorted(table.functions):
        fn = table.functions[qual]
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "add_callback"
                    and node.args):
                continue
            target = table.resolve_call(node.args[0], fn.module, fn.cls)
            if isinstance(target, FunctionInfo):
                out.setdefault(target.qualname, qual)
    return out


def check_dispatch_blocking(
    table: SymbolTable,
) -> "Iterator[tuple[FunctionInfo, Diagnostic]]":
    """REPRO504 over the whole table (not hot-context scoped: the
    dispatch path is hot by construction)."""
    from .heat import _callees  # shared call-resolution walk

    registered = _callback_targets(table)
    for start in sorted(registered):
        stack = [start]
        seen: set[str] = set()
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            fn = table.functions.get(qual)
            if fn is None:
                continue
            for loop in _unbounded_loops(fn):
                yield fn, make(
                    "REPRO504",
                    f"{fn.qualname} runs an unbounded loop with no "
                    f"break/return/yield and is reachable from the "
                    f"event-dispatch path (registered as a callback by "
                    f"{registered[start]}) — it would block "
                    f"Simulator.step and stall every simulated host",
                    line=loop.lineno, col=loop.col_offset)
            stack.extend(_callees(table, fn))


# -- REPRO505: quadratic accumulation ----------------------------------------

def _grown_lists(fn: FunctionInfo) -> set[str]:
    out: set[str] = set()
    for node in ast.walk(fn.node):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _GROW_ATTRS):
            key = _dotted(node.func.value)
            if key is not None:
                out.add(key)
        elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            key = _dotted(node.target)
            if key is not None and isinstance(node.value, (ast.List,
                                                           ast.ListComp)):
                out.add(key)
    return out


def _check_quadratic_scan(ctx: HotContext,
                          fn: FunctionInfo) -> Iterator[Diagnostic]:
    growers = _grown_lists(fn)
    if not growers:
        return
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Compare):
            continue
        for op, comparator in zip(node.ops, node.comparators):
            if not isinstance(op, (ast.In, ast.NotIn)):
                continue
            key = _dotted(comparator)
            if key is None or key not in growers:
                continue
            yield make(
                "REPRO505",
                f"{fn.qualname} membership-scans list {key!r} which it "
                f"also grows per message (hot via "
                f"{_root_label(ctx, fn.qualname)}) — O(n) scan over "
                f"O(messages) state is quadratic; keep a set/dict "
                f"alongside (or instead)",
                line=node.lineno, col=node.col_offset)


# -- driver ------------------------------------------------------------------

_HOT_CHECKS = (
    _check_db_scan,
    _check_db_copy,
    _check_loop_construction,
    _check_invariant_recompute,
    _check_quadratic_scan,
)


def hot_rule_diagnostics(
    ctx: HotContext,
) -> "list[tuple[FunctionInfo, Diagnostic]]":
    """Every H-series finding as ``(function, diagnostic)`` pairs."""
    out: list[tuple[FunctionInfo, Diagnostic]] = []
    for fn in _hot_functions(ctx):
        for check in _HOT_CHECKS:
            for diag in check(ctx, fn):
                out.append((fn, diag))
    out.extend(check_dispatch_blocking(ctx.table))
    return out
