"""Hot-context discovery for the H-series performance lints.

A perf lint that fires everywhere is noise; the H rules only police
code that runs at *message rate*.  This module decides what that is,
reusing the PR 7 flow machinery (the project
:class:`~repro.analysis.flow.symbols.SymbolTable` and its conservative
call resolution) instead of re-deriving a call graph:

* **hot roots** — functions that *are* an unbounded service loop: a
  ``while True:`` (constant-true test) whose body yields a blocking
  wire wait (``recv``/``accept``/``get``) or a periodic ``timeout``
  (push/probe loops — the transmitter's per-replica fan-out runs at
  push rate, which is message rate from the receiver's side), plus
  every handler path named by a parsed ``WIRE_TAG_HANDLERS`` registry;
* **hot functions** — everything reachable from a hot root through
  resolved calls, including ``sim.process(self._session(conn), ...)``
  spawn arguments (a per-connection spawn inside an accept loop runs
  per message, so its body is hot too);
* **spawn names** — the ``name="wizard"`` literals on ``*.process``
  calls, mapped to the generator function they spawn.  They are the
  bridge to the dynamic profiler: a static finding reachable from
  ``Wizard._serve`` is ranked by the measured heat of the process
  named ``wizard``.

Everything is AST-only and deterministic; nothing imports the analyzed
code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..concurrency import BLOCKING_RECV_ATTRS
from ..flow.symbols import FunctionInfo, SymbolTable

__all__ = ["HotContext", "build_hot_context", "constant_true"]

#: yielded attributes that make a ``while True`` loop a service loop
_LOOP_WAIT_ATTRS = BLOCKING_RECV_ATTRS | {"get", "timeout", "any_of", "all_of"}


def constant_true(test: ast.expr) -> bool:
    """Is a loop test the literal ``True``/``1`` (an unbounded loop)?"""
    return isinstance(test, ast.Constant) and bool(test.value) is True


@dataclass
class HotContext:
    """The hot surface of one analyzed tree."""

    table: SymbolTable
    #: service-loop functions: qualname -> their unbounded loop nodes
    roots: dict[str, list[ast.While]] = field(default_factory=dict)
    #: every hot function: qualname -> sorted roots it is reachable from
    hot: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: generator qualname -> ``name=`` literal of its ``*.process`` spawn
    spawn_names: dict[str, str] = field(default_factory=dict)

    def is_hot(self, qualname: str) -> bool:
        return qualname in self.hot

    def roots_of(self, qualname: str) -> tuple[str, ...]:
        return self.hot.get(qualname, ())

    def heat_names(self, qualname: str) -> tuple[str, ...]:
        """Profiler process names behind a hot function's roots: the
        spawn-name literal of each root that has one, else the root's
        own bare function name (the kernel's default process name)."""
        out = []
        for root in self.roots_of(qualname):
            name = self.spawn_names.get(root)
            if name is None:
                name = root.rsplit(".", 1)[-1]
            if name not in out:
                out.append(name)
        return tuple(out)


def _is_service_loop(loop: ast.While) -> bool:
    """``while True`` whose body awaits the event loop (a daemon loop)."""
    if not constant_true(loop.test):
        return False
    for node in ast.walk(loop):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            value = node.value
            if (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr in _LOOP_WAIT_ATTRS):
                return True
    return False


def _callees(table: SymbolTable, fn: FunctionInfo) -> list[str]:
    """Qualnames of every call (and spawn argument) the table resolves."""
    out: list[str] = []
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        args = list(node.args)
        # sim.process(self._session(conn), name=...): the spawned
        # generator runs per spawn — per message inside a service loop
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "process"):
            args = [a for a in node.args if isinstance(a, ast.Call)]
            for arg in args:
                target = table.resolve_call(arg.func, fn.module, fn.cls)
                if isinstance(target, FunctionInfo):
                    out.append(target.qualname)
            continue
        target = table.resolve_call(node.func, fn.module, fn.cls)
        if isinstance(target, FunctionInfo):
            out.append(target.qualname)
    return out


def _spawn_names(table: SymbolTable) -> dict[str, str]:
    names: dict[str, str] = {}
    for qual in sorted(table.functions):
        fn = table.functions[qual]
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "process"):
                continue
            literal = None
            for kw in node.keywords:
                if (kw.arg == "name" and isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, str)):
                    literal = kw.value.value
            if literal is None:
                continue
            for arg in node.args:
                if isinstance(arg, ast.Call):
                    target = table.resolve_call(arg.func, fn.module, fn.cls)
                    if (isinstance(target, FunctionInfo)
                            and target.qualname not in names):
                        names[target.qualname] = literal
    return names


def build_hot_context(table: SymbolTable) -> HotContext:
    """Discover service loops, registry handlers, and their closure."""
    ctx = HotContext(table=table)

    for qual in sorted(table.functions):
        fn = table.functions[qual]
        loops = [node for node in ast.walk(fn.node)
                 if isinstance(node, ast.While) and _is_service_loop(node)]
        if loops:
            ctx.roots[qual] = loops

    registry_roots: set[str] = set()
    for registry in table.registries:
        for entry in registry.entries:
            for dotted, _ in entry.paths:
                if dotted in table.functions:
                    registry_roots.add(dotted)

    # closure over resolved calls, tracking which roots reach what
    reach: dict[str, set[str]] = {}
    callee_cache: dict[str, list[str]] = {}
    for root in sorted(set(ctx.roots) | registry_roots):
        stack = [root]
        seen: set[str] = set()
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            reach.setdefault(qual, set()).add(root)
            fn = table.functions.get(qual)
            if fn is None:
                continue
            if qual not in callee_cache:
                callee_cache[qual] = _callees(table, fn)
            stack.extend(callee_cache[qual])

    ctx.hot = {qual: tuple(sorted(roots))
               for qual, roots in sorted(reach.items())}
    ctx.spawn_names = _spawn_names(table)
    return ctx
