"""Orchestration for ``repro check --perf``.

Parses every file once, builds the project symbol table (the same
:class:`~repro.analysis.flow.symbols.SymbolTable` the flow analyzer
uses), discovers the hot surface (:mod:`.heat`) and runs the six
H-series rules (:mod:`.rules`) over it.

``# repro: noqa[CODE]`` suppression works exactly as in the per-file
engine and the flow analyzer.  Without a profile, findings sort by
(path, line, col, code) — byte-identical across runs.  With a profile
attribution dict (from ``repro profile``), each finding is annotated
with the measured resume share of the process(es) behind its hot roots
and the list re-ranks hottest-first; the annotation is derived purely
from the JSON, so the ranked output is exactly as deterministic as the
profile that fed it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from ...lang.diagnostics import Diagnostic
from ..engine import _noqa_map
from ..flow.checker import ParseFailure, _load_units
from ..flow.symbols import FileUnit, SymbolTable
from .heat import HotContext, build_hot_context
from .rules import HOT_RULE_COUNT, hot_rule_diagnostics

__all__ = ["HotFinding", "HotpathReport", "run_hotpath", "HOT_RULE_COUNT"]

#: separators accepted between a heat name and a per-connection suffix
#: when matching profiler process names (``wizard`` matches
#: ``wizard-session-3``) — mirrors the profiler's group separators
_NAME_SEPS = ("-", ":", "/", ".")


@dataclass
class HotFinding:
    """One H-series finding with its hot-context provenance."""

    unit: FileUnit
    diag: Diagnostic
    #: qualname of the function the finding is anchored in
    qualname: str
    #: profiler process names behind the finding's hot roots
    heat_names: tuple[str, ...] = ()
    #: measured resume share of those processes (``None`` = no profile)
    heat: "float | None" = None


@dataclass
class HotpathReport:
    """The outcome of one hot-path analysis."""

    units: list[FileUnit] = field(default_factory=list)
    parse_failures: list[ParseFailure] = field(default_factory=list)
    #: unsuppressed findings; (path, line, col, code) order, re-ranked
    #: hottest-first when a profile was supplied
    findings: list[HotFinding] = field(default_factory=list)
    suppressed: int = 0
    function_count: int = 0
    hot_count: int = 0
    root_count: int = 0
    profiled: bool = False
    ctx: "HotContext | None" = None

    @property
    def exit_code(self) -> int:
        return 1 if (self.findings or self.parse_failures) else 0


def _matches(proc_name: str, heat_name: str) -> bool:
    return proc_name == heat_name or any(
        proc_name.startswith(heat_name + sep) for sep in _NAME_SEPS)


def heat_share(attribution: "dict[str, Any]",
               heat_names: Iterable[str]) -> float:
    """Fraction of all profiled resumes owned by ``heat_names``."""
    processes: dict[str, Any] = attribution.get("processes", {})
    total = sum(row["resumes"] for row in processes.values())
    if total == 0:
        return 0.0
    count = 0
    for proc_name, row in processes.items():
        if any(_matches(proc_name, h) for h in heat_names):
            count += row["resumes"]
    return count / total


def run_hotpath(paths: Iterable[Path],
                profile: "dict[str, Any] | None" = None) -> HotpathReport:
    """Analyze every ``*.py`` under ``paths`` as one program.

    ``profile`` is a profiler attribution dict (the ``attribution``
    subtree of a ``repro profile`` JSON); when given, findings carry a
    measured :attr:`~HotFinding.heat` share and rank hottest-first.
    """
    report = HotpathReport()
    report.units = _load_units(paths, report.parse_failures)
    table = SymbolTable(report.units)
    ctx = build_hot_context(table)

    unit_by_module = {u.module: u for u in report.units}
    raw: list[HotFinding] = []
    for fn, diag in hot_rule_diagnostics(ctx):
        unit = unit_by_module.get(fn.module)
        if unit is None:  # pragma: no cover - table built from these units
            continue
        raw.append(HotFinding(unit=unit, diag=diag, qualname=fn.qualname,
                              heat_names=ctx.heat_names(fn.qualname)))

    noqa_by_posix = {u.posix: _noqa_map(u.source) for u in report.units}
    kept: list[HotFinding] = []
    for finding in raw:
        silenced = noqa_by_posix[finding.unit.posix].get(
            finding.diag.line, frozenset())
        if silenced is None or (silenced and finding.diag.code in silenced):
            report.suppressed += 1
        else:
            kept.append(finding)

    def stable_key(f: HotFinding) -> tuple[str, int, int, str]:
        return (f.unit.posix, f.diag.line, f.diag.col, f.diag.code)

    if profile is not None:
        report.profiled = True
        for finding in kept:
            finding.heat = heat_share(profile, finding.heat_names)
        kept.sort(key=lambda f: (-(f.heat or 0.0),) + stable_key(f))
    else:
        kept.sort(key=stable_key)

    report.findings = kept
    report.function_count = len(table.functions)
    report.hot_count = len(ctx.hot)
    report.root_count = len(ctx.roots)
    report.ctx = ctx
    return report
