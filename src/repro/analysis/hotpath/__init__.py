"""Profile-guided hot-path performance analyzer (H-series REPRO5xx).

The paper's pitch is a socket that keeps per-host status *cheap enough
to consult on every send*; a linear rescan of the status DB per message
quietly turns the smart socket into the bottleneck it was meant to
remove.  This package polices that class of mistake statically: it
reuses the PR 7 flow machinery to find the code that runs at message
rate (service loops, registered wire-tag handlers and everything they
reach — :mod:`.heat`), then checks only that hot surface for the six
classic shapes (:mod:`.rules`): linear DB scans (REPRO500), full-DB
copies per message (REPRO501), hoistable constructions (REPRO502),
loop-invariant recomputation (REPRO503), unbounded blocking work on the
event-dispatch path (REPRO504) and quadratic accumulation (REPRO505).
Exposed as ``repro check --perf`` via :mod:`.checker`; feed it a
``repro profile`` JSON with ``--profile`` and findings are ranked by
*measured* heat instead of textual order.
"""

from .checker import HOT_RULE_COUNT, HotFinding, HotpathReport, run_hotpath
from .heat import HotContext, build_hot_context

__all__ = ["HOT_RULE_COUNT", "HotFinding", "HotpathReport", "run_hotpath",
           "HotContext", "build_hot_context"]
