"""D-series rules (``REPRO10x``): the simulation must stay deterministic.

The discrete-event kernel guarantees bit-identical runs only while every
source of nondeterminism is routed through seeded infrastructure:

* randomness through :class:`repro.sim.rand.RandomStreams` (named,
  seed-derived substreams) rather than the process-global ``random``
  module;
* time through the kernel clock (``Simulator.now``) rather than the
  wall clock;
* event scheduling fed from ordered views, never raw ``set`` /
  ``dict.keys()`` iteration.

Path scoping: the rules apply to every checked file except a small
suffix allowlist — ``sim/rand.py`` *is* the blessed wrapper around
``random``, and the CLI front end (``repro/__main__.py``) legitimately
times wall-clock runs of whole experiments.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from ..lang.diagnostics import Diagnostic
from .engine import FileContext, Rule, rule

__all__ = [
    "RANDOM_ALLOWLIST",
    "WALLCLOCK_ALLOWLIST",
    "SCHEDULING_SINKS",
]

#: files allowed to touch the bare ``random`` module (the seeded-stream
#: factory itself)
RANDOM_ALLOWLIST: tuple[str, ...] = ("repro/sim/rand.py",)

#: files allowed to read the wall clock (CLI timing of real elapsed
#: runs; the profiler runner keeps wall metrics *outside* the
#: deterministic attribution it reports)
WALLCLOCK_ALLOWLIST: tuple[str, ...] = ("repro/__main__.py",
                                        "repro/analysis/profiler.py")

#: attribute/function names that put work on the event queue — iteration
#: order feeding any of these becomes event order
SCHEDULING_SINKS: frozenset[str] = frozenset({
    "timeout", "process", "schedule", "_schedule", "succeed", "fail",
    "interrupt", "transmit", "sendto", "occupy", "start",
})

_WALLCLOCK_FNS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "sleep",
})

_CALENDAR_FNS = frozenset({"now", "utcnow", "today", "fromtimestamp"})

_ENTROPY_MODULES = frozenset({"secrets"})


def _root_name(node: ast.AST) -> Optional[str]:
    """Leftmost name of an attribute chain (``a.b.c`` -> ``a``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _is_type_checking(test: ast.expr) -> bool:
    return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
        isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
    )


def _walk_runtime(tree: ast.Module) -> Iterator[ast.AST]:
    """Like ast.walk but skipping ``if TYPE_CHECKING:`` bodies — imports
    and names there never execute, so they cannot leak nondeterminism."""
    stack: list[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.If) and _is_type_checking(node.test):
            stack.extend(node.orelse)
            continue
        stack.extend(ast.iter_child_nodes(node))
        yield node


@rule
class BareRandomRule(Rule):
    """REPRO101: importing/calling the process-global ``random`` module.

    Draws from ``random.*`` depend on interpreter-global state that any
    import or test can perturb; simulated components must pull from a
    named :class:`~repro.sim.rand.RandomStreams` substream instead (a
    ``random.Random`` *annotation* under ``TYPE_CHECKING`` is fine — the
    streams hand out exactly that type).
    """

    code = "REPRO101"
    name = "bare-random"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if ctx.in_allowlist(RANDOM_ALLOWLIST):
            return
        for node in _walk_runtime(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        yield ctx.diag(self.code, (
                            "import of the bare `random` module in simulated "
                            "code; derive a seeded stream from "
                            "repro.sim.rand.RandomStreams (or guard the "
                            "import under TYPE_CHECKING if only annotations "
                            "need it)"), node)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield ctx.diag(self.code, (
                        "`from random import ...` in simulated code; use a "
                        "named RandomStreams substream so draws are a pure "
                        "function of the experiment seed"), node)
            elif isinstance(node, ast.Call):
                if _root_name(node.func) == "random" and isinstance(
                        node.func, ast.Attribute):
                    yield ctx.diag(self.code, (
                        f"call to random.{node.func.attr}() uses the "
                        "process-global RNG; route it through "
                        "RandomStreams.stream(name)"), node)


@rule
class WallClockRule(Rule):
    """REPRO102: reading the wall clock inside simulated code.

    Simulated time is ``Simulator.now``; mixing in ``time.time()`` (or
    sleeping real seconds) couples results to host speed and load.
    """

    code = "REPRO102"
    name = "wall-clock"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if ctx.in_allowlist(WALLCLOCK_ALLOWLIST):
            return
        for node in _walk_runtime(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = [a.name for a in node.names if a.name in _WALLCLOCK_FNS]
                if bad:
                    yield ctx.diag(self.code, (
                        f"`from time import {', '.join(bad)}` in simulated "
                        "code; use the kernel clock (Simulator.now) instead "
                        "of the wall clock"), node)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if (_root_name(node.func) == "time"
                        and node.func.attr in _WALLCLOCK_FNS):
                    yield ctx.diag(self.code, (
                        f"time.{node.func.attr}() reads the wall clock; "
                        "simulated components must use Simulator.now"), node)


@rule
class CalendarClockRule(Rule):
    """REPRO103: ``datetime.now()`` / ``date.today()`` and friends."""

    code = "REPRO103"
    name = "calendar-clock"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        if ctx.in_allowlist(WALLCLOCK_ALLOWLIST):
            return
        for node in _walk_runtime(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            if (node.func.attr in _CALENDAR_FNS
                    and _root_name(node.func) in ("datetime", "date")):
                yield ctx.diag(self.code, (
                    f"{ast.unparse(node.func)}() reads the calendar clock; "
                    "timestamps inside the simulation must come from "
                    "Simulator.now"), node)


@rule
class EntropyRule(Rule):
    """REPRO104: OS entropy (``os.urandom``, ``uuid.uuid1/4``,
    ``secrets``) — unreplayable by construction."""

    code = "REPRO104"
    name = "os-entropy"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in _walk_runtime(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            root = _root_name(node.func)
            attr = node.func.attr
            if (root == "os" and attr == "urandom") \
                    or (root == "uuid" and attr in ("uuid1", "uuid4")) \
                    or root in _ENTROPY_MODULES:
                yield ctx.diag(self.code, (
                    f"{ast.unparse(node.func)}() draws OS entropy, which no "
                    "seed can replay; use a RandomStreams substream"), node)


def _unordered_iterable(node: ast.expr) -> Optional[str]:
    """Describe ``node`` when it is an unordered iteration source."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(node, ast.Call):
        fn = node.func
        if isinstance(fn, ast.Name) and fn.id in ("set", "frozenset"):
            return f"{fn.id}()"
        if isinstance(fn, ast.Attribute) and fn.attr == "keys":
            return ".keys()"
    return None


@rule
class UnorderedSchedulingRule(Rule):
    """REPRO105: iterating a ``set`` / ``.keys()`` view to schedule events.

    Set iteration order depends on hash seeding and insertion history;
    feeding it into the event queue turns one nondeterministic order into
    a different *timeline*.  Iterate ``sorted(...)`` views instead.
    """

    code = "REPRO105"
    name = "unordered-scheduling"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in _walk_runtime(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            what = _unordered_iterable(node.iter)
            if what is None:
                continue
            for inner in ast.walk(node):
                if (isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Attribute)
                        and inner.func.attr in SCHEDULING_SINKS):
                    yield ctx.diag(self.code, (
                        f"iteration over {what} feeds event scheduling "
                        f"(.{inner.func.attr}(...) in the loop body); "
                        "iterate a sorted(...) view so the event order is "
                        "deterministic"), node)
                    break


def _is_event_time(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute) and node.attr == "now":
        return ast.unparse(node)
    if isinstance(node, ast.Name) and node.id == "now":
        return "now"
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
            and node.func.attr == "peek"):
        return ast.unparse(node.func) + "()"
    return None


@rule
class FloatTimeEqualityRule(Rule):
    """REPRO106: ``==`` / ``!=`` against simulated event times.

    Event times are accumulated floats; exact equality silently becomes
    false after any arithmetic reordering.  Compare with ordering
    (``<=``) or an explicit tolerance.
    """

    code = "REPRO106"
    name = "float-time-equality"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in _walk_runtime(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            for operand in [node.left, *node.comparators]:
                what = _is_event_time(operand)
                if what is not None:
                    yield ctx.diag(self.code, (
                        f"float equality against event time `{what}`; "
                        "compare with ordering or an explicit tolerance"),
                        node)
                    break
