"""P-series rules (``REPRO20x``): wire protocol vs. variable registry.

The probe, the records module and the requirement language each carry a
copy of the same facts — the 22 server-side variable names, the record
byte accounting, the NAK diagnostic wire fields, the message-type
constants.  These rules cross-check the copies *statically*: constants
and field lists are read out of the checked file's AST and compared
against the authoritative live registries
(:mod:`repro.lang.variables`, :class:`repro.lang.diagnostics.Diagnostic`)
at analysis time, so a drifted edit fails ``repro check`` before it can
ship skewed wire data.

Each rule is shape-triggered: it only fires in files that define the
relevant names (``MSG_*``/``REPLY_*``, ``class WireDiagnostic``, the
probe's ``values = {...}`` report dict, ``SERVER_RECORD_BYTES``), so the
whole tree can be scanned without path configuration.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterable, Iterator

from ..lang.diagnostics import Diagnostic
from ..lang.variables import SERVER_SIDE_VARS
from .engine import FileContext, Rule, rule

__all__ = ["RECORD_HEADER_BYTES", "record_bytes_floor"]

#: bytes of the server-record struct not holding variable values: the
#: host/addr/group identity strings of :class:`ServerStatusReport`
RECORD_HEADER_BYTES = 24


def record_bytes_floor() -> int:
    """Smallest credible ``SERVER_RECORD_BYTES``: one 8-byte double per
    registered server-side variable plus the identity header."""
    return 8 * len(SERVER_SIDE_VARS) + RECORD_HEADER_BYTES


def _module_int_constants(tree: ast.Module) -> Iterator[tuple[str, int, ast.Assign]]:
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if isinstance(node.value, ast.Constant) and isinstance(
                node.value.value, int) and not isinstance(node.value.value, bool):
            yield target.id, node.value.value, node


@rule
class MessageConstantsRule(Rule):
    """REPRO201: ``MSG_*`` type tags must be unique and positive, and the
    ``REPLY_OK`` / ``REPLY_NAK`` status bytes must differ — two message
    kinds sharing a tag silently cross wires at dispatch."""

    code = "REPRO201"
    name = "wire-constants"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        msgs: dict[int, str] = {}
        replies: dict[str, tuple[int, ast.Assign]] = {}
        for name, value, node in _module_int_constants(ctx.tree):
            if name.startswith("MSG_"):
                if value <= 0:
                    yield ctx.diag(self.code, (
                        f"{name} = {value}: message type tags must be "
                        "positive (0 is the unset/invalid tag)"), node)
                elif value in msgs:
                    yield ctx.diag(self.code, (
                        f"{name} = {value} collides with {msgs[value]}; "
                        "every wire message type needs a distinct tag"), node)
                else:
                    msgs[value] = name
            elif name.startswith("REPLY_"):
                replies[name] = (value, node)
        if "REPLY_OK" in replies and "REPLY_NAK" in replies:
            ok, _ = replies["REPLY_OK"]
            nak, node = replies["REPLY_NAK"]
            if ok == nak:
                yield ctx.diag(self.code, (
                    f"REPLY_NAK = {nak} equals REPLY_OK; a NAK would be "
                    "indistinguishable from success on the wire"), node)


def _class_ann_fields(cls: ast.ClassDef) -> list[str]:
    out = []
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            out.append(node.target.id)
    return out


@rule
class WireDiagnosticFieldsRule(Rule):
    """REPRO202: the NAK wire form must mirror the analyzer diagnostic.

    ``WireDiagnostic`` re-encodes :class:`repro.lang.diagnostics.Diagnostic`
    for wizard NAK replies; a missing/extra/reordered field drops
    analyzer findings (or garbage) on the wire.
    """

    code = "REPRO202"
    name = "wire-diagnostic-fields"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        expected = tuple(f.name for f in dataclasses.fields(Diagnostic))
        for node in ctx.tree.body:
            if not (isinstance(node, ast.ClassDef)
                    and node.name == "WireDiagnostic"):
                continue
            got = tuple(_class_ann_fields(node))
            if got != expected:
                missing = [f for f in expected if f not in got]
                extra = [f for f in got if f not in expected]
                detail = []
                if missing:
                    detail.append(f"missing {missing}")
                if extra:
                    detail.append(f"extra {extra}")
                if not detail:
                    detail.append(f"order {list(got)} != {list(expected)}")
                yield ctx.diag(self.code, (
                    "WireDiagnostic fields drifted from "
                    f"repro.lang.diagnostics.Diagnostic: {'; '.join(detail)}"),
                    node)


def _report_dicts(tree: ast.Module) -> Iterator[tuple[tuple[str, ...], ast.AST]]:
    """``values = {...}`` dict literals whose keys look like probe keys."""
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Name) and target.id == "values"):
            continue
        if not isinstance(node.value, ast.Dict):
            continue
        keys = []
        for key in node.value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.append(key.value)
            else:
                break
        else:
            if keys and sum(k.startswith("host_") for k in keys) >= len(keys) // 2:
                yield tuple(keys), node


@rule
class ProbeKeyRegistryRule(Rule):
    """REPRO203: the probe's emitted report keys must match the 22
    server-side variables the requirement language defines — a key the
    language does not know is dead weight on every report, and a missing
    key makes every requirement on it statically false."""

    code = "REPRO203"
    name = "probe-key-registry"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        registry = set(SERVER_SIDE_VARS)
        for keys, node in _report_dicts(ctx.tree):
            missing = sorted(registry - set(keys))
            extra = sorted(set(keys) - registry)
            detail = []
            if missing:
                detail.append(f"missing {missing}")
            if extra:
                detail.append(f"unknown {extra}")
            if detail:
                yield ctx.diag(self.code, (
                    "probe report keys drifted from "
                    "lang.variables.SERVER_SIDE_VARS: "
                    f"{'; '.join(detail)}"), node)


@rule
class RecordBytesRule(Rule):
    """REPRO204: ``SERVER_RECORD_BYTES`` must still fit the registry.

    The transmitter accounts ``SERVER_RECORD_BYTES`` per server when
    sizing binary DB transfers; if the variable registry grows past what
    the record can hold, every timing figure built on it goes quietly
    wrong.
    """

    code = "REPRO204"
    name = "record-byte-accounting"

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        floor = record_bytes_floor()
        for name, value, node in _module_int_constants(ctx.tree):
            if name == "SERVER_RECORD_BYTES" and value < floor:
                yield ctx.diag(self.code, (
                    f"SERVER_RECORD_BYTES = {value} cannot hold the "
                    f"{len(SERVER_SIDE_VARS)} registered server-side "
                    f"variables (8 bytes each + {RECORD_HEADER_BYTES}-byte "
                    f"identity header = {floor})"), node)
