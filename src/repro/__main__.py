"""Command-line front end: regenerate any thesis table/figure, lint a
requirement file, or static-check the codebase itself.

Usage::

    python -m repro list                 # what can I run?
    python -m repro fig3.3               # RTT knee, MTU 1500
    python -m repro tab5.3               # matmul 2v2
    python -m repro tab5.9               # massd 3v3
    python -m repro all                  # everything (minutes)

    python -m repro lint req.txt         # static-analyze a requirement file
    echo 'host_cpu_free > 2' | python -m repro lint -
    repro-lint req.txt                   # installed entry point

    python -m repro check src            # determinism/protocol analyzer
    repro-check --list-rules             # installed entry point
    python -m repro check --sanitize matmul          # race detector, smoke world
    python -m repro check --sanitize scenario.py     # ... on a run(sim) file
    python -m repro check --perf src                 # hot-path perf lints
    python -m repro check --proto src                # typestate/protocol
    python -m repro check --all src                  # every static gate

    python -m repro profile matmul       # deterministic event profiler
    python -m repro profile matmul --json p.json     # ... keep the JSON
    python -m repro profile scenario.py              # ... on a run(sim) file

    python -m repro explore                          # chaos search, all scenarios
    python -m repro explore --budget 50 --seed 7 --scenario matmul
    python -m repro explore --mutant drop-checkpoint # prove the search finds a seeded bug
    python -m repro explore --replay tests/faults/corpus/CE-matmul-cdf344a542.json
    python -m repro explore --corpus tests/faults/corpus   # CI corpus gate

Lint/check exit codes: 0 clean (warnings allowed), 1 diagnostics at
error severity (or any finding with ``--strict``; for ``--sanitize``,
any detected race), 2 usage/IO problems.  ``profile`` exits 0 on a
completed run, 2 on usage/IO problems.  ``explore`` exits 0 on a clean
search (or a fully-passing replay/corpus check), 1 when a violation was
found (or a replay failed), 2 on usage/IO problems.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from .bench import (
    bandwidth_probe_table,
    format_table,
    knee_slopes,
    massd_experiment,
    matmul_experiment,
    matrix_benchmark,
    resource_usage,
    rtt_vs_size,
    series_to_text,
    shaper_calibration,
    six_paths,
)


def _rtt(mtu: int) -> str:
    series = rtt_vs_size(mtu=mtu, sizes=range(1, 6001, 25))
    below, above = knee_slopes(series, mtu)
    return series_to_text(
        [(s, round(t * 1e6, 1)) for s, t in series], "payload_B", "rtt_us",
        title=(f"RTT vs UDP payload (MTU={mtu}): slope below knee "
               f"{below*1e9:.1f} ns/B, above {above*1e9:.1f} ns/B"),
    )


def _six_paths() -> str:
    results = six_paths()
    blocks = []
    for index, series in sorted(results.items()):
        blocks.append(series_to_text(
            [(s, round(t * 1e3, 3)) for s, t in series],
            "payload_B", "rtt_ms", max_points=8, title=f"path {index}",
        ))
    return "\n\n".join(blocks)


def _bw_table() -> str:
    rows, extra = bandwidth_probe_table()
    body = format_table(
        ["Packet Size(Bytes)", "Min Bw(Mbps)", "Max Bw", "Avg Bw"],
        [(r.label, r.min_mbps, r.max_mbps, r.avg_mbps) for r in rows],
        title="Bandwidth Measurements using various Packet Size (Table 3.3)",
    )
    body += f"\npipechar: {extra['pipechar_mbps']:.1f} Mbps"
    lo, hi = extra["pathload_mbps"]
    body += f"\npathload: {lo:.1f}~{hi:.1f} Mbps"
    return body


def _resources() -> str:
    rows = resource_usage()
    return format_table(
        ["Program", "CPU", "Memory", "Net bandwidth"],
        [(r.component, f"{r.cpu_pct:.2f}%", f"{r.mem_kb:.0f} KB",
          f"{r.net_kbps:.2f} KBps({r.transport})") for r in rows],
        title="System Resource used with 11 Probes Running (Table 5.2)",
    )


def _fig5_2() -> str:
    return format_table(
        ["host", "benchmark_s"],
        [(n, round(t, 2)) for n, t in matrix_benchmark()],
        title="Matrix Benchmarking Results (Fig 5.2)",
    )


def _matmul(n_servers, blk, requirement, random_servers, loaded=(), pool=None, title=""):
    def run() -> str:
        kwargs = dict(n_servers=n_servers, blk=blk, requirement=requirement,
                      random_servers=random_servers, loaded_hosts=loaded)
        if loaded:
            kwargs["warmup"] = 90.0
        if pool is not None:
            kwargs["pool"] = pool
        arms = matmul_experiment(**kwargs)
        return format_table(
            ["arm", "servers", "time_s"],
            [(a.label, ", ".join(a.servers), round(a.elapsed, 2)) for a in arms],
            title=title,
        )

    return run


def _shaper() -> str:
    return format_table(
        ["rshaper set (KB/s)", "massd measured (KB/s)"],
        [(s, round(m, 1)) for s, m in shaper_calibration()],
        title="Benchmark for rshaper and massd (Fig 5.3)",
    )


def _massd(g1, g2, requirement, n, random_sets, title):
    def run() -> str:
        arms = massd_experiment(group1_mbps=g1, group2_mbps=g2,
                                requirement=requirement, n_servers=n,
                                random_sets=random_sets)
        return format_table(
            ["arm", "servers", "throughput KB/s"],
            [(a.label, ", ".join(a.servers), round(a.throughput_kbps, 1))
             for a in arms],
            title=title,
        )

    return run


EXPERIMENTS: dict[str, Callable[[], str]] = {
    "fig3.3": lambda: _rtt(1500),
    "fig3.4": lambda: _rtt(1000),
    "fig3.5": lambda: _rtt(500),
    "fig3.6": _six_paths,
    "tab3.3": _bw_table,
    "tab5.2": _resources,
    "fig5.2": _fig5_2,
    "tab5.3": _matmul(
        2, 600,
        "(host_cpu_bogomips > 4000) && (host_cpu_free > 0.9) && (host_memory_free > 5)",
        ("lhost", "phoebe"), title="matmul 2 vs 2 (Table 5.3)"),
    "tab5.4": _matmul(
        4, 200,
        "((host_cpu_bogomips > 4000) || (host_cpu_bogomips < 2000)) && "
        "(host_cpu_free > 0.9) && (host_memory_free > 5)",
        ("phoebe", "pandora-x", "calypso", "telesto"),
        title="matmul 4 vs 4 (Table 5.4)"),
    "tab5.5": _matmul(
        6, 200,
        "(host_cpu_free > 0.9) && (host_memory_free > 5) && "
        "(user_denied_host1 = telesto) && (user_denied_host2 = mimas) && "
        "(user_denied_host3 = phoebe) && (user_denied_host4 = calypso) && "
        "(user_denied_host5 = titan-x)",
        ("phoebe", "pandora-x", "calypso", "telesto", "helene", "lhost"),
        title="matmul 6 vs 6, blacklist (Table 5.5)"),
    "tab5.6": _matmul(
        4, 200,
        "(host_cpu_free > 0.9) && (host_memory_free > 5) && (host_system_load1 < 0.5)",
        ("mimas", "helene", "calypso", "telesto"),
        loaded=("helene", "telesto", "mimas"),
        pool=("mimas", "telesto", "helene", "phoebe", "calypso", "titan-x",
              "pandora-x"),
        title="matmul 4 vs 4 with SuperPI workload (Table 5.6)"),
    "fig5.3": _shaper,
    "tab5.7": _massd(6.72, 1.33, "monitor_network_bw > 6", 1,
                     [("pandora-x",)], "massd 1 vs 1 (Table 5.7)"),
    "tab5.8": _massd(5.01, 7.67, "monitor_network_bw > 7", 2,
                     [("mimas", "telesto"), ("telesto", "titan-x")],
                     "massd 2 vs 2 (Table 5.8)"),
    "tab5.9": _massd(5.99, 2.92, "monitor_network_bw > 5", 3,
                     [("dione", "titan-x", "pandora-x"),
                      ("mimas", "titan-x", "dione"),
                      ("telesto", "mimas", "dione")],
                     "massd 3 vs 3 (Table 5.9)"),
}


def lint_main(argv: list[str] | None = None) -> int:
    """``python -m repro lint <file|->`` — the repro-lint front end."""
    from .lang import analyze
    from .lang.errors import LangError

    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Statically analyze a requirement file: typed "
                    "diagnostics (REQxxx), satisfiability pre-flight, "
                    "did-you-mean suggestions.",
    )
    parser.add_argument("path", help="requirement file, or '-' for stdin")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as errors")
    args = parser.parse_args(argv)

    if args.path == "-":
        filename = "<stdin>"
        source = sys.stdin.read()
    else:
        filename = args.path
        try:
            with open(args.path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            print(f"repro-lint: cannot read {args.path}: {exc}",
                  file=sys.stderr)
            return 2

    try:
        result = analyze(source, recover=True)
    except LangError as exc:
        print(f"{filename}:{exc.line}:{exc.col}: error PARSE: {exc.message}")
        return 1

    findings = 0
    errors = 0
    for perr in result.parse_errors:
        print(f"{filename}:{perr.line}:{perr.col}: error PARSE: {perr.message}")
        findings += 1
        errors += 1
    for diag in result.diagnostics:
        print(diag.render(filename))
        findings += 1
        errors += diag.is_error
    if result.unsatisfiable:
        print(f"{filename}: requirement is statically unsatisfiable — "
              f"the wizard would NAK it without scanning any server")
    if findings == 0:
        n_logical = len(result.statement_truths)
        print(f"{filename}: clean ({n_logical} logical statement(s), "
              f"{len(result.program.statements)} total)")
    if errors or (args.strict and findings):
        return 1
    return 0


def profile_cli(argv: list[str] | None = None) -> int:
    """``python -m repro profile <scenario>`` — the event profiler."""
    from .analysis.profiler import profile_main

    parser = argparse.ArgumentParser(
        prog="repro-profile",
        description="Run a scenario (matmul, massd, or a path to a "
                    "run(sim) file) under the deterministic event "
                    "profiler: per-process resume/allocation attribution, "
                    "a flamegraph-style text tree, and optional JSON for "
                    "`repro check --perf --profile`.",
    )
    parser.add_argument("scenario",
                        help="matmul, massd, or a run(sim) scenario file")
    parser.add_argument("--json", metavar="PATH",
                        help="write the profile (attribution + wall "
                             "metrics) as JSON to PATH")
    args = parser.parse_args(argv)
    return profile_main(args.scenario, json_path=args.json)


def explore_cli(argv: list[str] | None = None) -> int:
    """``python -m repro explore`` — the chaos explorer front end."""
    import json as _json

    from .faults.explore import (
        corpus_check,
        explore,
        load_corpus,
        replay_counterexample,
        write_counterexample,
        Counterexample,
    )
    from .faults.scenarios import MUTANTS, SCENARIOS

    parser = argparse.ArgumentParser(
        prog="repro-explore",
        description="Property-based fault-space search: generate random "
                    "fault plans against the scenario matrix, check "
                    "invariant oracles (bit-exact results, block "
                    "accounting, lease ownership, telemetry consistency, "
                    "liveness deadlines), shrink any violation to a "
                    "minimal replayable counterexample.",
        epilog="examples:\n"
               "  repro explore --budget 200 --seed 0\n"
               "  repro explore --scenario matmul --scenario ha --budget 50\n"
               "  repro explore --mutant drop-checkpoint --out tests/faults/corpus\n"
               "  repro explore --replay tests/faults/corpus/CE-matmul-cdf344a542.json\n"
               "  repro explore --corpus tests/faults/corpus\n",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--budget", type=int, default=200,
                        help="max trials to run (default 200)")
    parser.add_argument("--seed", type=int, default=0,
                        help="search seed; every trial plan derives from it")
    parser.add_argument("--scenario", action="append", default=None,
                        choices=sorted(SCENARIOS),
                        help="restrict to a scenario (repeatable; "
                             "default: all, interleaved)")
    parser.add_argument("--mutant", default="",
                        choices=sorted(MUTANTS),
                        help="run against a seeded known-bug build")
    parser.add_argument("--workers", type=int, default=1,
                        help="parallel trial processes (default 1; the "
                             "found counterexample is identical either way)")
    parser.add_argument("--world-seed", type=int, default=0,
                        help="world/topology seed (default 0)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="emit the raw violating plan without ddmin")
    parser.add_argument("--out", metavar="DIR",
                        help="write the counterexample JSON into DIR")
    parser.add_argument("--json", metavar="PATH",
                        help="write the full search report as JSON")
    parser.add_argument("--replay", metavar="CE.json",
                        help="replay one counterexample twice, assert "
                             "byte-stable trace + verdicts")
    parser.add_argument("--corpus", metavar="DIR", nargs="?",
                        const="tests/faults/corpus",
                        help="replay every CE-*.json in DIR (default "
                             "tests/faults/corpus): each must reproduce "
                             "under its recorded mutant and pass clean "
                             "on the healthy build")
    args = parser.parse_args(argv)

    if args.replay:
        try:
            with open(args.replay) as fh:
                ce = Counterexample.from_dict(_json.load(fh))
        except (OSError, ValueError, TypeError) as exc:
            print(f"repro-explore: cannot load {args.replay}: {exc}",
                  file=sys.stderr)
            return 2
        rep = replay_counterexample(ce)
        verdicts = rep["runs"][0]["verdicts"]
        print(f"{ce.name}: mutant={ce.mutant or '(none)'} "
              f"stable={rep['stable']} reproduced={rep['reproduced']}")
        print(f"  trace={rep['runs'][0]['trace']} "
              f"verdicts={verdicts if verdicts else '(clean)'}")
        return 0 if (rep["stable"] and rep["reproduced"]) else 1

    if args.corpus:
        entries = corpus_check(args.corpus, progress=print)
        if not entries:
            if not load_corpus(args.corpus):
                print(f"repro-explore: no CE-*.json under {args.corpus}",
                      file=sys.stderr)
                return 2
        bad = [e for e in entries if not e["ok"]]
        print(f"corpus: {len(entries) - len(bad)}/{len(entries)} ok")
        return 1 if bad else 0

    report = explore(
        budget=args.budget, seed=args.seed, scenarios=args.scenario,
        mutant=args.mutant, world_seed=args.world_seed,
        workers=max(1, args.workers), shrink=not args.no_shrink,
        progress=print,
    )
    for name in report.scenarios:
        cov = report.coverage[name]
        print(f"coverage[{name}]: {cov['cells']}/{cov['total']} "
              "kind x phase cells")
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    if not report.found:
        print(f"clean: {report.trials_run} trials, no invariant violation")
        return 0
    ce = report.counterexample
    print(f"FOUND {ce.fingerprint} (scenario {ce.scenario}, trial {ce.trial})")
    print(f"  {ce.detail}")
    print(f"  plan: {len(ce.plan['events'])} event(s) after shrinking "
          f"({report.shrink['original_events']} found)")
    if args.out:
        path = write_counterexample(ce, args.out)
        print(f"  wrote {path}")
    return 1


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        return lint_main(argv[1:])
    if argv and argv[0] == "check":
        from .analysis.cli import check_main
        return check_main(argv[1:])
    if argv and argv[0] == "profile":
        return profile_cli(argv[1:])
    if argv and argv[0] == "explore":
        return explore_cli(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures of 'A Smart TCP Socket for "
                    "Distributed Computing' (ICPP 2005). Use "
                    "'python -m repro lint <file|->' to static-analyze a "
                    "requirement file, 'python -m repro check <paths>' to "
                    "static-check the codebase for determinism/protocol/"
                    "concurrency violations ('--sanitize' runs the dynamic "
                    "race detector, '--perf' the hot-path analyzer, "
                    "'--proto' the typestate/protocol analyzer, "
                    "'--all' every static gate), 'python -m repro "
                    "profile <scenario>' to measure event attribution "
                    "under the deterministic profiler, and 'python -m "
                    "repro explore' to search the fault-plan space for "
                    "invariant violations.",
    )
    parser.add_argument("experiment",
                        help="experiment id (see 'list'), 'list'/'all', "
                             "'lint <file|->', 'check <paths>', "
                             "'profile <scenario>', or 'explore [...]'")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'list'", file=sys.stderr)
        return 2
    for name in names:
        # perf_counter, not time.time(): monotonic, immune to NTP steps,
        # and the D-series wall-clock rule scopes the CLI allowance here
        t0 = time.perf_counter()
        print(f"=== {name} " + "=" * (60 - len(name)))
        print(EXPERIMENTS[name]())
        print(f"--- done in {time.perf_counter() - t0:.1f}s wall\n")
    return 0


def lint_entry() -> None:
    """Console-script entry point for ``repro-lint``."""
    raise SystemExit(lint_main())


if __name__ == "__main__":
    raise SystemExit(main())
