"""Errors raised by the requirement meta-language pipeline."""

from __future__ import annotations

__all__ = ["LangError", "LexError", "ParseError", "EvalError"]


class LangError(Exception):
    """Base class; carries source position when known."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.message = message
        self.line = line
        self.col = col
        where = f" at line {line}" if line else ""
        where += f", col {col}" if col else ""
        super().__init__(f"{message}{where}")


class LexError(LangError):
    """Unrecognised character sequence in the requirement text."""


class ParseError(LangError):
    """Token stream does not match the grammar."""


class EvalError(LangError):
    """Runtime failure (division by zero, type mismatch, ...).

    Mirrors hoc's ``execerror``; the wizard treats a requirement whose
    evaluation errors as *not satisfied* for that server and records the
    message for diagnostics.
    """
