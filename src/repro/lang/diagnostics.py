"""Typed diagnostics for the requirement-language static analyzer.

Every problem the analyzer can report has a stable code so clients, the
wizard's NAK replies and golden-file tests can match on it:

===========  ========  =====================================================
code         severity  meaning
===========  ========  =====================================================
``REQ001``   warning   undefined variable (reads as undefined/string at
                       runtime; a logical statement using it is false)
``REQ002``   error     misspelled predefined variable (did-you-mean)
``REQ003``   error     unknown function
``REQ004``   error     wrong argument count for a builtin function
``REQ005``   error     assignment to a read-only predefined variable or
                       builtin constant
``REQ006``   error     type mismatch (arithmetic/ordering on an
                       address/hostname string)
``REQ007``   warning   statement has no effect (non-logical, no assignment)
``REQ008``   error     constant expression faults (division by zero, math
                       domain error)
``REQ101``   error     logical statement is always false (unsatisfiable)
``REQ102``   error     ``&&`` branch is always false, making the whole
                       conjunction unsatisfiable
``REQ201``   warning   logical statement is always true (vacuous)
``REQ202``   warning   dead ``||`` branch (always false, never selected)
``REQ203``   warning   redundant ``&&`` branch (always true)
``REQ204``   warning   unit suspicion: comparing an MB-unit variable against
                       a byte-sized constant (thesis MB-vs-bytes quirk)
===========  ========  =====================================================

``REQ0xx`` come from the semantic pass, ``REQ1xx`` are satisfiability
errors and ``REQ2xx`` are satisfiability warnings (see
:mod:`repro.lang.analysis`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Severity",
    "Diagnostic",
    "DIAGNOSTIC_CODES",
    "format_diagnostic",
    "register_codes",
    "code_info",
]


class Severity:
    ERROR = "error"
    WARNING = "warning"


#: code -> (default severity, short title) — the authoritative table
DIAGNOSTIC_CODES: dict[str, tuple[str, str]] = {
    "REQ001": (Severity.WARNING, "undefined variable"),
    "REQ002": (Severity.ERROR, "misspelled predefined variable"),
    "REQ003": (Severity.ERROR, "unknown function"),
    "REQ004": (Severity.ERROR, "wrong argument count"),
    "REQ005": (Severity.ERROR, "assignment to read-only variable"),
    "REQ006": (Severity.ERROR, "type mismatch"),
    "REQ007": (Severity.WARNING, "statement has no effect"),
    "REQ008": (Severity.ERROR, "constant expression faults"),
    "REQ101": (Severity.ERROR, "statement always false"),
    "REQ102": (Severity.ERROR, "conjunction branch always false"),
    "REQ201": (Severity.WARNING, "statement always true"),
    "REQ202": (Severity.WARNING, "dead || branch"),
    "REQ203": (Severity.WARNING, "redundant && branch"),
    "REQ204": (Severity.WARNING, "unit suspicion (MB vs bytes)"),
}


#: codes contributed by other analyzers (e.g. the ``REPROxxx`` codebase
#: rules of :mod:`repro.analysis`) — same shape as :data:`DIAGNOSTIC_CODES`
_EXTRA_CODES: dict[str, tuple[str, str]] = {}


def register_codes(table: dict[str, tuple[str, str]]) -> None:
    """Register an extra ``code -> (severity, title)`` table.

    Lets sibling analyzers (the codebase determinism/protocol checker)
    reuse :class:`Diagnostic` — spans, rendering, golden-file tooling —
    without widening the requirement-language ``REQxxx`` namespace.
    Re-registering an identical entry is a no-op; conflicts raise.
    """
    for code, entry in table.items():
        existing = DIAGNOSTIC_CODES.get(code) or _EXTRA_CODES.get(code)
        if existing is not None and existing != entry:
            raise ValueError(f"diagnostic code {code!r} already registered")
        if code not in DIAGNOSTIC_CODES:
            _EXTRA_CODES[code] = entry


def code_info(code: str) -> tuple[str, str] | None:
    """``(default severity, title)`` for any registered code, else None."""
    return DIAGNOSTIC_CODES.get(code) or _EXTRA_CODES.get(code)


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, anchored to a source span."""

    code: str
    severity: str
    message: str
    line: int = 0
    col: int = 0

    def __post_init__(self) -> None:
        if code_info(self.code) is None:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if self.severity not in (Severity.ERROR, Severity.WARNING):
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def is_error(self) -> bool:
        return self.severity == Severity.ERROR

    def render(self, filename: str = "<requirement>") -> str:
        """``file:line:col: severity CODE: message`` (ruff/gcc style)."""
        return (f"{filename}:{self.line}:{self.col}: "
                f"{self.severity} {self.code}: {self.message}")


def format_diagnostic(diag: Diagnostic, filename: str = "<requirement>") -> str:
    return diag.render(filename)


def make(code: str, message: str, line: int = 0, col: int = 0) -> Diagnostic:
    """Build a diagnostic with the code's default severity."""
    info = code_info(code)
    if info is None:
        raise KeyError(f"unknown diagnostic code {code!r}")
    severity, _ = info
    return Diagnostic(code=code, severity=severity, message=message,
                      line=line, col=col)
