"""Built-in math functions and constants (thesis Appendix B.3/B.4).

The thesis inherits hoc's function table: ``exp``, ``sin``, ``cos``,
``log10`` and friends, plus named constants, "which can be used to give
complicated requirement specifications if necessary".
"""

from __future__ import annotations

import math
from typing import Callable

from .errors import EvalError

__all__ = ["BUILTINS", "CONSTANTS", "call_builtin"]


def _checked(name: str, fn: Callable[..., float]) -> Callable[..., float]:
    def wrapper(*args: float) -> float:
        try:
            result = fn(*args)
        except (ValueError, OverflowError, ZeroDivisionError) as exc:
            raise EvalError(f"{name}: {exc}") from exc
        if isinstance(result, complex) or math.isnan(result):
            raise EvalError(f"{name}: domain error for arguments {args}")
        return float(result)

    return wrapper


#: function name -> (arity, callable)
BUILTINS: dict[str, tuple[int, Callable[..., float]]] = {
    "sin": (1, _checked("sin", math.sin)),
    "cos": (1, _checked("cos", math.cos)),
    "tan": (1, _checked("tan", math.tan)),
    "atan": (1, _checked("atan", math.atan)),
    "asin": (1, _checked("asin", math.asin)),
    "acos": (1, _checked("acos", math.acos)),
    "exp": (1, _checked("exp", math.exp)),
    "ln": (1, _checked("ln", math.log)),
    "log": (1, _checked("log", math.log)),        # hoc's log is natural log
    "log10": (1, _checked("log10", math.log10)),
    "sqrt": (1, _checked("sqrt", math.sqrt)),
    "int": (1, _checked("int", lambda x: float(int(x)))),
    "abs": (1, _checked("abs", abs)),
    "floor": (1, _checked("floor", math.floor)),
    "ceil": (1, _checked("ceil", math.ceil)),
    # 2-argument extensions
    "pow": (2, _checked("pow", math.pow)),
    "atan2": (2, _checked("atan2", math.atan2)),
    "min": (2, _checked("min", min)),
    "max": (2, _checked("max", max)),
}

#: named constants, hoc-style
CONSTANTS: dict[str, float] = {
    "PI": math.pi,
    "E": math.e,
    "GAMMA": 0.57721566490153286,  # Euler
    "DEG": 57.29577951308232,      # degrees per radian
    "PHI": 1.61803398874989484,    # golden ratio
}


def call_builtin(name: str, args: list[float], line: int = 0,
                 col: int = 0) -> float:
    entry = BUILTINS.get(name)
    if entry is None:
        raise EvalError(f"unknown function {name!r}", line=line, col=col)
    arity, fn = entry
    if len(args) != arity:
        raise EvalError(
            f"{name} expects {arity} argument(s), got {len(args)}",
            line=line, col=col,
        )
    try:
        return fn(*args)
    except EvalError as exc:
        if not exc.line and line:
            # the _checked wrappers cannot know source positions: re-raise
            # with the call site's span so diagnostics stay clickable
            raise EvalError(exc.message, line=line, col=col) from exc
        raise
