"""Static analysis for requirement programs: semantics + satisfiability.

The pipeline runs between :func:`repro.lang.parse` and
:func:`repro.lang.evaluate` and produces three artefacts:

1. **Typed diagnostics** (:mod:`repro.lang.diagnostics`): undefined and
   misspelled variables (with did-you-mean against the 22 server-side +
   10 user-side registry), builtin arity errors, assignments to read-only
   predefined variables, and string/number type mismatches.
2. **Satisfiability verdicts** from interval analysis: every predefined
   variable has a known range (fractions in [0, 1], non-negative rates,
   the MB-vs-bytes ``host_memory_free`` quirk), constants fold, and the
   resulting intervals propagate through arithmetic, comparisons and
   ``&&``/``||`` so the analyzer can prove a statement *always false*
   (``REQ1xx`` errors — the wizard NAKs these without scanning the
   status DB) or *always true* / dead-branched (``REQ2xx`` warnings).
3. A **constant-folded program** that evaluates to the same results as
   the original but with every pure-constant subtree collapsed to a
   literal — what the wizard's compile cache stores and evaluates.

Soundness notes (what a verdict does and does not promise):

* *always false* is sound w.r.t. the evaluator: if the variable is
  present its range excludes the comparison, and if it is absent the
  statement is false anyway (undefined-in-logical = false, thesis rule).
* *always true* is a warning only — a registry variable can still be
  missing at runtime (e.g. ``monitor_network_bw`` with no probe data),
  which makes the statement false.  The wizard never skips evaluation
  based on an always-true verdict.
* bare unknown identifiers are *warnings*, not errors: the §6 string
  attributes (``host_machine_type == i386``) and the hostname idiom on
  assignment right-hand sides (``user_denied_host1 = telesto``,
  ``... = titan-x``) read undefined names as strings by design.
"""

from __future__ import annotations

import difflib
import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Union

from .builtins import BUILTINS, CONSTANTS
from .diagnostics import Diagnostic, make
from .errors import EvalError, LangError, ParseError
from .nodes import (
    Addr,
    Assign,
    BinOp,
    Call,
    Compare,
    Logic,
    Neg,
    Node,
    Paren,
    Program,
    Num,
    Var,
    is_logical,
)
from .parser import parse
from .variables import (
    ALL_PREDEFINED,
    DERIVED_VARS,
    MONITOR_VARS,
    SERVER_SIDE_VARS,
    USER_SIDE_VARS,
)

__all__ = [
    "AbstractValue",
    "AnalysisResult",
    "CompiledRequirement",
    "CompileCache",
    "VAR_INTERVALS",
    "MB_UNIT_VARS",
    "analyze",
    "compile_requirement",
    "TRUE",
    "FALSE",
    "UNKNOWN",
]

INF = math.inf

#: tri-state truth lattice for logical expressions
TRUE, FALSE, UNKNOWN = "true", "false", "unknown"

_FRACTION = (0.0, 1.0)
_NONNEG = (0.0, INF)

#: known value ranges of the predefined variables (units documented in
#: :mod:`repro.lang.variables`)
VAR_INTERVALS: dict[str, tuple[float, float]] = {
    "host_system_load1": _NONNEG,
    "host_system_load5": _NONNEG,
    "host_system_load15": _NONNEG,
    "host_cpu_user": _FRACTION,
    "host_cpu_nice": _FRACTION,
    "host_cpu_system": _FRACTION,
    "host_cpu_idle": _FRACTION,
    "host_cpu_free": _FRACTION,
    "host_cpu_bogomips": _NONNEG,
    "host_memory_total": _NONNEG,
    "host_memory_used": _NONNEG,
    "host_memory_free": _NONNEG,
    "host_disk_allreq": _NONNEG,
    "host_disk_rreq": _NONNEG,
    "host_disk_rblocks": _NONNEG,
    "host_disk_wreq": _NONNEG,
    "host_disk_wblocks": _NONNEG,
    "host_network_rbytesps": _NONNEG,
    "host_network_rpacketsps": _NONNEG,
    "host_network_tbytesps": _NONNEG,
    "host_network_tpacketsps": _NONNEG,
    "host_security_level": _NONNEG,
    "monitor_network_delay": _NONNEG,
    "monitor_network_bw": _NONNEG,
    "host_status_age": _NONNEG,
}

#: variables measured in MB (the thesis quirk) — comparing them against a
#: byte-sized constant gets a REQ204 unit-suspicion warning
MB_UNIT_VARS = frozenset({"host_memory_free"})

_READ_ONLY = (frozenset(SERVER_SIDE_VARS) | frozenset(MONITOR_VARS)
              | frozenset(DERIVED_VARS) | frozenset(CONSTANTS))

#: output ranges of non-constant builtin calls
_BUILTIN_RANGES: dict[str, tuple[float, float]] = {
    "sin": (-1.0, 1.0),
    "cos": (-1.0, 1.0),
    "atan": (-math.pi / 2, math.pi / 2),
    "asin": (-math.pi / 2, math.pi / 2),
    "acos": (0.0, math.pi),
    "exp": (0.0, INF),
    "sqrt": (0.0, INF),
    "abs": (0.0, INF),
}

_MIB = 1024.0 * 1024.0


# ---------------------------------------------------------------------------
# abstract values + interval arithmetic
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AbstractValue:
    """What the analyzer knows about one expression's runtime value."""

    lo: float = -INF
    hi: float = INF
    kind: str = "num"            # "num" | "str" | "any"
    const: Union[float, str, None] = None  # exact value when fully known

    @staticmethod
    def number(value: float) -> "AbstractValue":
        return AbstractValue(lo=value, hi=value, kind="num", const=value)

    @staticmethod
    def string(value: str) -> "AbstractValue":
        return AbstractValue(kind="str", const=value)

    @staticmethod
    def interval(lo: float, hi: float) -> "AbstractValue":
        return AbstractValue(lo=lo, hi=hi, kind="num")

    @staticmethod
    def top() -> "AbstractValue":
        return AbstractValue(kind="any")

    @property
    def is_const_num(self) -> bool:
        return self.kind == "num" and isinstance(self.const, float)

    @property
    def is_str(self) -> bool:
        return self.kind == "str"

    def truth(self) -> str:
        """Tri-state truthiness (the evaluator's ``_truthy``)."""
        if self.const is not None:
            if isinstance(self.const, str):
                return TRUE if self.const else FALSE
            return TRUE if self.const != 0.0 else FALSE
        if self.kind == "num" and (self.lo > 0.0 or self.hi < 0.0):
            return TRUE
        return UNKNOWN

    def describe(self) -> str:
        if self.const is not None:
            return repr(self.const) if isinstance(self.const, str) else _fmt(self.const)
        if self.kind == "str":
            return "a string"
        if self.kind == "num" and (self.lo, self.hi) != (-INF, INF):
            return f"[{_fmt(self.lo)}, {_fmt(self.hi)}]"
        return "unknown"


def _fmt(x: float) -> str:
    if x == INF:
        return "inf"
    if x == -INF:
        return "-inf"
    if x == int(x) and abs(x) < 1e15:
        return str(int(x))
    return f"{x:g}"


def _iadd(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    return AbstractValue.interval(_safe(a.lo + b.lo, -INF), _safe(a.hi + b.hi, INF))


def _isub(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    return AbstractValue.interval(_safe(a.lo - b.hi, -INF), _safe(a.hi - b.lo, INF))


def _safe(x: float, default: float) -> float:
    return default if math.isnan(x) else x


def _imul(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    products = []
    for x in (a.lo, a.hi):
        for y in (b.lo, b.hi):
            p = x * y
            products.append(0.0 if math.isnan(p) else p)
    return AbstractValue.interval(min(products), max(products))


def _idiv(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    if b.lo <= 0.0 <= b.hi:
        return AbstractValue.interval(-INF, INF)
    recip = AbstractValue.interval(*sorted((1.0 / b.lo, 1.0 / b.hi)))
    return _imul(a, recip)


def _close_match(name: str, candidates) -> Optional[str]:
    hits = difflib.get_close_matches(name, list(candidates), n=1, cutoff=0.8)
    return hits[0] if hits else None


# ---------------------------------------------------------------------------
# the analyzer
# ---------------------------------------------------------------------------

@dataclass
class AnalysisResult:
    """Outcome of :func:`analyze` on one requirement program."""

    #: the original parse
    program: Program
    #: constant-folded copy, safe to evaluate in place of ``program``
    folded: Program
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: parse errors recovered line-by-line (yacc ``error '\n'`` style)
    parse_errors: list[ParseError] = field(default_factory=list)
    #: (source line, tri-state truth) per logical statement
    statement_truths: list[tuple[int, str]] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if not d.is_error]

    @property
    def ok(self) -> bool:
        return not self.errors and not self.parse_errors

    @property
    def unsatisfiable(self) -> bool:
        """True when some logical statement can never hold — no server can
        ever qualify, so the request can be rejected without a DB scan."""
        return any(truth == FALSE for _, truth in self.statement_truths)


class _Analyzer:
    def __init__(self) -> None:
        self.diagnostics: list[Diagnostic] = []
        #: temp-variable bindings in evaluation order
        self.temps: dict[str, AbstractValue] = {}
        #: per-statement: did a REQ102 already explain the falseness?
        self._stmt_branch_error = False
        #: per-statement: a subexpression faults at runtime (EvalError)
        self._stmt_faulted = False

    # -- helpers ------------------------------------------------------------
    def _emit(self, code: str, message: str, node: Node) -> None:
        self.diagnostics.append(make(code, message, line=node.line, col=node.col))

    def _var_value(self, name: str) -> Optional[AbstractValue]:
        """Mirror ``Environment.lookup`` order: temps, server, user, consts."""
        if name in self.temps:
            return self.temps[name]
        if name in VAR_INTERVALS:
            return AbstractValue.interval(*VAR_INTERVALS[name])
        if name in USER_SIDE_VARS:
            return AbstractValue.top()
        if name in CONSTANTS:
            return AbstractValue.number(CONSTANTS[name])
        return None

    def _check_var_name(self, node: Var, *, assign_rhs: bool) -> None:
        """REQ001/REQ002 for names outside registry, temps and constants."""
        suggestion = _close_match(
            node.name, set(ALL_PREDEFINED) | set(CONSTANTS))
        if suggestion is not None and suggestion != node.name:
            self._emit(
                "REQ002",
                f"undefined variable {node.name!r}; did you mean {suggestion!r}?",
                node,
            )
            return
        if assign_rhs:
            return  # hostname idiom: user_denied_host1 = telesto
        self._emit(
            "REQ001",
            f"undefined variable {node.name!r} (reads as undefined at runtime; "
            f"a logical statement using it evaluates false)",
            node,
        )

    # -- recursive walk -----------------------------------------------------
    def walk(self, node: Node, *, assign_rhs: bool = False
             ) -> tuple[AbstractValue, Node]:
        """Return ``(abstract value, constant-folded node)``."""
        if isinstance(node, Num):
            return AbstractValue.number(node.value), node
        if isinstance(node, Addr):
            return AbstractValue.string(node.value), node
        if isinstance(node, Paren):
            return self.walk(node.inner, assign_rhs=assign_rhs)
        if isinstance(node, Var):
            return self._walk_var(node, assign_rhs=assign_rhs)
        if isinstance(node, Neg):
            return self._walk_neg(node, assign_rhs=assign_rhs)
        if isinstance(node, Assign):
            return self._walk_assign(node)
        if isinstance(node, Call):
            return self._walk_call(node, assign_rhs=assign_rhs)
        if isinstance(node, BinOp):
            return self._walk_binop(node, assign_rhs=assign_rhs)
        if isinstance(node, Compare):
            return self._walk_compare(node, assign_rhs=assign_rhs)
        if isinstance(node, Logic):
            return self._walk_logic(node, assign_rhs=assign_rhs)
        return AbstractValue.top(), node

    def _walk_var(self, node: Var, *, assign_rhs: bool
                  ) -> tuple[AbstractValue, Node]:
        value = self._var_value(node.name)
        if value is None:
            self._check_var_name(node, assign_rhs=assign_rhs)
            if assign_rhs:
                # reads as the hostname string at runtime
                return AbstractValue.string(node.name), node
            return AbstractValue.top(), node
        if value.is_const_num and node.name not in USER_SIDE_VARS:
            # constants (PI) and constant temps fold to literals
            return value, Num(float(value.const), line=node.line, col=node.col)
        return value, node

    def _walk_neg(self, node: Neg, *, assign_rhs: bool
                  ) -> tuple[AbstractValue, Node]:
        value, folded = self.walk(node.operand, assign_rhs=assign_rhs)
        if value.is_str and not assign_rhs:
            self._emit(
                "REQ006",
                f"arithmetic on address/hostname {value.describe()}", node)
            self._stmt_faulted = True
            return AbstractValue.top(), Neg(folded, line=node.line, col=node.col)
        if value.is_const_num:
            result = -float(value.const)
            return (AbstractValue.number(result),
                    Num(result, line=node.line, col=node.col))
        out = AbstractValue.interval(-value.hi, -value.lo)
        return out, Neg(folded, line=node.line, col=node.col)

    def _walk_assign(self, node: Assign) -> tuple[AbstractValue, Node]:
        if node.name in _READ_ONLY:
            self._emit(
                "REQ005",
                f"assignment to read-only predefined variable {node.name!r}",
                node,
            )
        value, folded_rhs = self.walk(node.value, assign_rhs=True)
        if node.name not in USER_SIDE_VARS:
            self.temps[node.name] = value
        folded = Assign(node.name, folded_rhs, line=node.line, col=node.col)
        return value, folded

    def _walk_call(self, node: Call, *, assign_rhs: bool
                   ) -> tuple[AbstractValue, Node]:
        arg_values: list[AbstractValue] = []
        folded_args: list[Node] = []
        for arg in node.args:
            value, folded = self.walk(arg, assign_rhs=assign_rhs)
            if value.is_str and not assign_rhs:
                self._emit(
                    "REQ006",
                    f"function argument is an address/hostname "
                    f"({value.describe()})", arg)
                self._stmt_faulted = True
                value = AbstractValue.top()
            arg_values.append(value)
            folded_args.append(folded)
        folded_call = Call(node.func, folded_args, line=node.line, col=node.col)
        entry = BUILTINS.get(node.func)
        if entry is None:
            suggestion = _close_match(node.func, BUILTINS)
            hint = f"; did you mean {suggestion!r}?" if suggestion else ""
            self._emit("REQ003", f"unknown function {node.func!r}{hint}", node)
            self._stmt_faulted = True
            return AbstractValue.top(), folded_call
        arity, fn = entry
        if len(node.args) != arity:
            self._emit(
                "REQ004",
                f"{node.func} expects {arity} argument(s), got {len(node.args)}",
                node,
            )
            self._stmt_faulted = True
            return AbstractValue.top(), folded_call
        if all(v.is_const_num for v in arg_values):
            try:
                result = fn(*[float(v.const) for v in arg_values])
            except EvalError as exc:
                self._emit("REQ008", f"constant expression faults: "
                           f"{exc.message}", node)
                self._stmt_faulted = True
                return AbstractValue.top(), folded_call
            return (AbstractValue.number(result),
                    Num(result, line=node.line, col=node.col))
        if node.func in _BUILTIN_RANGES:
            return (AbstractValue.interval(*_BUILTIN_RANGES[node.func]),
                    folded_call)
        if node.func in ("min", "max"):
            agg = min if node.func == "min" else max
            lo = agg(v.lo for v in arg_values)
            hi = agg(v.hi for v in arg_values)
            return AbstractValue.interval(lo, hi), folded_call
        if node.func in ("int", "floor", "ceil"):
            a = arg_values[0]
            return (AbstractValue.interval(
                math.floor(a.lo) if a.lo > -INF else -INF,
                math.ceil(a.hi) if a.hi < INF else INF), folded_call)
        return AbstractValue.top(), folded_call

    def _walk_binop(self, node: BinOp, *, assign_rhs: bool
                    ) -> tuple[AbstractValue, Node]:
        left, lfold = self.walk(node.left, assign_rhs=assign_rhs)
        right, rfold = self.walk(node.right, assign_rhs=assign_rhs)
        folded = BinOp(node.op, lfold, rfold, line=node.line, col=node.col)
        if assign_rhs and (left.is_str or right.is_str):
            # hostname idiom: titan-x re-joins at runtime; keep the original
            return AbstractValue.top(), folded
        bad = left if left.is_str else (right if right.is_str else None)
        if bad is not None:
            self._emit(
                "REQ006",
                f"arithmetic on address/hostname ({bad.describe()})", node)
            self._stmt_faulted = True
            return AbstractValue.top(), folded
        if left.is_const_num and right.is_const_num:
            return self._fold_const_binop(
                node, float(left.const), float(right.const), folded)
        ops = {
            "+": _iadd, "-": _isub, "*": _imul, "/": _idiv,
        }
        if node.op in ops:
            if node.op == "/" and right.lo <= 0.0 <= right.hi:
                # may divide by zero at runtime -> value unknown
                return AbstractValue.interval(-INF, INF), folded
            return ops[node.op](left, right), folded
        return AbstractValue.top(), folded  # ^ with non-constant operands

    def _fold_const_binop(self, node: BinOp, left: float, right: float,
                          folded: BinOp) -> tuple[AbstractValue, Node]:
        try:
            if node.op == "+":
                result = left + right
            elif node.op == "-":
                result = left - right
            elif node.op == "*":
                result = left * right
            elif node.op == "/":
                if right == 0.0:
                    raise ZeroDivisionError("division by 0")
                result = left / right
            elif node.op == "^":
                result = float(left ** right)
            else:  # pragma: no cover - parser only builds the five ops
                return AbstractValue.top(), folded
            if math.isnan(result) or isinstance(result, complex):
                raise ValueError("domain error")
        except (OverflowError, ZeroDivisionError, ValueError) as exc:
            self._emit("REQ008", f"constant expression faults: {exc}", node)
            self._stmt_faulted = True
            return AbstractValue.top(), folded
        return (AbstractValue.number(result),
                Num(result, line=node.line, col=node.col))

    # -- comparisons and logic ---------------------------------------------
    @staticmethod
    def _bare_unknown_var(node: Node) -> Optional[Var]:
        while isinstance(node, Paren):
            node = node.inner
        if isinstance(node, Var) and node.name not in ALL_PREDEFINED \
                and node.name not in CONSTANTS:
            return node
        return None

    def _walk_compare(self, node: Compare, *, assign_rhs: bool
                      ) -> tuple[AbstractValue, Node]:
        # §6 string-attribute form: a bare unknown identifier in an
        # equality test reads as a string literal at runtime — analyze the
        # sides with that in mind so "host_machine_type == i386" is clean.
        string_eq = node.op in ("==", "!=")
        sides: list[tuple[AbstractValue, Node]] = []
        for child in (node.left, node.right):
            other = node.right if child is node.left else node.left
            bare = self._bare_unknown_var(child)
            if string_eq and bare is not None and bare.name not in self.temps:
                other_bare = self._bare_unknown_var(other)
                other_stringish = (
                    other_bare is not None
                    or isinstance(other, Addr)
                    or self._could_be_string(other)
                )
                if other_stringish:
                    # suppress REQ001 but still catch registry misspellings
                    suggestion = _close_match(
                        bare.name, set(ALL_PREDEFINED) | set(CONSTANTS))
                    if suggestion is not None and suggestion != bare.name:
                        self._emit(
                            "REQ002",
                            f"undefined variable {bare.name!r}; did you "
                            f"mean {suggestion!r}?", bare)
                    sides.append((AbstractValue.top(), child))
                    continue
            sides.append(self.walk(child, assign_rhs=assign_rhs))
        (left, lfold), (right, rfold) = sides
        folded = Compare(node.op, lfold, rfold, line=node.line, col=node.col)
        self._check_units(node, left, right)
        # ordering on a definite string faults at runtime (EvalError)
        if node.op not in ("==", "!=") and (left.is_str or right.is_str):
            bad = left if left.is_str else right
            self._emit(
                "REQ006",
                f"ordering comparison on address/hostname "
                f"({bad.describe()})", node)
            self._stmt_faulted = True
            return AbstractValue.interval(0.0, 0.0), folded
        truth = self._compare_truth(node.op, left, right)
        if truth == TRUE:
            return AbstractValue.number(1.0), folded
        if truth == FALSE:
            return AbstractValue.number(0.0), folded
        return AbstractValue.interval(0.0, 1.0), folded

    def _could_be_string(self, node: Node) -> bool:
        """Conservative: might this expression be a string at runtime?"""
        while isinstance(node, Paren):
            node = node.inner
        if isinstance(node, Var):
            value = self._var_value(node.name)
            return value is None or value.kind in ("str", "any")
        return isinstance(node, Addr)

    @staticmethod
    def _compare_truth(op: str, left: AbstractValue,
                       right: AbstractValue) -> str:
        if left.is_str or right.is_str:
            if left.const is not None and right.const is not None \
                    and op in ("==", "!="):
                same = str(left.const) == str(right.const)
                return TRUE if same == (op == "==") else FALSE
            return UNKNOWN
        if left.kind != "num" or right.kind != "num":
            return UNKNOWN
        a, b, c, d = left.lo, left.hi, right.lo, right.hi
        if op == ">":
            if a > d:
                return TRUE
            if b <= c:
                return FALSE
        elif op == ">=":
            if a >= d:
                return TRUE
            if b < c:
                return FALSE
        elif op == "<":
            if b < c:
                return TRUE
            if a >= d:
                return FALSE
        elif op == "<=":
            if b <= c:
                return TRUE
            if a > d:
                return FALSE
        elif op == "==":
            if b < c or d < a:
                return FALSE
            if a == b == c == d:
                return TRUE
        elif op == "!=":
            if b < c or d < a:
                return TRUE
            if a == b == c == d:
                return FALSE
        return UNKNOWN

    def _check_units(self, node: Compare, left: AbstractValue,
                     right: AbstractValue) -> None:
        """REQ204: MB-unit variable compared against a byte-sized constant."""
        for side, other in ((node.left, right), (node.right, left)):
            inner = side
            while isinstance(inner, Paren):
                inner = inner.inner
            if (isinstance(inner, Var) and inner.name in MB_UNIT_VARS
                    and other.kind == "num" and other.lo >= _MIB):
                self._emit(
                    "REQ204",
                    f"{inner.name} is measured in MB (thesis unit quirk); "
                    f"comparing against {other.describe()} looks like bytes",
                    node,
                )

    def _walk_logic(self, node: Logic, *, assign_rhs: bool
                    ) -> tuple[AbstractValue, Node]:
        left, lfold = self.walk(node.left, assign_rhs=assign_rhs)
        right, rfold = self.walk(node.right, assign_rhs=assign_rhs)
        folded = Logic(node.op, lfold, rfold, line=node.line, col=node.col)
        lt, rt = left.truth(), right.truth()
        if node.op == "&&":
            for truth, child in ((lt, node.left), (rt, node.right)):
                if truth == FALSE:
                    self._emit(
                        "REQ102",
                        "'&&' branch is always false — the conjunction can "
                        "never hold", child)
                    self._stmt_branch_error = True
                elif truth == TRUE:
                    self._emit(
                        "REQ203",
                        "'&&' branch is always true — it never filters "
                        "anything", child)
            if FALSE in (lt, rt):
                return AbstractValue.number(0.0), folded
            if lt == rt == TRUE:
                return AbstractValue.number(1.0), folded
            return AbstractValue.interval(0.0, 1.0), folded
        # "||"
        for truth, child in ((lt, node.left), (rt, node.right)):
            if truth == FALSE:
                self._emit(
                    "REQ202",
                    "dead '||' branch: always false, never selected", child)
        if TRUE in (lt, rt):
            return AbstractValue.number(1.0), folded
        if lt == rt == FALSE:
            return AbstractValue.number(0.0), folded
        return AbstractValue.interval(0.0, 1.0), folded

    # -- statements ---------------------------------------------------------
    def run(self, program: Program) -> tuple[Program, list[tuple[int, str]]]:
        folded_program = Program(errors=list(program.errors))
        truths: list[tuple[int, str]] = []
        for stmt in program.statements:
            self._stmt_branch_error = False
            self._stmt_faulted = False
            value, folded = self.walk(stmt)
            folded_program.statements.append(folded)
            if not is_logical(stmt):
                if not _contains_assign(stmt):
                    self._emit(
                        "REQ007",
                        "statement has no effect (not a constraint, not an "
                        "assignment)", stmt)
                continue
            truth = value.truth()
            if self._stmt_faulted:
                # a runtime fault in a logical statement makes it false
                truth = FALSE
            truths.append((stmt.line, truth))
            if truth == FALSE and not self._stmt_branch_error:
                self._emit(
                    "REQ101",
                    "statement is always false — no server can ever satisfy "
                    "it", stmt)
            elif truth == TRUE:
                self._emit(
                    "REQ201",
                    "statement is always true — it never filters anything",
                    stmt)
        return folded_program, truths


def _contains_assign(node: Node) -> bool:
    if isinstance(node, Assign):
        return True
    if isinstance(node, Paren):
        return _contains_assign(node.inner)
    if isinstance(node, (BinOp, Compare, Logic)):
        return _contains_assign(node.left) or _contains_assign(node.right)
    if isinstance(node, Neg):
        return _contains_assign(node.operand)
    if isinstance(node, Call):
        return any(_contains_assign(a) for a in node.args)
    return False


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def analyze(source: Union[str, Program], *, recover: bool = True
            ) -> AnalysisResult:
    """Run the full static-analysis pipeline on requirement text or AST."""
    if isinstance(source, Program):
        program = source
    else:
        program = parse(source, recover=recover)
    analyzer = _Analyzer()
    folded, truths = analyzer.run(program)
    return AnalysisResult(
        program=program,
        folded=folded,
        diagnostics=analyzer.diagnostics,
        parse_errors=list(program.errors),
        statement_truths=truths,
    )


@dataclass(frozen=True)
class CompiledRequirement:
    """Cacheable unit: analyzed + folded requirement, ready to evaluate."""

    source: str
    folded: Program
    diagnostics: tuple[Diagnostic, ...]
    unsatisfiable: bool
    parse_failed: bool = False

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.is_error)


def compile_requirement(text: str) -> CompiledRequirement:
    """Parse (with recovery) + analyze + fold one requirement text."""
    try:
        result = analyze(text, recover=True)
    except LangError:
        # even recovery failed (lexer-level garbage): unevaluable program
        return CompiledRequirement(
            source=text, folded=Program(), diagnostics=(),
            unsatisfiable=False, parse_failed=True,
        )
    return CompiledRequirement(
        source=text,
        folded=result.folded,
        diagnostics=tuple(result.diagnostics),
        unsatisfiable=result.unsatisfiable,
    )


class CompileCache:
    """LRU cache of :class:`CompiledRequirement` keyed by requirement text.

    The wizard consults it once per request: repeated requirements (the
    common case — one application sends the same spec for every job) skip
    lexing, parsing and analysis entirely and evaluate the folded AST.
    """

    def __init__(self, maxsize: int = 256):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[str, CompiledRequirement] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_compile(self, text: str) -> CompiledRequirement:
        entry = self._entries.get(text)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(text)
            return entry
        self.misses += 1
        entry = compile_requirement(text)
        self._entries[text] = entry
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return entry
