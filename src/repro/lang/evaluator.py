"""Evaluator for requirement programs — the wizard's matching core.

Semantics follow thesis §3.6.1/Fig 4.2:

* every line is a statement; a server **qualifies iff every logical
  statement evaluates true**;
* non-logical statements (assignments, arithmetic) run for their side
  effects — defining temp variables and filling the user-side parameters
  (``user_preferred_host*`` / ``user_denied_host*``);
* an *undefined* variable inside a logical statement makes that statement
  false (not an error);
* runtime faults (division by zero, string arithmetic, unknown function)
  mirror hoc's ``execerror``: the statement is recorded as an error and,
  if it was logical, counts as unsatisfied.

Values are floats or strings (NETADDR literals and hostnames).  A bare
identifier assigned to a user-side slot is taken as a *hostname* — the
thesis' own experiments write ``user_denied_host1 = telesto``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from .builtins import CONSTANTS, call_builtin
from .errors import EvalError
from .nodes import (
    Addr,
    Assign,
    BinOp,
    Call,
    Compare,
    Logic,
    Neg,
    Node,
    Paren,
    Program,
    Num,
    Var,
    is_logical,
)
from .variables import DENIED_VARS, PREFERRED_VARS, USER_SIDE_VARS

__all__ = ["Environment", "Evaluation", "evaluate", "Undefined"]

Value = Union[float, str]


class Undefined(Exception):
    """Internal signal: a variable had no value (thesis: logical -> false)."""

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name


@dataclass
class Environment:
    """Name bindings for one evaluation pass (one server)."""

    #: server-side + monitor values for the server under consideration
    server: dict[str, float] = field(default_factory=dict)
    #: temp variables defined by the requirement itself
    temps: dict[str, Value] = field(default_factory=dict)
    #: user-side slots filled by assignments during evaluation
    user: dict[str, Value] = field(default_factory=dict)

    def lookup(self, name: str) -> Value:
        if name in self.temps:
            return self.temps[name]
        if name in self.server:
            return self.server[name]
        if name in self.user:
            return self.user[name]
        if name in CONSTANTS:
            return CONSTANTS[name]
        raise Undefined(name)

    def assign(self, name: str, value: Value) -> None:
        if name in USER_SIDE_VARS:
            self.user[name] = value
        else:
            self.temps[name] = value

    # -- convenience for the wizard ------------------------------------------
    def denied_hosts(self) -> list[str]:
        return [str(self.user[n]) for n in DENIED_VARS if n in self.user]

    def preferred_hosts(self) -> list[str]:
        return [str(self.user[n]) for n in PREFERRED_VARS if n in self.user]


@dataclass
class Evaluation:
    """Outcome of running a program against one server's status."""

    qualified: bool
    #: (source line, truth) for each logical statement
    logical_results: list[tuple[int, bool]] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    env: Optional[Environment] = None


def _truthy(value: Value) -> bool:
    if isinstance(value, str):
        return bool(value)
    return value != 0.0


def _numeric(value: Value, node: Node) -> float:
    if isinstance(value, str):
        raise EvalError(
            f"arithmetic on address/hostname {value!r}",
            line=node.line, col=node.col,
        )
    return value


def _eval(node: Node, env: Environment) -> Value:
    if isinstance(node, Num):
        return node.value
    if isinstance(node, Addr):
        return node.value
    if isinstance(node, Var):
        return env.lookup(node.name)
    if isinstance(node, Paren):
        return _eval(node.inner, env)
    if isinstance(node, Neg):
        return -_numeric(_eval(node.operand, env), node.operand)
    if isinstance(node, Assign):
        value = _eval_assign_rhs(node.value, env)
        env.assign(node.name, value)
        return value
    if isinstance(node, Call):
        args = [_numeric(_eval(a, env), a) for a in node.args]
        return call_builtin(node.func, args, line=node.line, col=node.col)
    if isinstance(node, BinOp):
        left = _numeric(_eval(node.left, env), node.left)
        right = _numeric(_eval(node.right, env), node.right)
        if node.op == "+":
            return left + right
        if node.op == "-":
            return left - right
        if node.op == "*":
            return left * right
        if node.op == "/":
            if right == 0.0:
                raise EvalError("division by 0", line=node.line, col=node.col)
            return left / right
        if node.op == "^":
            try:
                return float(left ** right)
            except (OverflowError, ZeroDivisionError, ValueError) as exc:
                raise EvalError(f"power: {exc}", line=node.line,
                                col=node.col) from exc
        raise EvalError(f"unknown operator {node.op!r}",
                        line=node.line, col=node.col)
    if isinstance(node, Compare):
        left, left_undef = _eval_compare_side(node.left, env)
        right, right_undef = _eval_compare_side(node.right, env)
        # §6 string attributes: in an equality test against a string value,
        # a bare undefined identifier reads as a literal ("machine_type ==
        # i386").  Anywhere else, undefined stays undefined (-> false).
        if left_undef is not None:
            if node.op in ("==", "!=") and isinstance(right, str):
                left = left_undef
            else:
                raise Undefined(left_undef)
        if right_undef is not None:
            if node.op in ("==", "!=") and isinstance(left, str):
                right = right_undef
            else:
                raise Undefined(right_undef)
        if isinstance(left, str) or isinstance(right, str):
            if node.op == "==":
                return 1.0 if str(left) == str(right) else 0.0
            if node.op == "!=":
                return 1.0 if str(left) != str(right) else 0.0
            raise EvalError(
                "ordering comparison on address/hostname",
                line=node.line, col=node.col,
            )
        table = {
            ">": left > right,
            ">=": left >= right,
            "<": left < right,
            "<=": left <= right,
            "==": left == right,
            "!=": left != right,
        }
        return 1.0 if table[node.op] else 0.0
    if isinstance(node, Logic):
        left = _truthy(_eval(node.left, env))
        if node.op == "&&":
            # no short-circuit: the thesis' yacc evaluates both sides, and
            # assignments on the right-hand side must still take effect
            right = _truthy(_eval(node.right, env))
            return 1.0 if (left and right) else 0.0
        right = _truthy(_eval(node.right, env))
        return 1.0 if (left or right) else 0.0
    raise EvalError(f"cannot evaluate node {node!r}",
                    line=getattr(node, "line", 0), col=getattr(node, "col", 0))


def _eval_compare_side(node: Node, env: Environment):
    """Evaluate one side of a comparison.

    Returns ``(value, None)`` normally, or ``(None, name)`` when the side
    was a *bare* undefined identifier — the caller may then treat the name
    as a string literal in equality tests (the §6 string-attribute form).
    Undefined identifiers inside larger expressions still propagate.
    """
    while isinstance(node, Paren):
        node = node.inner
    if isinstance(node, Var):
        try:
            return env.lookup(node.name), None
        except Undefined:
            return None, node.name
    return _eval(node, env), None


def _eval_assign_rhs(node: Node, env: Environment) -> Value:
    """RHS of an assignment: undefined identifiers read as hostnames.

    Supports the thesis' ``user_denied_host1 = telesto`` idiom (a hostname
    without dots lexes as an identifier) and, because hostnames may carry
    hyphens that lex as subtraction (``user_denied_host5 = titan-x``,
    Table 5.5), a subtraction chain of undefined identifiers is re-joined
    into the hyphenated hostname.
    """
    try:
        return _eval(node, env)
    except (Undefined, EvalError):
        hostname = _hostname_from(node, env)
        if hostname is not None:
            return hostname
        raise


def _hostname_from(node: Node, env: Environment) -> Optional[str]:
    """Reconstruct ``titan-x``-style names from ``Var - Var`` chains."""
    if isinstance(node, Paren):
        return _hostname_from(node.inner, env)
    if isinstance(node, Var):
        try:
            value = env.lookup(node.name)
        except Undefined:
            return node.name
        return value if isinstance(value, str) else None
    if isinstance(node, Num) and node.value == int(node.value):
        return str(int(node.value))  # trailing digits, e.g. "node-07"... "7"
    if isinstance(node, BinOp) and node.op == "-":
        left = _hostname_from(node.left, env)
        right = _hostname_from(node.right, env)
        if left is not None and right is not None:
            return f"{left}-{right}"
    return None


def evaluate(program: Program, server_params: dict[str, float],
             user_presets: Optional[dict[str, Value]] = None) -> Evaluation:
    """Run ``program`` against one server's parameters.

    ``user_presets`` seeds the user-side slots (e.g. options carried in the
    request separately from the requirement text).
    """
    env = Environment(server=dict(server_params))
    if user_presets:
        env.user.update(user_presets)
    logical_results: list[tuple[int, bool]] = []
    errors: list[str] = []
    for stmt in program.statements:
        logical = is_logical(stmt)
        try:
            value = _eval(stmt, env)
            if logical:
                logical_results.append((stmt.line, _truthy(value)))
        except Undefined as undef:
            if logical:
                # thesis: uninitialised variable in a logical statement
                # makes the whole statement false
                logical_results.append((stmt.line, False))
            else:
                errors.append(f"undefined variable {undef.name!r}")
        except EvalError as exc:
            errors.append(str(exc))
            if logical:
                logical_results.append((stmt.line, False))
    qualified = all(ok for _, ok in logical_results)
    return Evaluation(
        qualified=qualified,
        logical_results=logical_results,
        errors=errors,
        env=env,
    )
