"""Variable registry: the 22 server-side and 10 user-side parameters.

Thesis §3.6.2: "There are in total 22 server-side variables and 10
user-side variables available."  Appendix B names them; their units come
from the worked examples:

* ``host_memory_free`` is in **MB** ("host_memory_free > 5 (MB)",
  Table 5.3) while ``host_memory_used``/``host_memory_total`` are in
  **bytes** ("host_memory_used <= 250*1024*1024", §3.6.2) — a thesis quirk
  reproduced faithfully;
* ``host_cpu_free`` is a 0–1 fraction (">= 0.9");
* ``monitor_network_bw`` is in Mbps ("monitor_network_bw > 6") and
  ``monitor_network_delay`` in ms ("delay < 20ms", Fig 1.4) — these two are
  *group* metrics coming from the network monitor rather than the probe;
* the IO rates ``host_network_*ps`` are per-second deltas in bytes/packets;
* ``host_status_age`` (fault-model extension, not in the thesis set) is the
  seconds since the server's status record was written by its group's
  system monitor — ``host_status_age < 10`` filters out servers whose
  monitoring path is partitioned or whose monitor crashed, so a requirement
  can demand *fresh* data instead of trusting last-known-good snapshots.
"""

from __future__ import annotations

__all__ = [
    "SERVER_SIDE_VARS",
    "MONITOR_VARS",
    "DERIVED_VARS",
    "USER_SIDE_VARS",
    "PREFERRED_VARS",
    "DENIED_VARS",
    "ALL_PREDEFINED",
]

#: the 22 server-side variables (thesis Appendix B.1)
SERVER_SIDE_VARS: tuple[str, ...] = (
    # /proc/loadavg
    "host_system_load1",
    "host_system_load5",
    "host_system_load15",
    # /proc/stat cpu + /proc/cpuinfo
    "host_cpu_user",
    "host_cpu_nice",
    "host_cpu_system",
    "host_cpu_idle",
    "host_cpu_free",
    "host_cpu_bogomips",
    # /proc/meminfo
    "host_memory_total",
    "host_memory_used",
    "host_memory_free",
    # /proc/stat disk_io
    "host_disk_allreq",
    "host_disk_rreq",
    "host_disk_rblocks",
    "host_disk_wreq",
    "host_disk_wblocks",
    # /proc/net/dev rates
    "host_network_rbytesps",
    "host_network_rpacketsps",
    "host_network_tbytesps",
    "host_network_tpacketsps",
    # security monitor
    "host_security_level",
)

#: network-monitor (group) metrics
MONITOR_VARS: tuple[str, ...] = (
    "monitor_network_delay",  # ms
    "monitor_network_bw",     # Mbps
)

#: wizard-derived health metrics (fault-model extension; computed per
#: request, never carried in a probe report)
DERIVED_VARS: tuple[str, ...] = (
    "host_status_age",        # seconds since the record was last refreshed
)

#: the 10 user-side variables: preference / blacklist slots
PREFERRED_VARS: tuple[str, ...] = tuple(f"user_preferred_host{i}" for i in range(1, 6))
DENIED_VARS: tuple[str, ...] = tuple(f"user_denied_host{i}" for i in range(1, 6))
USER_SIDE_VARS: tuple[str, ...] = PREFERRED_VARS + DENIED_VARS

ALL_PREDEFINED: frozenset[str] = frozenset(
    SERVER_SIDE_VARS + MONITOR_VARS + DERIVED_VARS + USER_SIDE_VARS
)

assert len(SERVER_SIDE_VARS) == 22, "thesis specifies exactly 22 server-side vars"
assert len(USER_SIDE_VARS) == 10, "thesis specifies exactly 10 user-side vars"
