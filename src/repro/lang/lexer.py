"""Lexer for the server-requirement meta-language.

Implements the flex rules of thesis Fig 4.1:

* ``#.*`` comments and ``[ \\t]`` white space are discarded,
* dotted quads and dotted domain names lex as ``NETADDR``,
* integers and decimals lex as ``NUMBER``,
* ``[a-zA-Z]+[a-zA-Z_0-9]*`` lexes as an identifier (``VAR``/``UNDEF``
  resolution happens at evaluation time),
* the C logical operators ``&& || > >= == != < <=`` plus the arithmetic
  ``+ - * / ^ ( ) =`` pass through,
* ``\\n`` ends a statement.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from .errors import LexError

__all__ = ["Token", "tokenize", "TokenKind"]


class TokenKind:
    NUMBER = "NUMBER"
    NETADDR = "NETADDR"
    IDENT = "IDENT"
    OP = "OP"          # one of the operator lexemes below
    NEWLINE = "NEWLINE"
    EOF = "EOF"


#: operator lexemes, longest first so ``>=`` wins over ``>``
_OPERATORS = ["&&", "||", ">=", "<=", "==", "!=", ">", "<",
              "+", "-", "*", "/", "^", "(", ")", "=", ","]

_TOKEN_RE = re.compile(
    r"""
    (?P<COMMENT>\#[^\n]*)
  | (?P<WS>[ \t\r]+)
  | (?P<NETADDR>
        [0-9]+\.[0-9]+\.[0-9]+\.[0-9]+            # dotted quad
      | [a-zA-Z][a-zA-Z_0-9-]*(\.[a-zA-Z_0-9-]+)+ # dotted domain name
    )
  | (?P<NUMBER>[0-9]+\.[0-9]+|[0-9]+)
  | (?P<IDENT>[a-zA-Z][a-zA-Z_0-9]*)
  | (?P<OP>&&|\|\||>=|<=|==|!=|[><+\-*/^()=,])
  | (?P<NEWLINE>\n)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str) -> Iterator[Token]:
    """Yield tokens; terminates with a single EOF token.

    Raises :class:`LexError` on the first unrecognised character.
    """
    pos = 0
    line = 1
    line_start = 0
    n = len(source)
    while pos < n:
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise LexError(
                f"unexpected character {source[pos]!r}",
                line=line, col=pos - line_start + 1,
            )
        kind = m.lastgroup
        text = m.group()
        col = pos - line_start + 1
        pos = m.end()
        if kind in ("COMMENT", "WS"):
            continue
        if kind == "NEWLINE":
            yield Token(TokenKind.NEWLINE, text, line, col)
            line += 1
            line_start = pos
            continue
        yield Token(kind, text, line, col)
    yield Token(TokenKind.EOF, "", line, pos - line_start + 1)
