"""Recursive-descent parser for the requirement meta-language.

Equivalent to the yacc grammar of thesis Fig 4.2 with conventional C
precedence (the thesis inherits hoc's):

    assignment            right-assoc, lowest
    ||
    &&
    == !=
    > >= < <=
    + -
    * /
    ^                     right-assoc
    unary -               (%prec UNARYMINUS)
    literals, vars, calls, ( )

One statement per line; blank lines are allowed.  Like yacc's
``list error '\\n'`` rule, :func:`parse` can optionally *recover* by
skipping a malformed line and recording the error instead of aborting.
"""

from __future__ import annotations

from .errors import ParseError
from .lexer import Token, TokenKind, tokenize
from .nodes import (
    Addr,
    Assign,
    BinOp,
    Call,
    Compare,
    Logic,
    Neg,
    Node,
    Paren,
    Program,
    Num,
    Var,
)

__all__ = ["parse", "Parser"]


class Parser:
    def __init__(self, source: str):
        self.tokens = list(tokenize(source))
        self.pos = 0
        self.errors: list[ParseError] = []

    # -- token plumbing ----------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.cur
        if tok.kind != TokenKind.EOF:
            self.pos += 1
        return tok

    def at_op(self, *lexemes: str) -> bool:
        return self.cur.kind == TokenKind.OP and self.cur.text in lexemes

    def expect_op(self, lexeme: str) -> Token:
        if not self.at_op(lexeme):
            raise ParseError(
                f"expected {lexeme!r}, found {self.cur.text or 'end of input'!r}",
                line=self.cur.line, col=self.cur.col,
            )
        return self.advance()

    # -- grammar -------------------------------------------------------------
    def parse_program(self, recover: bool = False) -> Program:
        prog = Program()
        while self.cur.kind != TokenKind.EOF:
            if self.cur.kind == TokenKind.NEWLINE:
                self.advance()
                continue
            try:
                stmt = self.parse_statement()
                prog.statements.append(stmt)
            except ParseError as exc:
                if not recover:
                    raise
                self.errors.append(exc)
                self._skip_line()
        return prog

    def _skip_line(self) -> None:
        while self.cur.kind not in (TokenKind.NEWLINE, TokenKind.EOF):
            self.advance()
        if self.cur.kind == TokenKind.NEWLINE:
            self.advance()

    def parse_statement(self) -> Node:
        expr = self.parse_expr()
        if self.cur.kind == TokenKind.NEWLINE:
            self.advance()
        elif self.cur.kind != TokenKind.EOF:
            raise ParseError(
                f"unexpected {self.cur.text!r} after statement",
                line=self.cur.line, col=self.cur.col,
            )
        return expr

    def parse_expr(self) -> Node:
        return self.parse_assign()

    def parse_assign(self) -> Node:
        left = self.parse_or()
        if self.at_op("="):
            tok = self.advance()
            if not isinstance(left, Var):
                raise ParseError(
                    "left side of '=' must be a variable",
                    line=tok.line, col=tok.col,
                )
            value = self.parse_assign()  # right associative: a = b = 3
            return Assign(left.name, value, line=tok.line, col=left.col or tok.col)
        return left

    def _binary_level(self, sub, ops, node_cls):
        left = sub()
        while self.at_op(*ops):
            tok = self.advance()
            right = sub()
            left = node_cls(tok.text, left, right, line=tok.line, col=tok.col)
        return left

    def parse_or(self) -> Node:
        return self._binary_level(self.parse_and, ("||",), Logic)

    def parse_and(self) -> Node:
        return self._binary_level(self.parse_equality, ("&&",), Logic)

    def parse_equality(self) -> Node:
        return self._binary_level(self.parse_relational, ("==", "!="), Compare)

    def parse_relational(self) -> Node:
        return self._binary_level(self.parse_additive, (">", ">=", "<", "<="), Compare)

    def parse_additive(self) -> Node:
        return self._binary_level(self.parse_multiplicative, ("+", "-"), BinOp)

    def parse_multiplicative(self) -> Node:
        return self._binary_level(self.parse_power, ("*", "/"), BinOp)

    def parse_power(self) -> Node:
        left = self.parse_unary()
        if self.at_op("^"):
            tok = self.advance()
            right = self.parse_power()  # right associative
            return BinOp("^", left, right, line=tok.line, col=tok.col)
        return left

    def parse_unary(self) -> Node:
        if self.at_op("-"):
            tok = self.advance()
            return Neg(self.parse_unary(), line=tok.line, col=tok.col)
        if self.at_op("+"):
            self.advance()
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> Node:
        tok = self.cur
        if tok.kind == TokenKind.NUMBER:
            self.advance()
            return Num(float(tok.text), line=tok.line, col=tok.col)
        if tok.kind == TokenKind.NETADDR:
            self.advance()
            return Addr(tok.text, line=tok.line, col=tok.col)
        if tok.kind == TokenKind.IDENT:
            self.advance()
            if self.at_op("("):
                self.advance()
                args = [self.parse_expr()]
                while self.at_op(","):
                    self.advance()
                    args.append(self.parse_expr())
                self.expect_op(")")
                return Call(tok.text, args, line=tok.line, col=tok.col)
            return Var(tok.text, line=tok.line, col=tok.col)
        if self.at_op("("):
            open_tok = self.advance()
            inner = self.parse_expr()
            self.expect_op(")")
            return Paren(inner, line=open_tok.line, col=open_tok.col)
        raise ParseError(
            f"unexpected {tok.text or 'end of input'!r}",
            line=tok.line, col=tok.col,
        )


def parse(source: str, recover: bool = False) -> Program:
    """Parse requirement text into a :class:`Program`.

    With ``recover=True`` malformed lines are skipped (yacc's
    ``error '\\n'`` recovery) and collected on ``Program.errors`` — used by
    the wizard so one bad line does not void a whole requirement file.
    """
    parser = Parser(source)
    prog = parser.parse_program(recover=recover)
    prog.errors = parser.errors
    return prog
