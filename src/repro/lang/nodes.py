"""AST nodes for the requirement meta-language.

The grammar (thesis Fig 4.2) distinguishes *logical* and *non-logical*
statements by whether the **main operator** of the statement is a logical
operator; parentheses are transparent (``'(' expr ')'`` "will not change
logic value").  :func:`is_logical` reproduces that rule structurally
instead of via yacc's global ``logic`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Node",
    "Num",
    "Addr",
    "Var",
    "Neg",
    "BinOp",
    "Compare",
    "Logic",
    "Assign",
    "Call",
    "Paren",
    "Program",
    "Statement",
    "is_logical",
    "LOGICAL_OPS",
    "ARITH_OPS",
]

LOGICAL_OPS = {"&&", "||", ">", ">=", "<", "<=", "==", "!="}
ARITH_OPS = {"+", "-", "*", "/", "^"}


class Node:
    """Base class; all nodes carry a source line/column span for diagnostics."""

    line: int = 0
    col: int = 0


@dataclass
class Num(Node):
    value: float
    line: int = 0
    col: int = 0


@dataclass
class Addr(Node):
    """A NETADDR literal — dotted quad or dotted hostname."""

    value: str
    line: int = 0
    col: int = 0


@dataclass
class Var(Node):
    name: str
    line: int = 0
    col: int = 0


@dataclass
class Neg(Node):
    operand: Node
    line: int = 0
    col: int = 0


@dataclass
class BinOp(Node):
    """Arithmetic: + - * / ^"""

    op: str
    left: Node
    right: Node
    line: int = 0
    col: int = 0


@dataclass
class Compare(Node):
    """Relational/equality: > >= < <= == !="""

    op: str
    left: Node
    right: Node
    line: int = 0
    col: int = 0


@dataclass
class Logic(Node):
    """Boolean combination: && ||"""

    op: str
    left: Node
    right: Node
    line: int = 0
    col: int = 0


@dataclass
class Assign(Node):
    name: str
    value: Node
    line: int = 0
    col: int = 0


@dataclass
class Call(Node):
    func: str
    args: list[Node]
    line: int = 0
    col: int = 0


@dataclass
class Paren(Node):
    inner: Node
    line: int = 0
    col: int = 0


Statement = Node  # a statement is just a top-level expression/assignment


@dataclass
class Program(Node):
    statements: list[Statement] = field(default_factory=list)
    #: parse errors collected in recovery mode (yacc's ``error '\n'`` rule)
    errors: list = field(default_factory=list)

    def logical_statements(self) -> list[Statement]:
        return [s for s in self.statements if is_logical(s)]


def is_logical(node: Node) -> bool:
    """True when the statement's main operator is logical (Fig 4.2 rule)."""
    while isinstance(node, Paren):
        node = node.inner
    return isinstance(node, (Compare, Logic))
