"""The server-requirement meta-language (lexer, parser, evaluator).

Quick use::

    from repro.lang import parse, evaluate

    program = parse('''
        host_cpu_free >= 0.9
        host_memory_free > 5         # MB
        user_denied_host1 = hacker.some.net
    ''')
    result = evaluate(program, {"host_cpu_free": 0.95, "host_memory_free": 120.0})
    result.qualified        # -> True
    result.env.denied_hosts()  # -> ['hacker.some.net']
"""

from .analysis import (
    AbstractValue,
    AnalysisResult,
    CompileCache,
    CompiledRequirement,
    MB_UNIT_VARS,
    VAR_INTERVALS,
    analyze,
    compile_requirement,
)
from .builtins import BUILTINS, CONSTANTS, call_builtin
from .diagnostics import DIAGNOSTIC_CODES, Diagnostic, Severity, format_diagnostic
from .errors import EvalError, LangError, LexError, ParseError
from .evaluator import Environment, Evaluation, Undefined, evaluate
from .lexer import Token, TokenKind, tokenize
from .nodes import (
    Addr,
    Assign,
    BinOp,
    Call,
    Compare,
    Logic,
    Neg,
    Node,
    Paren,
    Program,
    Num,
    Var,
    is_logical,
)
from .parser import Parser, parse
from .variables import (
    ALL_PREDEFINED,
    DENIED_VARS,
    DERIVED_VARS,
    MONITOR_VARS,
    PREFERRED_VARS,
    SERVER_SIDE_VARS,
    USER_SIDE_VARS,
)

__all__ = [
    "parse",
    "analyze",
    "AnalysisResult",
    "AbstractValue",
    "CompileCache",
    "CompiledRequirement",
    "compile_requirement",
    "VAR_INTERVALS",
    "MB_UNIT_VARS",
    "Diagnostic",
    "Severity",
    "DIAGNOSTIC_CODES",
    "format_diagnostic",
    "Parser",
    "evaluate",
    "Evaluation",
    "Environment",
    "Undefined",
    "tokenize",
    "Token",
    "TokenKind",
    "LangError",
    "LexError",
    "ParseError",
    "EvalError",
    "BUILTINS",
    "CONSTANTS",
    "call_builtin",
    "Program",
    "Node",
    "Num",
    "Addr",
    "Var",
    "Neg",
    "BinOp",
    "Compare",
    "Logic",
    "Assign",
    "Call",
    "Paren",
    "is_logical",
    "SERVER_SIDE_VARS",
    "MONITOR_VARS",
    "DERIVED_VARS",
    "USER_SIDE_VARS",
    "PREFERRED_VARS",
    "DENIED_VARS",
    "ALL_PREDEFINED",
]
