"""Disk model: a serialised device with 2.4-kernel ``disk_io`` counters.

The probe reads ``allreq, rreq, rblocks, wreq, wblocks`` out of
``/proc/stat`` (thesis Table 3.1) to qualify servers for IO-bound tasks, so
the counters here follow the 2.4 ``disk_io:`` semantics: requests and
512-byte blocks, split by direction.
"""

from __future__ import annotations

from ..sim import Event, Simulator

__all__ = ["Disk", "BLOCK_BYTES"]

BLOCK_BYTES = 512


class Disk:
    """FIFO-serialised disk with a fixed sustained throughput."""

    def __init__(self, sim: Simulator, throughput_bps: float = 40e6 * 8,
                 seek_time: float = 5e-3):
        if throughput_bps <= 0:
            raise ValueError(f"throughput must be positive, got {throughput_bps}")
        self.sim = sim
        self.throughput_bps = float(throughput_bps)
        self.seek_time = float(seek_time)
        self._next_free = 0.0
        # /proc/stat disk_io counters
        self.rreq = 0
        self.wreq = 0
        self.rblocks = 0
        self.wblocks = 0

    @property
    def allreq(self) -> int:
        return self.rreq + self.wreq

    def _io(self, nbytes: int, write: bool) -> Event:
        if nbytes <= 0:
            raise ValueError(f"io size must be positive, got {nbytes}")
        blocks = max(1, (nbytes + BLOCK_BYTES - 1) // BLOCK_BYTES)
        if write:
            self.wreq += 1
            self.wblocks += blocks
        else:
            self.rreq += 1
            self.rblocks += blocks
        start = max(self.sim.now, self._next_free) + self.seek_time
        finish = start + nbytes * 8.0 / self.throughput_bps
        self._next_free = finish
        ev = self.sim.event()
        ev.succeed(nbytes, delay=finish - self.sim.now)
        return ev

    def read(self, nbytes: int) -> Event:
        """Event firing when ``nbytes`` have been read."""
        return self._io(nbytes, write=False)

    def write(self, nbytes: int) -> Event:
        """Event firing when ``nbytes`` have been written."""
        return self._io(nbytes, write=True)
