"""Physical-memory accounting for a simulated machine.

Tracks explicit allocations (the SuperPI-like workload grabs ~150 MB, a
matmul worker holds its blocks) plus static *buffers*/*cached* filler so
the synthesized ``/proc/meminfo`` looks like the thesis' Table 4.1.
"""

from __future__ import annotations

import itertools

__all__ = ["Memory", "Allocation", "OutOfMemory"]

_alloc_ids = itertools.count(1)


class OutOfMemory(Exception):
    """Allocation would exceed physical memory."""


class Allocation:
    """Handle for one live allocation."""

    __slots__ = ("id", "nbytes", "owner", "live")

    def __init__(self, nbytes: int, owner: str):
        self.id = next(_alloc_ids)
        self.nbytes = nbytes
        self.owner = owner
        self.live = True

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Allocation #{self.id} {self.nbytes}B by {self.owner} {'live' if self.live else 'freed'}>"


class Memory:
    """Byte-accurate allocator with kernel baseline and page-cache filler."""

    def __init__(self, total_bytes: int, kernel_bytes: int = 24 << 20,
                 buffers_bytes: int = 18 << 20, cached_bytes: int = 80 << 20):
        if total_bytes <= 0:
            raise ValueError(f"total must be positive, got {total_bytes}")
        self.total = int(total_bytes)
        self.kernel = min(int(kernel_bytes), self.total // 4)
        # buffers+cached shrink under pressure, like a real page cache
        self._buffers_pref = int(buffers_bytes)
        self._cached_pref = int(cached_bytes)
        self._allocs: dict[int, Allocation] = {}
        self._app_bytes = 0

    # -- allocation ------------------------------------------------------------
    def alloc(self, nbytes: int, owner: str = "?") -> Allocation:
        nbytes = int(nbytes)
        if nbytes <= 0:
            raise ValueError(f"allocation must be positive, got {nbytes}")
        if self._app_bytes + self.kernel + nbytes > self.total:
            raise OutOfMemory(
                f"{owner} wants {nbytes}B, only "
                f"{self.total - self.kernel - self._app_bytes}B available"
            )
        handle = Allocation(nbytes, owner)
        self._allocs[handle.id] = handle
        self._app_bytes += nbytes
        return handle

    def free(self, handle: Allocation) -> None:
        if not handle.live:
            raise ValueError(f"double free of {handle!r}")
        handle.live = False
        del self._allocs[handle.id]
        self._app_bytes -= handle.nbytes

    # -- accounting ---------------------------------------------------------------
    @property
    def app_bytes(self) -> int:
        return self._app_bytes

    def snapshot(self) -> dict[str, int]:
        """total/used/free/shared/buffers/cached, 2.4-kernel style."""
        hard_used = self.kernel + self._app_bytes
        slack = self.total - hard_used
        # page cache fills what it can of the remaining space
        buffers = min(self._buffers_pref, max(0, slack))
        cached = min(self._cached_pref, max(0, slack - buffers))
        used = hard_used + buffers + cached
        free = self.total - used
        return {
            "total": self.total,
            "used": used,
            "free": free,
            "shared": 0,
            "buffers": buffers,
            "cached": cached,
        }
