"""Processor-sharing CPU model with Linux-style load averages.

Tasks submit an amount of *dedicated-CPU seconds*; all runnable tasks share
the processor equally (classic PS queue).  The scheduler is analytic: it
only recomputes on arrivals/departures, scheduling one completion event for
the earliest-finishing task and invalidating it by version number when the
active set changes.

Load averages follow the Linux semantics the thesis' probe reads from
``/proc/loadavg``: exponentially-damped averages of the run-queue length
over 1, 5 and 15 minutes.  We use the continuous-time closed form
``load(t+dt) = n + (load(t) - n) * exp(-dt/tau)`` updated lazily, which is
the limit of the kernel's 5-second sampling.

Cumulative busy/idle time feeds the ``cpu`` line of ``/proc/stat`` (in
USER_HZ jiffies) so the probe can compute CPU usage rates from deltas, as
the paper describes.
"""

from __future__ import annotations

import math

from ..sim import Event, Simulator

__all__ = ["CPU", "LoadAverage", "USER_HZ"]

USER_HZ = 100  # jiffies per second, as in /proc/stat

_LOAD_TAUS = (60.0, 300.0, 900.0)


class LoadAverage:
    """Continuous-time exponentially damped run-queue averages."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.values = [0.0, 0.0, 0.0]  # 1, 5, 15 minutes
        self._n = 0
        self._stamp = 0.0

    def _settle(self) -> None:
        dt = self.sim.now - self._stamp
        if dt > 0:
            for i, tau in enumerate(_LOAD_TAUS):
                decay = math.exp(-dt / tau)
                self.values[i] = self._n + (self.values[i] - self._n) * decay
            self._stamp = self.sim.now

    def set_runnable(self, n: int) -> None:
        self._settle()
        self._n = n

    def read(self) -> tuple[float, float, float]:
        self._settle()
        return tuple(self.values)  # type: ignore[return-value]


class _Task:
    __slots__ = ("remaining", "done_ev", "name")

    def __init__(self, remaining: float, done_ev: Event, name: str):
        self.remaining = remaining  # dedicated-CPU seconds still needed
        self.done_ev = done_ev
        self.name = name


class CPU:
    """Egalitarian processor-sharing CPU."""

    def __init__(self, sim: Simulator, name: str = "cpu"):
        self.sim = sim
        self.name = name
        self._tasks: list[_Task] = []
        self._stamp = 0.0      # time of last progress accounting
        self._version = 0      # invalidates stale completion events
        #: fail-slow factor: every task needs ``throttle`` wall seconds per
        #: dedicated-CPU second (1.0 = full rated speed).  The CPU stays
        #: *busy* the whole stretched time — a throttled host looks loaded,
        #: not idle, exactly like thermal throttling or a sick DIMM.
        self.throttle = 1.0
        self.loadavg = LoadAverage(sim)
        # cumulative jiffies for /proc/stat
        self._busy_seconds = 0.0
        self._boot_time = sim.now
        self.completed_tasks = 0

    # -- public API -----------------------------------------------------------
    @property
    def n_running(self) -> int:
        return len(self._tasks)

    def run(self, cpu_seconds: float, name: str = "task") -> Event:
        """Submit work needing ``cpu_seconds`` of dedicated CPU.

        Returns an event that fires (with the elapsed wall time) when the
        work completes under processor sharing.
        """
        if cpu_seconds < 0:
            raise ValueError(f"negative cpu_seconds {cpu_seconds}")
        done = self.sim.event()
        if cpu_seconds == 0:
            done.succeed(0.0)
            return done
        self._progress()
        self._tasks.append(_Task(cpu_seconds, done, name))
        self.loadavg.set_runnable(len(self._tasks))
        self._reschedule()
        return done

    def set_throttle(self, factor: float) -> None:
        """Change the fail-slow factor mid-run; in-flight tasks keep the
        progress they already made and finish at the new speed."""
        if factor < 1.0:
            raise ValueError(f"throttle factor must be >= 1, got {factor}")
        self._progress()
        self.throttle = float(factor)
        self._reschedule()

    def utilisation_seconds(self) -> float:
        """Cumulative busy time (any task runnable) since boot."""
        self._progress()
        return self._busy_seconds

    def stat_jiffies(self) -> tuple[int, int, int, int]:
        """(user, nice, system, idle) jiffies for the /proc/stat cpu line.

        The model does not distinguish user from system time; everything
        busy is accounted as user time, nice and system stay 0 — the probe
        only cares about the busy:idle ratio.
        """
        self._progress()
        elapsed = self.sim.now - self._boot_time
        busy = self._busy_seconds
        idle = max(0.0, elapsed - busy)
        return (int(busy * USER_HZ), 0, 0, int(idle * USER_HZ))

    # -- internals -----------------------------------------------------------
    def _progress(self) -> None:
        """Account work done since the last transition."""
        now = self.sim.now
        dt = now - self._stamp
        self._stamp = now
        n = len(self._tasks)
        if dt <= 0 or n == 0:
            return
        self._busy_seconds += dt
        share = dt / n / self.throttle
        for task in self._tasks:
            task.remaining -= share

    def _reschedule(self) -> None:
        """Schedule the completion of the earliest-finishing task."""
        self._version += 1
        if not self._tasks:
            return
        version = self._version
        n = len(self._tasks)
        soonest = min(task.remaining for task in self._tasks)
        delay = max(0.0, soonest * n * self.throttle)
        ev = self.sim.event()
        ev.add_callback(lambda _ev: self._on_completion(version))
        ev.succeed(delay=delay)

    def _on_completion(self, version: int) -> None:
        if version != self._version:
            return  # superseded by a later arrival/departure
        self._progress()
        eps = 1e-12
        finished = [t for t in self._tasks if t.remaining <= eps]
        self._tasks = [t for t in self._tasks if t.remaining > eps]
        self.loadavg.set_runnable(len(self._tasks))
        for task in finished:
            self.completed_tasks += 1
            task.done_ev.succeed(self.sim.now)
        self._reschedule()
