"""Background workload generators — the simulator's ``SuperPI``.

The thesis loads machines with *SuperPI* (parameter 25 → ~150 MB resident,
CPU pinned, ``load_1`` ≥ 1; Table 4.1 / §5.3.1 experiment 4).  The
:class:`SuperPiWorkload` reproduces those observables: it allocates the
memory up front and keeps exactly one runnable CPU task until stopped.

:class:`PeriodicDiskLoad` and :class:`NetworkChatter` exist for the
IO-bound selection scenarios and for cross-traffic in the bandwidth
experiments.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Interrupt, Simulator
from .machine import Machine

__all__ = ["SuperPiWorkload", "PeriodicDiskLoad", "CpuThrottle"]


class SuperPiWorkload:
    """CPU+memory hog with a SuperPI-flavoured parameterisation.

    ``digits_param`` mirrors SuperPI's power-of-two parameter; the thesis
    uses 25, which occupies ~150 MB.
    """

    #: bytes per unit of the SuperPI parameter (25 -> ~150 MB, per thesis)
    BYTES_PER_PARAM = 6 << 20

    def __init__(self, sim: Simulator, machine: Machine, digits_param: int = 25,
                 burst_cpu_seconds: float = 0.5):
        if digits_param <= 0:
            raise ValueError(f"digits_param must be positive, got {digits_param}")
        self.sim = sim
        self.machine = machine
        self.digits_param = digits_param
        self.burst = burst_cpu_seconds
        self.mem_bytes = digits_param * self.BYTES_PER_PARAM
        self._alloc = None
        self._proc = None
        self.bursts_done = 0

    @property
    def running(self) -> bool:
        return self._proc is not None and self._proc.is_alive

    def start(self) -> None:
        if self.running:
            raise RuntimeError("workload already running")
        # On machines with less RAM than the working set the real SuperPI
        # pushes pages to swap; the memory model has no swap, so clamp the
        # resident size to what physically fits (the observables that matter
        # — load_1 >= 1, CPU pinned, memory pressure — are preserved).
        mem = self.machine.memory
        snap = mem.snapshot()
        available = snap["free"] + snap["buffers"] + snap["cached"] - (8 << 20)
        resident = max(1 << 20, min(self.mem_bytes, available))
        self._alloc = mem.alloc(resident, owner="super_pi")
        self._proc = self.sim.process(self._spin(), name=f"superpi@{self.machine.name}")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")

    def _spin(self):
        try:
            while True:
                yield self.machine.cpu.run(self.burst, name="super_pi")
                self.bursts_done += 1
        except Interrupt:
            pass
        finally:
            if self._alloc is not None and self._alloc.live:
                self.machine.memory.free(self._alloc)
                self._alloc = None


class CpuThrottle:
    """Fail-slow fault: pin the CPU at ``1/factor`` of its rated speed.

    Unlike :class:`SuperPiWorkload` (which *competes* for the CPU and so
    shows up in the load average), a throttle models frequency scaling or
    a sick core: service times stretch by ``factor`` while the run queue
    and the probe's observables stay plausible — the host keeps
    heartbeating and reporting, it is just slow.  That is the gray
    failure a binary alive/dead detector cannot see.

    ``start``/``stop`` compose multiplicatively with whatever throttle is
    already programmed, so overlapping faults restore cleanly in LIFO
    order.
    """

    def __init__(self, sim: Simulator, machine: Machine, factor: float):
        if factor < 1.0:
            raise ValueError(f"throttle factor must be >= 1, got {factor}")
        self.sim = sim
        self.machine = machine
        self.factor = float(factor)
        self.active = False

    def start(self) -> None:
        if self.active:
            raise RuntimeError("throttle already applied")
        self.machine.cpu.set_throttle(self.machine.cpu.throttle * self.factor)
        self.active = True

    def stop(self) -> None:
        if not self.active:
            return
        self.machine.cpu.set_throttle(
            max(1.0, self.machine.cpu.throttle / self.factor)
        )
        self.active = False


class PeriodicDiskLoad:
    """Issues a disk write of ``nbytes`` every ``interval`` seconds."""

    def __init__(self, sim: Simulator, machine: Machine, nbytes: int = 1 << 20,
                 interval: float = 0.5, write: bool = True):
        self.sim = sim
        self.machine = machine
        self.nbytes = nbytes
        self.interval = interval
        self.write = write
        self._proc: Optional[object] = None

    def start(self) -> None:
        self._proc = self.sim.process(self._loop(), name=f"diskload@{self.machine.name}")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:  # type: ignore[attr-defined]
            self._proc.interrupt("stop")  # type: ignore[attr-defined]

    def _loop(self):
        try:
            while True:
                if self.write:
                    yield self.machine.disk.write(self.nbytes)
                else:
                    yield self.machine.disk.read(self.nbytes)
                yield self.sim.timeout(self.interval)
        except Interrupt:
            pass
