"""Host substrate: machines with CPUs, memory, disks and a synthetic /proc."""

from .cpu import CPU, LoadAverage, USER_HZ
from .disk import BLOCK_BYTES, Disk
from .machine import Machine
from .memory import Allocation, Memory, OutOfMemory
from .procfs import ProcFS
from .workload import CpuThrottle, PeriodicDiskLoad, SuperPiWorkload

__all__ = [
    "CPU",
    "LoadAverage",
    "USER_HZ",
    "Disk",
    "BLOCK_BYTES",
    "Machine",
    "Memory",
    "Allocation",
    "OutOfMemory",
    "ProcFS",
    "SuperPiWorkload",
    "PeriodicDiskLoad",
    "CpuThrottle",
]
