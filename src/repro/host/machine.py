"""A simulated Linux machine: CPU, memory, disk, bogomips and speeds.

Stands in for the thesis' physical testbed hosts (Table 5.1).  Two distinct
performance numbers matter:

* ``bogomips`` — what ``/proc/cpuinfo`` advertises and what the requirement
  language exposes as ``host_cpu_bogomips``;
* per-workload *speeds* — work units per dedicated-CPU-second for a named
  task kind.  The thesis' own benchmark (Fig 5.2) shows the P3-866 and
  P4-2.4 boxes beating the P4-1.6–1.8 ones at matmul despite lower/higher
  bogomips (cache effects), so the two must be independent knobs.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Simulator
from .cpu import CPU
from .disk import Disk
from .memory import Memory

__all__ = ["Machine"]


class Machine:
    """Compute resources of one host (the node/network side lives in
    :class:`repro.cluster.host.SmartHost`)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bogomips: float,
        mem_bytes: int,
        speeds: Optional[dict[str, float]] = None,
        os_name: str = "Linux 2.4",
        disk: Optional[Disk] = None,
        machine_type: str = "i386",
    ):
        if bogomips <= 0:
            raise ValueError(f"bogomips must be positive, got {bogomips}")
        self.sim = sim
        self.name = name
        self.bogomips = float(bogomips)
        self.os_name = os_name
        self.machine_type = machine_type
        self.cpu = CPU(sim, name=f"{name}.cpu")
        self.memory = Memory(mem_bytes)
        self.disk = disk if disk is not None else Disk(sim)
        #: work units per dedicated-CPU-second, by task kind
        self.speeds: dict[str, float] = {"generic": self.bogomips}
        if speeds:
            self.speeds.update(speeds)

    def speed(self, kind: str = "generic") -> float:
        """Work units per dedicated-CPU-second for ``kind``.

        Unknown kinds fall back to the generic bogomips-derived speed.
        """
        return self.speeds.get(kind, self.speeds["generic"])

    def compute(self, work_units: float, kind: str = "generic", name: str = "task"):
        """Event firing when ``work_units`` of ``kind`` work completes
        under the machine's processor-sharing CPU."""
        if work_units < 0:
            raise ValueError(f"negative work {work_units}")
        cpu_seconds = work_units / self.speed(kind)
        return self.cpu.run(cpu_seconds, name=name)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Machine {self.name} bogomips={self.bogomips:.0f}>"
