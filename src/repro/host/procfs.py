"""Synthesized ``/proc`` — the probe's only window into a machine.

The thesis' server probe extracts everything from five ``/proc`` nodes
(§4.1): ``loadavg``, ``stat`` (cpu + 2.4-style ``disk_io``), ``meminfo``,
``net/dev`` and (for bogomips) ``cpuinfo``.  To keep the reproduction
honest the probe does **not** peek at Python objects: this module renders
the machine state into the same text formats, and the probe parses the
text, exactly as it would on a real 2.4 kernel.
"""

from __future__ import annotations

from typing import Iterable, TYPE_CHECKING

from .cpu import USER_HZ
from .machine import Machine

if TYPE_CHECKING:  # pragma: no cover
    from ..net.nic import NIC

__all__ = ["ProcFS"]


class ProcFS:
    """Renders /proc file contents for one machine (+ its NICs)."""

    def __init__(self, machine: Machine, nics: Iterable["NIC"] = ()):
        self.machine = machine
        self.nics = list(nics)

    def attach_nics(self, nics: Iterable["NIC"]) -> None:
        self.nics = list(nics)

    # -- files ------------------------------------------------------------
    def read(self, path: str) -> str:
        """Dispatch like a tiny VFS."""
        table = {
            "/proc/loadavg": self.loadavg,
            "/proc/stat": self.stat,
            "/proc/meminfo": self.meminfo,
            "/proc/net/dev": self.net_dev,
            "/proc/cpuinfo": self.cpuinfo,
        }
        render = table.get(path)
        if render is None:
            raise FileNotFoundError(path)
        return render()

    def loadavg(self) -> str:
        l1, l5, l15 = self.machine.cpu.loadavg.read()
        running = self.machine.cpu.n_running
        # nprocs/last_pid are cosmetic
        return f"{l1:.2f} {l5:.2f} {l15:.2f} {running}/{64 + running} 1234\n"

    def stat(self) -> str:
        user, nice, system, idle = self.machine.cpu.stat_jiffies()
        d = self.machine.disk
        lines = [
            f"cpu  {user} {nice} {system} {idle}",
            f"cpu0 {user} {nice} {system} {idle}",
            # 2.4 format: disk_io: (major,minor):(allreq,rreq,rblocks,wreq,wblocks)
            f"disk_io: (3,0):({d.allreq},{d.rreq},{d.rblocks},{d.wreq},{d.wblocks})",
            f"ctxt {self.machine.cpu.completed_tasks * 17}",
            f"btime 0",
            f"processes {self.machine.cpu.completed_tasks}",
        ]
        return "\n".join(lines) + "\n"

    def meminfo(self) -> str:
        snap = self.machine.memory.snapshot()
        # 2.4 kernels emit both the byte table and the kB key:value list;
        # the probe parses the byte table (thesis Table 4.1 shows it).
        lines = [
            "        total:    used:    free:  shared: buffers:  cached:",
            (
                f"Mem:  {snap['total']} {snap['used']} {snap['free']} "
                f"{snap['shared']} {snap['buffers']} {snap['cached']}"
            ),
            "Swap: 0 0 0",
            f"MemTotal: {snap['total'] // 1024} kB",
            f"MemFree: {snap['free'] // 1024} kB",
            f"Buffers: {snap['buffers'] // 1024} kB",
            f"Cached: {snap['cached'] // 1024} kB",
        ]
        return "\n".join(lines) + "\n"

    def net_dev(self) -> str:
        header = (
            "Inter-|   Receive                                                |"
            "  Transmit\n"
            " face |bytes    packets errs drop fifo frame compressed multicast|"
            "bytes    packets errs drop fifo colls carrier compressed\n"
        )
        rows = []
        for nic in self.nics:
            rows.append(
                f"{nic.name:>6}:{nic.rx_bytes:8d} {nic.rx_packets:7d}"
                f"    0    0    0     0          0         0"
                f" {nic.tx_bytes:8d} {nic.tx_packets:7d}    0"
                f" {nic.tx_drops:4d}    0     0       0          0"
            )
        rows.append(
            f"{'lo':>6}:       0       0    0    0    0     0          0         0"
            f"        0       0    0    0    0     0       0          0"
        )
        return header + "\n".join(rows) + "\n"

    def cpuinfo(self) -> str:
        m = self.machine
        return (
            "processor\t: 0\n"
            "vendor_id\t: GenuineIntel\n"
            f"model name\t: Simulated CPU ({m.name})\n"
            f"bogomips\t: {m.bogomips:.2f}\n"
        )

    @staticmethod
    def jiffies_to_seconds(j: int) -> float:
        return j / USER_HZ
