"""Adaptive suspicion detection (beyond the thesis — gray failures).

The binary detectors of the HA layer (fixed request timeout, fixed lease
deadline) only see *dead* peers.  A fail-slow peer — throttled CPU, sick
link — answers every probe just before the deadline and is never caught.
This module supplies the adaptive alternative, built from two
constant-memory estimators:

* :class:`Ewma` — exponentially-weighted mean and variance of a latency
  series (the phi-accrual failure detector's sliding window, collapsed
  to O(1) state);
* :class:`IncrementalQuantile` — the P² algorithm of Jain & Chlamtac
  (the incremental-quantile-estimation line in PAPERS.md): a running
  p-quantile estimate from five markers, no samples stored.

:class:`SuspicionDetector` combines them per peer.  ``phi(peer,
elapsed)`` is the phi-accrual suspicion score: ``-log10`` of the
probability that a healthy peer would keep us waiting ``elapsed``
seconds, under a normal model of the recorded samples (with a floored
sigma so a too-regular baseline does not hair-trigger).  phi = 1 means
"90 % sure it is sick", phi = 2 "99 %", and so on — callers pick a
threshold instead of a timeout, and the threshold *adapts* because the
model follows the measured baseline.

Everything here is pure arithmetic on caller-supplied samples: no RNG,
no simulator events — determinism for free.
"""

from __future__ import annotations

import math

__all__ = ["Ewma", "IncrementalQuantile", "SuspicionDetector"]

#: phi is capped here: beyond it the tail probability underflows and the
#: exact value carries no information ("the peer is definitely sick")
PHI_MAX = 16.0


class Ewma:
    """Exponentially-weighted running mean and variance (West 1979)."""

    def __init__(self, alpha: float = 0.25):
        if not (0.0 < alpha <= 1.0):
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.n = 0
        self.mean = 0.0
        self.var = 0.0

    def record(self, x: float) -> None:
        self.n += 1
        if self.n == 1:
            self.mean = x
            self.var = 0.0
            return
        diff = x - self.mean
        incr = self.alpha * diff
        self.mean += incr
        self.var = (1.0 - self.alpha) * (self.var + diff * incr)

    @property
    def std(self) -> float:
        return math.sqrt(max(0.0, self.var))


class IncrementalQuantile:
    """P² incremental quantile estimation (Jain & Chlamtac 1985).

    Five markers track the minimum, the p/2, p and (1+p)/2 quantiles and
    the maximum; marker heights move by piecewise-parabolic interpolation
    as samples arrive.  Memory is O(1) and the estimate converges to the
    true quantile without storing the series — exactly what a per-peer
    latency baseline inside a long-lived client needs.
    """

    def __init__(self, p: float = 0.95):
        if not (0.0 < p < 1.0):
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p,
                         3.0 + 2.0 * p, 5.0]
        self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
        self.n = 0

    def record(self, x: float) -> None:
        self.n += 1
        if len(self._heights) < 5:
            self._heights.append(x)
            self._heights.sort()
            return
        q = self._heights
        # locate the cell and bump the marker positions above it
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            self._positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # adjust the three interior markers
        for i in (1, 2, 3):
            d = self._desired[i] - self._positions[i]
            np_, pp = self._positions[i + 1], self._positions[i - 1]
            here = self._positions[i]
            if (d >= 1.0 and np_ - here > 1.0) or \
                    (d <= -1.0 and pp - here < -1.0):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = self._linear(i, step)
                self._positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        q, pos = self._heights, self._positions
        return q[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step) * (q[i + 1] - q[i])
            / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step) * (q[i] - q[i - 1])
            / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        q, pos = self._heights, self._positions
        j = i + int(step)
        return q[i] + step * (q[j] - q[i]) / (pos[j] - pos[i])

    def value(self) -> float:
        """Current quantile estimate (interpolated before 5 samples)."""
        if not self._heights:
            raise ValueError("no samples recorded")
        q = self._heights
        if len(q) < 5:
            # nearest-rank on the sorted partial window
            idx = min(len(q) - 1, int(math.ceil(self.p * len(q))) - 1)
            return q[max(0, idx)]
        return q[2]


class _PeerStats:
    __slots__ = ("ewma", "quantile")

    def __init__(self, alpha: float, p: float):
        self.ewma = Ewma(alpha)
        self.quantile = IncrementalQuantile(p)


class SuspicionDetector:
    """Per-peer adaptive latency baselines + phi-accrual suspicion.

    ``record(peer, sample)`` feeds one latency observation (a request
    RTT, an inter-progress gap).  ``baseline(peer)`` is the running
    p-quantile once ``min_samples`` observations have landed (``None``
    before — callers fall back to their fixed timeout, so cold starts
    behave exactly like the binary detector).  ``phi(peer, elapsed)``
    scores how suspicious ``elapsed`` seconds of silence is, and
    ``slow_peers(peers)`` names the peers whose baseline has drifted
    ``demote_factor`` times above the fleet's best — the demotion signal
    for failover rankings.
    """

    def __init__(self, *, alpha: float = 0.25, quantile: float = 0.95,
                 min_samples: int = 5, sigma_floor_frac: float = 0.2,
                 sigma_floor_abs: float = 1e-4):
        self.alpha = alpha
        self.quantile = quantile
        self.min_samples = max(1, int(min_samples))
        self.sigma_floor_frac = sigma_floor_frac
        self.sigma_floor_abs = sigma_floor_abs
        self._peers: dict[str, _PeerStats] = {}

    def _stats(self, peer: str) -> _PeerStats:
        stats = self._peers.get(peer)
        if stats is None:
            stats = self._peers[peer] = _PeerStats(self.alpha, self.quantile)
        return stats

    # -- feeding -------------------------------------------------------------
    def record(self, peer: str, sample: float) -> None:
        if sample < 0.0:
            raise ValueError(f"negative latency sample {sample}")
        stats = self._stats(peer)
        stats.ewma.record(sample)
        stats.quantile.record(sample)

    def forget(self, peer: str) -> None:
        """Drop a peer's baseline (e.g. after it was replaced)."""
        self._peers.pop(peer, None)

    # -- reading -------------------------------------------------------------
    def samples(self, peer: str) -> int:
        stats = self._peers.get(peer)
        return stats.ewma.n if stats is not None else 0

    def mean(self, peer: str) -> float:
        stats = self._peers.get(peer)
        return stats.ewma.mean if stats is not None else 0.0

    def baseline(self, peer: str):
        """The peer's latency baseline, or ``None`` while cold.

        The P² quantile alone converges too slowly *downward* after a
        regime shift — its max marker never decays, so a peer that was
        sick once would carry the high estimate (and its demotion)
        forever.  The baseline is therefore capped by the EWMA envelope
        ``mean + 2*sigma``, which follows regime shifts within a few
        samples: steady state and upward shifts are still judged by the
        quantile (the envelope sits above it), recovery by the envelope.
        """
        stats = self._peers.get(peer)
        if stats is None or stats.ewma.n < self.min_samples:
            return None
        return min(stats.quantile.value(),
                   stats.ewma.mean + 2.0 * stats.ewma.std)

    def _sigma(self, stats: _PeerStats) -> float:
        return max(stats.ewma.std,
                   self.sigma_floor_frac * abs(stats.ewma.mean),
                   self.sigma_floor_abs)

    def phi(self, peer: str, elapsed: float) -> float:
        """Phi-accrual suspicion that ``elapsed`` seconds without an
        answer is abnormal: ``-log10 P(latency >= elapsed)`` under a
        normal fit of the recorded samples.  0 while cold — a detector
        with no baseline suspects nobody."""
        stats = self._peers.get(peer)
        if stats is None or stats.ewma.n < self.min_samples:
            return 0.0
        z = (elapsed - stats.ewma.mean) / self._sigma(stats)
        # normal tail via erfc: P(X >= elapsed) = erfc(z / sqrt(2)) / 2
        tail = 0.5 * math.erfc(z / math.sqrt(2.0))
        if tail <= 10.0 ** (-PHI_MAX):
            return PHI_MAX
        return min(PHI_MAX, -math.log10(tail))

    def slow_peers(self, peers, demote_factor: float = 3.0) -> set[str]:
        """Peers whose baseline exceeds ``demote_factor`` times the best
        warm baseline of ``peers``.  Empty while fewer than two peers are
        warm — demotion is a *relative* judgement."""
        warm = {}
        for peer in peers:
            b = self.baseline(peer)
            if b is not None:
                warm[peer] = b
        if len(warm) < 2:
            return set()
        best = min(warm.values())
        floor = max(best, self.sigma_floor_abs)
        return {p for p, b in warm.items() if b > demote_factor * floor}
