"""The wizard: the user-request handler (thesis §3.6.1).

A UDP daemon on port 1120 processing requests sequentially:

1. receive ``[seq, server_num, option, request_detail]`` (Table 3.5);
2. refresh the status structures — in *centralized* mode they are already
   hot in shared memory; in *distributed* mode trigger the receiver to
   pull fresh snapshots from every transmitter;
3. compile the requirement — lex + parse (with line-level error
   recovery), statically analyze and constant-fold it, all served from an
   LRU :class:`~repro.lang.analysis.CompileCache` keyed by the text; a
   provably-unsatisfiable requirement is **NAKed with its diagnostics
   before the status DB is read** (``requests_rejected_static``), and on
   the accept path the folded AST is evaluated against each server's
   status record; a server qualifies iff every logical statement holds;
4. apply the user-side slots: denied hosts are removed, preferred hosts
   are moved to the front of the candidate list;
5. reply ``[seq, server_num, server...]`` (Table 3.6) capped at 60 hosts.

Options (the Table 3.5 ``Option`` field):

* ``""``           — default;
* ``"rank:<var>"`` or ``"rank:<var>:asc"`` — order candidates by a status
  variable (thesis §6 wants "3 servers with largest memory": use
  ``rank:host_memory_free``); descending unless ``:asc``.

Failure hardening (beyond the thesis): a malformed option or a request
that blows up mid-match never kills the daemon — the wizard answers an
empty-but-well-formed reply and counts the incident
(:attr:`option_errors` / :attr:`request_errors`); a failed distributed
pull falls back to last-known-good databases; and every record is given
a ``host_status_age`` parameter (seconds since its monitor last wrote
it) so requirements can demand fresh data with ``host_status_age < 10``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..lang import evaluate
from ..lang.analysis import CompileCache, CompiledRequirement
from ..lang.errors import LangError
from ..net.tcp import ConnectError, ConnectionClosed
from ..sim import Interrupt, SharedMemory, Simulator
from .config import Config, DEFAULT_CONFIG, Mode
from .records import (
    REPLY_NAK,
    REPLY_OK,
    REPLY_STALE,
    NetStatusRecord,
    SecurityRecord,
    ServerStatusRecord,
    WireDiagnostic,
)
from .receiver import Receiver

__all__ = ["Wizard", "WizardRequest", "WizardReply", "Candidate"]

#: assumed metrics inside one group: "in the local area network, the
#: bandwidth and delay is sufficient for most applications" (§3.3.3)
LOCAL_DELAY_MS = 0.2
LOCAL_BW_MBPS = 100.0


@dataclass(frozen=True)
class WizardRequest:
    """Wire format of Table 3.5."""

    seq: int
    server_num: int
    option: str
    detail: str

    @property
    def wire_bytes(self) -> int:
        return 12 + len(self.option) + len(self.detail)


@dataclass(frozen=True)
class WizardReply:
    """Wire format of Table 3.6, extended with a status byte and a
    replica epoch.

    ``status == REPLY_NAK`` means the static analyzer proved the
    requirement unsatisfiable: no status DB was scanned, ``servers`` is
    empty and ``diagnostics`` carries the analyzer findings so the client
    can show *why* instead of retrying a hopeless spec.
    ``status == REPLY_STALE`` means this replica's status feed died (its
    freshest DB is older than ``config.wizard_staleness_limit``): the
    client should fail over to a healthier replica instead of acting on
    ancient data.  ``epoch`` is the sim time of the replica's freshest
    applied snapshot — clients rank replicas by it so requests prefer
    the wizard with the most recent view of the world.
    """

    seq: int
    servers: tuple[str, ...]
    status: int = REPLY_OK
    diagnostics: tuple[WireDiagnostic, ...] = ()
    #: replica epoch: sim time of the freshest DB snapshot behind this
    #: reply (0 when the wizard runs without a receiver).  Measured on
    #: the *replica's* clock, so a skewed host advertises a skewed epoch.
    epoch: float = 0.0
    #: age in seconds of that freshest snapshot at reply time (-1 when
    #: unknown).  A *relative* quantity: offsets cancel when the replica
    #: measures now and the stamp on the same (possibly skewed) clock, so
    #: clients rank replicas by this instead of trusting ``epoch``.
    freshness_age: float = -1.0

    @property
    def is_nak(self) -> bool:
        return self.status == REPLY_NAK

    @property
    def is_stale(self) -> bool:
        return self.status == REPLY_STALE

    @property
    def server_num(self) -> int:
        return len(self.servers)

    @property
    def wire_bytes(self) -> int:
        # the status flag rides in the sign bit of the server_num header
        # field (a NAK always has server_num == 0) and the epoch reuses
        # the reserved half of the 8-byte header, so OK replies cost
        # exactly what the thesis' Table 3.6 format costs
        return (8 + sum(len(s) + 1 for s in self.servers)
                + sum(d.wire_bytes for d in self.diagnostics))


@dataclass
class Candidate:
    """One qualified server with everything the ranking step needs."""

    addr: str
    host: str
    params: dict[str, float] = field(default_factory=dict)
    preferred: bool = False


class Wizard:
    """The request-handling daemon."""

    #: resident size, thesis Table 5.2 (96 KB)
    RESIDENT_BYTES = 96 * 1024

    def __init__(
        self,
        sim: Simulator,
        stack,
        shm: SharedMemory,
        config: Config = DEFAULT_CONFIG,
        mode: Optional[str] = None,
        receiver: Optional[Receiver] = None,
    ):
        self.sim = sim
        self.stack = stack
        self.shm = shm
        self.config = config
        self.mode = mode or config.mode
        self.receiver = receiver
        if self.mode == Mode.DISTRIBUTED and receiver is None:
            raise ValueError("distributed wizard needs its receiver to trigger pulls")
        #: /24 prefix -> group name, for mapping request sources and servers
        self.group_prefixes: dict[str, str] = {}
        self.default_group = "default"
        self._proc = None
        #: analyzed + folded ASTs keyed by requirement text (LRU)
        self.compile_cache = CompileCache(maxsize=config.compile_cache_size)
        self.requests_handled = 0
        self.parse_failures = 0
        self.option_errors = 0
        self.request_errors = 0
        self.pull_failures = 0
        #: requests NAKed by the static pre-flight (no DB scan performed)
        self.requests_rejected_static = 0
        #: requests answered REPLY_STALE because the status feed died
        self.requests_rejected_stale = 0
        self.bytes_in = 0
        self.bytes_out = 0
        #: memoized candidate scan order (see :meth:`_candidate_order`)
        self._order: list[str] = []
        self._order_keys: Optional[frozenset[str]] = None
        self._order_epoch = -1.0
        #: requests that reused the memoized order instead of re-sorting
        self.db_sort_reuses = 0

    # -- configuration ------------------------------------------------------
    def register_group(self, prefix: str, group: str) -> None:
        """Map a /24 prefix (e.g. ``192.168.3``) to a server-group name."""
        self.group_prefixes[prefix] = group

    def group_of(self, addr: str) -> str:
        prefix = addr.rsplit(".", 1)[0]
        return self.group_prefixes.get(prefix, self.default_group)

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        sock = self.stack.udp_socket(self.config.ports.wizard)
        self._proc = self.sim.process(self._serve(sock), name="wizard")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")

    def _serve(self, sock):
        try:
            while True:
                dgram = yield sock.recv()
                if not isinstance(dgram.payload, WizardRequest):
                    continue
                request: WizardRequest = dgram.payload
                self.bytes_in += request.wire_bytes
                if self.mode == Mode.DISTRIBUTED:
                    try:
                        yield from self.receiver.pull_all()
                    except Interrupt:
                        raise
                    except (ConnectError, ConnectionClosed):
                        # degraded mode: answer from last-known-good data
                        self.pull_failures += 1
                try:
                    reply = yield from self._process(request, client_addr=dgram.src)
                except Interrupt:
                    raise
                except (LangError, ValueError, KeyError):
                    # expected per-request failures only — a malformed
                    # requirement, an out-of-protocol field, a record that
                    # does not parse.  Never stall the requester: an
                    # empty-but-well-formed reply lets the client fail fast
                    # or retry elsewhere.  Anything else (a kernel bug, a
                    # broken daemon) propagates and fails the run loudly.
                    self.request_errors += 1
                    reply = WizardReply(seq=request.seq, servers=())
                sock.sendto(dgram.src, dgram.sport, size=reply.wire_bytes, payload=reply)
                self.bytes_out += reply.wire_bytes
                self.requests_handled += 1
        except Interrupt:
            pass
        finally:
            sock.close()  # free the port so a restarted wizard can bind

    # -- databases ---------------------------------------------------------------
    def _read_segment(self, key: int):
        seg = self.shm.segment(key)
        yield seg.lock.acquire()
        try:
            # full snapshot copy per request; replacing this with delta
            # shipping + epoch reconciliation is the fleet-scaling item
            # in ROADMAP.md ("Scale the wizard to fleet-sized traffic")
            return dict(seg.read() or {})  # repro: noqa[REPRO501]
        finally:
            seg.lock.release()

    def databases(self):
        """Process generator -> (sysdb, netdb, secdb) snapshots."""
        shm_keys = self.config.shm
        sysdb: dict[str, ServerStatusRecord] = yield from self._read_segment(
            shm_keys.wizard_system
        )
        netdb: dict[str, NetStatusRecord] = yield from self._read_segment(
            shm_keys.wizard_network
        )
        secdb: dict[str, SecurityRecord] = yield from self._read_segment(
            shm_keys.wizard_security
        )
        return sysdb, netdb, secdb

    def _candidate_order(self, sysdb: dict) -> list:
        """Sorted scan order over the system DB, memoized per DB epoch.

        The sequential-scan order of Fig 1.4 depends only on the *key
        set* of the DB, which changes at status-report rate (seconds),
        not at request rate — re-sorting per request was the REPRO500
        linear-scan finding.  Two-level invalidation: the receiver
        epoch gives an O(1) freshness check in distributed mode (a new
        snapshot always advances it); when that is unavailable or
        stale, a key-set comparison (still O(n), but allocation-free
        and far cheaper than a sort) decides whether the cached order
        survives.  ``db_sort_reuses`` counts the requests that skipped
        the sort."""
        epoch = self.receiver.epoch() if self.receiver is not None else -1.0
        if self._order_keys is not None:
            if ((epoch > 0.0 and self._order_epoch == epoch)
                    or self._order_keys == sysdb.keys()):
                self.db_sort_reuses += 1
                self._order_epoch = epoch
                return self._order
        self._order = sorted(sysdb)
        self._order_keys = frozenset(self._order)
        self._order_epoch = epoch
        return self._order

    # -- matching ------------------------------------------------------------------
    @property
    def compile_cache_hits(self) -> int:
        return self.compile_cache.hits

    @property
    def compile_cache_misses(self) -> int:
        return self.compile_cache.misses

    def _nak_reply(self, request: WizardRequest,
                   compiled: CompiledRequirement) -> WizardReply:
        diags = tuple(
            WireDiagnostic.from_diagnostic(d) for d in compiled.diagnostics
        )
        return WizardReply(seq=request.seq, servers=(), status=REPLY_NAK,
                           diagnostics=diags)

    @property
    def epoch(self) -> float:
        """Replica epoch stamped on every reply: sim time of the freshest
        DB snapshot this wizard's receiver applied (0 without one)."""
        return self.receiver.epoch() if self.receiver is not None else 0.0

    @property
    def freshness_age(self) -> float:
        """Age of the freshest DB snapshot (-1 when unknown).  Relative —
        skew offsets cancel — so replies stay comparable across replicas
        with disagreeing clocks."""
        if self.receiver is None:
            return -1.0
        age = self.receiver.min_freshness_age()
        return age if age != float("inf") else -1.0

    @property
    def suspected_skew(self) -> int:
        """Snapshots whose reporter clock disagreed with this replica's
        beyond ``config.skew_tolerance`` (receiver telemetry)."""
        return self.receiver.suspected_skew if self.receiver is not None else 0

    def _is_stale(self) -> bool:
        """True when the whole status feed died: the freshest database is
        older than ``config.wizard_staleness_limit``.  A single lagging
        DB type does not trip this — only a replica that lost its
        receiver or every transmitter path should turn clients away."""
        limit = self.config.wizard_staleness_limit
        if limit == float("inf") or self.receiver is None:
            return False
        return self.receiver.min_freshness_age() > limit

    def _process(self, request: WizardRequest, client_addr: str):
        # static pre-flight: a provably-unsatisfiable requirement is NAKed
        # with its diagnostics before the status DB is even read
        compiled = self.compile_cache.get_or_compile(request.detail)
        if compiled.unsatisfiable:
            self.requests_rejected_static += 1
            return self._nak_reply(request, compiled)
        # staleness pre-flight: a replica whose feed died sends the
        # client to a fresher replica instead of serving ancient data
        if self._is_stale():
            self.requests_rejected_stale += 1
            return WizardReply(seq=request.seq, servers=(),
                               status=REPLY_STALE, epoch=self.epoch,
                               freshness_age=self.freshness_age)
        sysdb, netdb, secdb = yield from self.databases()
        servers = self.match(request, client_addr, sysdb, netdb, secdb,
                             compiled=compiled)
        return WizardReply(seq=request.seq, servers=tuple(servers),
                           epoch=self.epoch,
                           freshness_age=self.freshness_age)

    def match(
        self,
        request: WizardRequest,
        client_addr: str,
        sysdb: dict[str, ServerStatusRecord],
        netdb: dict[str, NetStatusRecord],
        secdb: dict[str, SecurityRecord],
        compiled: Optional[CompiledRequirement] = None,
    ) -> list[str]:
        """Pure matching logic (also unit-testable without the daemon)."""
        if compiled is None:
            compiled = self.compile_cache.get_or_compile(request.detail)
        if compiled.parse_failed:
            self.parse_failures += 1
            return []
        if compiled.unsatisfiable:
            # statically false: no record can qualify, skip the scan
            return []
        program = compiled.folded
        client_group = self.group_of(client_addr)
        candidates: list[Candidate] = []
        denied: set[str] = set()
        # insertion-ordered membership set: first-seen preference order is
        # preserved (the old list kept it too) but lookups are O(1) —
        # list membership here was the REPRO505 quadratic-scan finding
        preferred: dict[str, None] = {}
        # scan networks sequentially (Fig 1.4); order memoized per epoch
        for addr in self._candidate_order(sysdb):
            record = sysdb[addr]
            params = self._params_for(record, client_group, netdb, secdb)
            result = evaluate(program, params)
            if result.env is not None:
                denied.update(result.env.denied_hosts())
                for p in result.env.preferred_hosts():
                    preferred.setdefault(p)
            if result.qualified:
                candidates.append(
                    Candidate(addr=addr, host=record.host, params=params)
                )
        # blacklist: match on hostname or address
        candidates = [
            c for c in candidates if c.host not in denied and c.addr not in denied
        ]
        # preference: stable partition, preferred first
        for c in candidates:
            c.preferred = c.host in preferred or c.addr in preferred
        candidates.sort(key=lambda c: (not c.preferred,))
        candidates = self._apply_option(request.option, candidates)
        limit = min(request.server_num, self.config.max_reply_servers)
        return [c.addr for c in candidates[:limit]]

    def _params_for(
        self,
        record: ServerStatusRecord,
        client_group: str,
        netdb: dict[str, NetStatusRecord],
        secdb: dict[str, SecurityRecord],
    ) -> dict[str, float]:
        params = dict(record.report.values)
        params.update(record.report.extras)  # §6 string attributes
        # derived freshness metric: how long ago the server's own monitor
        # wrote this record (max with 0 guards distributed-mode snapshots
        # whose transfer makes updated_at slightly "newer" than arrival).
        # Measured on the monotonic clock — the receiver rebased every
        # reporter stamp onto it, so neither a skewed reporter nor a skew
        # step on this host can corrupt the age (relative epochs).
        params["host_status_age"] = max(0.0, record.age(self.sim.now))
        sec = secdb.get(record.host)
        if sec is not None:
            params["host_security_level"] = float(sec.level)
        server_group = record.report.group
        if server_group == client_group:
            params["monitor_network_delay"] = LOCAL_DELAY_MS
            params["monitor_network_bw"] = LOCAL_BW_MBPS
        else:
            # combine both probing directions conservatively: the usable
            # bandwidth of the path is the minimum of what either group's
            # monitor saw (an egress shaper on the server side is only
            # visible to the server group's own outbound probes)
            metrics = []
            fwd_table = netdb.get(client_group)
            if fwd_table is not None:
                m = fwd_table.metrics.get(server_group)
                if m is not None:
                    metrics.append(m)
            rev_table = netdb.get(server_group)
            if rev_table is not None:
                m = rev_table.metrics.get(client_group)
                if m is not None:
                    metrics.append(m)
            if metrics:
                params["monitor_network_delay"] = min(m.delay_ms for m in metrics)
                params["monitor_network_bw"] = min(m.bw_mbps for m in metrics)
            # else: leave undefined -> requirements on them evaluate false
        return params

    def _apply_option(
        self, option: str, candidates: list[Candidate]
    ) -> list[Candidate]:
        """Apply the Table 3.5 option string.  Never raises: a malformed
        option (empty variable, unknown verb, non-numeric rank values) is
        counted in :attr:`option_errors` and the candidates pass through
        unranked — a bad option must not take the whole wizard down."""
        option = (option or "").strip()
        if not option:
            return candidates
        if not option.startswith("rank:"):
            self.option_errors += 1  # unknown verb: ignore (fwd compat)
            return candidates
        parts = option.split(":")
        var = parts[1].strip() if len(parts) > 1 else ""
        ascending = len(parts) > 2 and parts[2].strip() == "asc"
        if not var:
            self.option_errors += 1  # "rank:" with no variable
            return candidates
        missing = float("inf") if ascending else float("-inf")

        def keyfn(c: Candidate):
            val = c.params.get(var, missing)
            if not isinstance(val, (int, float)):
                val = missing  # string attribute (§6 extras): unrankable
            return (not c.preferred, val if ascending else -val)

        if not any(isinstance(c.params.get(var), (int, float)) for c in candidates):
            if candidates:
                self.option_errors += 1  # var rankable in no candidate
            return candidates
        return sorted(candidates, key=keyfn)
