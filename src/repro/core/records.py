"""Status records and their wire encodings.

Two deliberately different encodings, as in the thesis:

* **probe → system monitor** (§3.2.1): the report travels as an ASCII
  ``key=value`` string (~200 bytes).  "Transmitting numbers as strings will
  require larger memory than ... binary format.  However, the advantage is
  that the probes can run on both ... Big Endian ... and Little Endian"
  machines.
* **transmitter → receiver** (§3.5.1): records cross in *binary*
  ``[type, size, data]`` messages because a monitor may handle many servers
  and "binary to ASCII conversion is resource consuming".  The simulator
  carries the Python objects but accounts the documented 204 bytes per
  server record for sizing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..lang.variables import MONITOR_VARS, SERVER_SIDE_VARS

__all__ = [
    "ServerStatusReport",
    "ServerStatusRecord",
    "NetMetric",
    "NetStatusRecord",
    "SecurityRecord",
    "WireMessage",
    "WireDiagnostic",
    "MSG_SYSDB",
    "MSG_NETDB",
    "MSG_SECDB",
    "MSG_PULL",
    "REPLY_OK",
    "REPLY_NAK",
    "REPLY_STALE",
    "SERVER_RECORD_BYTES",
    "WIRE_TAG_HANDLERS",
]

#: thesis §5.2: "Each probe message will be parsed into a server status
#: structure, which is 204 bytes long."
SERVER_RECORD_BYTES = 204

# Import-time mirror of the analyzer's REPRO204 rule: the record must hold
# one 8-byte slot per server-side variable plus the 24-byte header, so
# growing SERVER_SIDE_VARS without re-sizing the record fails immediately.
# An explicit raise, not an assert: asserts vanish under ``python -O`` and
# this guard must hold in every interpreter mode.
def _verify_record_floor(record_bytes: int, n_vars: int) -> None:
    if record_bytes < 8 * n_vars + 24:
        raise RuntimeError(
            f"SERVER_RECORD_BYTES={record_bytes} cannot hold "
            f"{n_vars} 8-byte variables + 24-byte header"
        )


_verify_record_floor(SERVER_RECORD_BYTES, len(SERVER_SIDE_VARS))

MSG_SYSDB = 1
MSG_NETDB = 2
MSG_SECDB = 3
MSG_PULL = 4  # distributed-mode snapshot request

#: wizard reply status (Table 3.6 extension): OK carries servers, NAK
#: carries the static-analysis diagnostics that rejected the request, and
#: STALE means this replica's status DBs exceeded the configured
#: staleness limit — the client should fail over to a fresher replica
REPLY_OK = 0
REPLY_NAK = 1
REPLY_STALE = 2

#: live handler registry: every wire tag defined above names the dotted
#: paths that consume it.  The REPRO302 analyzer rule cross-checks any
#: ``MSG_``/``REPLY_`` constant against this table — a tag that is sent
#: but never handled is a protocol hole, caught at lint time instead of
#: as a silent hang in a chaos run.  tests/core verify the paths resolve.
WIRE_TAG_HANDLERS: dict[str, tuple[str, ...]] = {
    "MSG_SYSDB": ("repro.core.receiver.Receiver._apply",),
    "MSG_NETDB": ("repro.core.receiver.Receiver._apply",),
    "MSG_SECDB": ("repro.core.receiver.Receiver._apply",),
    "MSG_PULL": ("repro.core.transmitter.Transmitter._session",
                 "repro.core.receiver.Receiver.pull_all"),
    "REPLY_OK": ("repro.core.client.SmartClient.request_servers",),
    "REPLY_NAK": ("repro.core.client.SmartClient.request_servers",
                  "repro.core.wizard.WizardReply.is_nak"),
    "REPLY_STALE": ("repro.core.client.SmartClient.request_servers",
                    "repro.core.wizard.WizardReply.is_stale"),
}

#: declared request–reply exchange of the wizard round trip, enforced
#: statically by ``repro check --proto``: a site constructing
#: ``WizardRequest`` must dispatch every non-default reply tag
#: (REPRO603), and this literal must stay in lockstep with both the
#: analyzer registry and the ``REPLY_*`` rows of
#: :data:`WIRE_TAG_HANDLERS` (REPRO606)
WIZARD_EXCHANGE: dict[str, object] = {
    "name": "wizard",
    "request": "WizardRequest",
    "replies": ("REPLY_OK", "REPLY_NAK", "REPLY_STALE"),
    "default": "REPLY_OK",
}


def _verify_wire_tag_registry(handlers: dict[str, tuple[str, ...]],
                              exported: "list[str] | tuple[str, ...]") -> None:
    """Raise if the handler registry drifted from the wire-tag constants.

    An explicit ``RuntimeError`` rather than an assert so the guard
    survives ``python -O`` — a drifted registry must never import.
    """
    expected = {name for name in exported
                if name.startswith(("MSG_", "REPLY_"))}
    missing = sorted(expected - set(handlers))
    extra = sorted(set(handlers) - expected)
    if missing or extra:
        raise RuntimeError(
            "WIRE_TAG_HANDLERS drifted from the wire-tag constants: "
            f"missing={missing} extra={extra}"
        )


_verify_wire_tag_registry(WIRE_TAG_HANDLERS, __all__)


@dataclass(frozen=True)
class WireDiagnostic:
    """Wire form of one analyzer :class:`~repro.lang.diagnostics.Diagnostic`
    as carried in a NAK reply: ``[code, severity, line, col, message]``."""

    code: str
    severity: str
    message: str
    line: int = 0
    col: int = 0

    @classmethod
    def from_diagnostic(cls, diag) -> "WireDiagnostic":
        return cls(code=diag.code, severity=diag.severity,
                   message=diag.message, line=diag.line, col=diag.col)

    @property
    def wire_bytes(self) -> int:
        # code + 1-byte severity flag + 2x2-byte span + message + NUL
        return len(self.code) + 1 + 4 + len(self.message) + 1

    def render(self, filename: str = "<requirement>") -> str:
        return (f"{filename}:{self.line}:{self.col}: "
                f"{self.severity} {self.code}: {self.message}")


@dataclass
class ServerStatusReport:
    """One probe scan, as sent over UDP by the server probe.

    ``values`` holds the 22 server-side variables keyed by their
    requirement-language names (units documented in
    :mod:`repro.lang.variables`).
    """

    host: str           # hostname
    addr: str           # primary address
    group: str          # server-group / network-monitor domain
    values: dict[str, float] = field(default_factory=dict)
    #: §6 extension: string-valued attributes ("machine_type=i386")
    extras: dict[str, str] = field(default_factory=dict)

    def to_wire(self) -> str:
        """ASCII encoding: ``host|addr|group|k=v ...[|k=s ...]``."""
        pairs = " ".join(
            f"{k}={_fmt_number(self.values[k])}" for k in sorted(self.values)
        )
        wire = f"{self.host}|{self.addr}|{self.group}|{pairs}"
        if self.extras:
            spairs = " ".join(f"{k}={self.extras[k]}" for k in sorted(self.extras))
            wire += f"|{spairs}"
        return wire

    @classmethod
    def from_wire(cls, text: str) -> "ServerStatusReport":
        parts = text.split("|")
        if len(parts) not in (4, 5):
            raise ValueError(f"malformed probe report: {text[:80]!r}")
        host, addr, group, rest = parts[:4]
        values: dict[str, float] = {}
        for pair in rest.split():
            key, sep, raw = pair.partition("=")
            if not sep or not key:
                raise ValueError(f"malformed pair {pair!r} in probe report")
            values[key] = float(raw)
        extras: dict[str, str] = {}
        if len(parts) == 5:
            for pair in parts[4].split():
                key, sep, raw = pair.partition("=")
                if not sep or not key:
                    raise ValueError(f"malformed string pair {pair!r}")
                extras[key] = raw
        return cls(host=host, addr=addr, group=group, values=values,
                   extras=extras)

    @property
    def wire_bytes(self) -> int:
        return len(self.to_wire())


def _fmt_number(x: float) -> str:
    """Compact numeric formatting (integers stay integral)."""
    if x == int(x) and abs(x) < 1e15:
        return str(int(x))
    return f"{x:.6g}"


@dataclass
class ServerStatusRecord:
    """Monitor-side record: a report plus its arrival timestamp (Fig 3.10)."""

    report: ServerStatusReport
    updated_at: float

    @property
    def addr(self) -> str:
        return self.report.addr

    @property
    def host(self) -> str:
        return self.report.host

    def age(self, now: float) -> float:
        return now - self.updated_at


@dataclass(frozen=True)
class NetMetric:
    """One (delay, bandwidth) measurement between two server groups."""

    delay_ms: float
    bw_mbps: float


@dataclass
class NetStatusRecord:
    """Network monitor table: metrics from ``group`` to each peer group
    (thesis Table 3.4)."""

    group: str
    metrics: dict[str, NetMetric] = field(default_factory=dict)
    updated_at: float = 0.0


@dataclass
class SecurityRecord:
    """Security monitor entry: clearance level of one host (§3.4.1)."""

    host: str
    level: int
    updated_at: float = 0.0


@dataclass
class WireMessage:
    """Binary ``[type, size, data]`` frame between transmitter and receiver.

    ``size`` is the *accounted* byte size used for network timing; ``data``
    is the live Python object (the simulator's stand-in for the memcpy'd
    struct array — legitimate because both ends are declared to share
    architecture, §3.5.1).
    """

    type: int
    size: int
    data: Any

    def __post_init__(self) -> None:
        if self.type not in (MSG_SYSDB, MSG_NETDB, MSG_SECDB, MSG_PULL):
            raise ValueError(f"unknown message type {self.type}")
        if self.size < 0:
            raise ValueError(f"negative size {self.size}")

    @staticmethod
    def sysdb(records: dict[str, ServerStatusRecord]) -> "WireMessage":
        return WireMessage(MSG_SYSDB, SERVER_RECORD_BYTES * len(records), records)

    @staticmethod
    def netdb(records: dict[str, NetStatusRecord]) -> "WireMessage":
        n_pairs = sum(len(r.metrics) for r in records.values())
        return WireMessage(MSG_NETDB, 32 * max(1, n_pairs), records)

    @staticmethod
    def secdb(records: dict[str, SecurityRecord]) -> "WireMessage":
        return WireMessage(MSG_SECDB, 24 * max(1, len(records)), records)

    @staticmethod
    def pull() -> "WireMessage":
        return WireMessage(MSG_PULL, 8, None)


# sanity: the requirement language and the reports must agree on names
_KNOWN = set(SERVER_SIDE_VARS) | set(MONITOR_VARS)


def validate_report_keys(report: ServerStatusReport) -> None:
    """Raise if a report carries keys the language does not define."""
    unknown = set(report.values) - _KNOWN
    if unknown:
        raise ValueError(f"report from {report.host} has unknown keys: {sorted(unknown)}")
