"""Receiver: reconstructs the status databases on the wizard machine
(thesis §3.5.2).

Incoming ``[type, size, data]`` messages are written into the wizard-side
shared-memory segments (keys 4321/5321/6321, Table 4.3) so the wizard "can
directly use the contents as if they were generated locally".  Because one
wizard may serve several server groups, each with its own transmitter, the
receiver merges per-source snapshots: a new sysdb from group A replaces
only A's previous contribution.

Failure hardening: a snapshot that arrives *partially* (the connection died
between messages) applies whatever bodies made it — the untouched message
types keep their last-known-good contents; distributed-mode pulls are
bounded by ``config.pull_timeout`` so a wedged transmitter degrades the
wizard to stale data instead of stalling it; and :meth:`staleness` exposes
how old each database is so callers can flag degraded answers.

Clock-skew tolerance (beyond the thesis): record timestamps inside a
snapshot were stamped by the *reporter's* wall clock, which a skew-clock
fault may have stepped minutes away from true time.  Each snapshot body
therefore carries the sender's clock reading at send time, and the
receiver judges freshness on *relative epochs* instead of trusting any
wall clock: every record timestamp is rebased to ``arrival - age``,
where the age is measured on the sender's own clock (``stamp -
updated_at`` — a skew offset cancels in the subtraction), and arrival is
this host's monotonic clock (``sim.now``, which no skew-clock fault can
step).  All interval bookkeeping (``staleness``, ``epoch``,
``min_freshness_age``, the wizard's ``host_status_age`` and REPLY_STALE)
then runs on the monotonic clock, so neither a skewed reporter nor a
skew step on the *receiver's own host* can make healthy data look stale.
The wall clocks are still compared: a sender stamp that disagrees with
this host's wall clock beyond ``config.skew_tolerance`` increments the
``suspected_skew`` counter — the gray-failure telemetry signal.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..net.tcp import ConnectError, ConnectionClosed
from ..sim import Interrupt, SharedMemory, Simulator, shared
from .config import Config, DEFAULT_CONFIG
from .records import MSG_NETDB, MSG_SECDB, MSG_SYSDB, WireMessage

__all__ = ["Receiver"]

#: resident size, thesis Table 5.2: the receiver "requires much more memory
#: space, because it maintains the status reports" — 92 KB
RESIDENT_BYTES = 92 * 1024


class Receiver:
    """Daemon on the wizard machine."""

    def __init__(
        self,
        sim: Simulator,
        stack,
        shm: SharedMemory,
        config: Config = DEFAULT_CONFIG,
        clock=None,
    ):
        self.sim = sim
        self.stack = stack
        self.shm = shm
        self.config = config
        #: the host's (possibly skewed) wall clock; None = true sim time
        self.clock = clock
        #: distributed mode: transmitter addresses to pull from
        self.transmitters: list[str] = []
        self._pull_conns: dict[str, object] = {}
        self._listener_proc = None
        self._sessions = []
        #: per-source contributions: src addr -> {msg_type: data}
        self._sources: dict[str, dict[int, dict]] = {}
        #: msg_type -> sim time of the last applied snapshot (staleness flag)
        self._updated_at: dict[int, float] = {}
        self.messages_received = 0
        self.pull_failures = 0
        self.pull_timeouts = 0
        #: snapshots whose sender clock disagreed with ours beyond
        #: ``config.skew_tolerance`` (their record stamps were rebased)
        self.suspected_skew = 0
        for key, db_name in ((config.shm.wizard_system, "wizard-sysdb"),
                             (config.shm.wizard_network, "wizard-netdb"),
                             (config.shm.wizard_security, "wizard-secdb")):
            shared(self.shm.segment(key), name=db_name).write({})

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Centralized mode: accept transmitter connections and apply pushes."""
        self._listener_proc = self.sim.process(self._listen(), name="receiver-listen")

    def stop(self) -> None:
        if self._listener_proc is not None and self._listener_proc.is_alive:
            self._listener_proc.interrupt("stop")
        for proc in self._sessions:
            if proc.is_alive:
                proc.interrupt("stop")

    def add_transmitter(self, addr: str) -> None:
        """Distributed mode: register a transmitter to pull from."""
        if addr not in self.transmitters:
            self.transmitters.append(addr)

    # -- data access -------------------------------------------------------------
    def _wall_now(self) -> float:
        """This host's wall-clock reading (skewed when a skew-clock fault
        is active); the simulator's true time without a clock.  Only used
        to *detect* reporter/receiver clock disagreement — every freshness
        interval is measured on the monotonic clock instead."""
        return self.clock.now() if self.clock is not None else self.sim.now

    def _segment_key(self, msg_type: int) -> int:
        return {
            MSG_SYSDB: self.config.shm.wizard_system,
            MSG_NETDB: self.config.shm.wizard_network,
            MSG_SECDB: self.config.shm.wizard_security,
        }[msg_type]

    def database(self, msg_type: int) -> dict:
        return dict(self.shm.segment(self._segment_key(msg_type)).read() or {})

    def staleness(self, msg_type: int) -> float:
        """Seconds since a snapshot of ``msg_type`` was last applied
        (``inf`` when none ever arrived) — the degraded-mode flag."""
        last = self._updated_at.get(msg_type)
        if last is None:
            return float("inf")
        return self.sim.now - last

    def epoch(self) -> float:
        """Sim time of the freshest applied snapshot (0 when none ever
        arrived) — the replica-epoch clients use to prefer the wizard
        replica with the most recent view of the world."""
        return max(self._updated_at.values(), default=0.0)

    def min_freshness_age(self) -> float:
        """Age of the *freshest* database (``inf`` before any snapshot).

        The wizard's staleness NAK keys off this: a replica whose newest
        data is older than ``wizard_staleness_limit`` has lost its feed
        entirely (receiver dead, all transmitters partitioned) and should
        send clients to a healthier replica."""
        if not self._updated_at:
            return float("inf")
        return self.sim.now - self.epoch()

    # -- merging ---------------------------------------------------------------
    @staticmethod
    def _rebase_record(record, delta: float):
        """A copy of ``record`` with its timestamp shifted onto our clock
        (never mutate in place — the sender still owns the object)."""
        if hasattr(record, "updated_at"):
            return dataclasses.replace(
                record, updated_at=record.updated_at + delta
            )
        return record

    def _apply(self, src: str, msg_type: int, data: dict, stamp: float = -1.0):
        """Process generator: merge one snapshot into shared memory.

        ``stamp`` is the sender's wall-clock reading when the body left
        it (-1 = unstamped, the pre-gray wire format).  Stamped records
        are *always* rebased onto this host's monotonic clock as
        ``arrival - age``, where ``age = stamp - updated_at`` is measured
        entirely on the sender's clock — a constant skew offset cancels,
        so freshness never trusts any wall clock (relative epochs).  A
        stamp that also disagrees with our *wall* clock beyond
        ``config.skew_tolerance`` increments ``suspected_skew``: someone's
        clock (theirs or ours) is lying, and operators want to know."""
        per_src = self._sources.setdefault(src, {})
        fresh = dict(data)
        if stamp >= 0.0:
            if abs(self._wall_now() - stamp) > self.config.skew_tolerance:
                self.suspected_skew += 1
            delta = self.sim.now - stamp
            fresh = {
                k: self._rebase_record(v, delta) for k, v in fresh.items()
            }
        per_src[msg_type] = fresh
        merged: dict = {}
        for contrib in self._sources.values():
            merged.update(contrib.get(msg_type, {}))
        seg = self.shm.segment(self._segment_key(msg_type))
        yield seg.lock.acquire()
        try:
            seg.write(merged)
        finally:
            seg.lock.release()
        self._updated_at[msg_type] = self.sim.now
        self.messages_received += 1

    # -- centralized: accept pushes --------------------------------------------------
    def _listen(self):
        listener = self.stack.tcp.listen(self.config.ports.receiver)
        try:
            while True:
                conn = yield listener.accept()
                self._sessions[:] = [p for p in self._sessions if p.is_alive]
                proc = self.sim.process(self._session(conn), name="receiver-session")
                self._sessions.append(proc)
        except Interrupt:
            listener.close()

    def _session(self, conn):
        expected_type: Optional[int] = None
        try:
            while True:
                try:
                    payload, _ = yield conn.recv()
                except ConnectionClosed:
                    return
                kind = payload[0]
                if kind == "hdr":
                    # [type, size] header: the receiver would allocate the
                    # buffer here; we remember what body to expect
                    expected_type = payload[1]
                elif kind == "body":
                    msg_type, data = payload[1], payload[2]
                    # 4th element (when present): sender clock at send time
                    stamp = payload[3] if len(payload) > 3 else -1.0
                    if expected_type is not None and msg_type != expected_type:
                        continue  # out-of-protocol; skip
                    expected_type = None
                    if msg_type in (MSG_SYSDB, MSG_NETDB, MSG_SECDB):
                        yield from self._apply(
                            conn.remote_addr, msg_type, data, stamp
                        )
        except Interrupt:
            conn.close()

    # -- distributed: pull on demand ---------------------------------------------------
    def pull_all(self):
        """Process generator: request fresh snapshots from every registered
        transmitter (invoked by the wizard per user request, §3.5.2).

        Each transmitter gets at most ``config.pull_timeout`` seconds to
        deliver its three databases; one that is dead, partitioned, or
        wedged is aborted and skipped so the wizard answers from
        last-known-good data instead of stalling the request."""
        for addr in self.transmitters:
            conn = self._pull_conns.get(addr)
            if conn is None or conn.peer_closed or conn.reset:
                if conn is not None:
                    conn.close()
                try:
                    conn = yield from self.stack.tcp.connect(
                        addr, self.config.ports.transmitter
                    )
                except ConnectError:
                    self.pull_failures += 1
                    self._pull_conns.pop(addr, None)
                    continue
                self._pull_conns[addr] = conn
            try:
                conn.send(WireMessage.pull(), 8)
            except ConnectionClosed:
                self.pull_failures += 1
                self._pull_conns.pop(addr, None)
                continue
            pending = 3  # sysdb, netdb, secdb
            expected_type: Optional[int] = None
            deadline = self.sim.timeout(self.config.pull_timeout)
            while pending > 0:
                get = conn.recv()
                try:
                    fired = yield self.sim.any_of([get, deadline])
                except ConnectionClosed:
                    self.pull_failures += 1
                    self._pull_conns.pop(addr, None)
                    break
                if get not in fired:
                    # wedged or partitioned transmitter: abort the
                    # connection so a fresh one is dialled next pull
                    self.pull_timeouts += 1
                    conn.abort()
                    self._pull_conns.pop(addr, None)
                    break
                payload, _ = fired[get]
                kind = payload[0]
                if kind == "hdr":
                    expected_type = payload[1]
                elif kind == "body":
                    msg_type, data = payload[1], payload[2]
                    stamp = payload[3] if len(payload) > 3 else -1.0
                    expected_type = None
                    if msg_type in (MSG_SYSDB, MSG_NETDB, MSG_SECDB):
                        yield from self._apply(addr, msg_type, data, stamp)
                    pending -= 1
