"""The client library (thesis §3.6.2) — what user programs link against.

Workflow of :meth:`SmartClient.smart_sockets`:

1. read the requirement (text or file contents);
2. attach a random sequence number, the requested server count and the
   option string, and send the request to the wizard over UDP;
3. wait for the matching reply (sequence numbers pair requests with
   replies; late/foreign replies are discarded), retrying on timeout;
4. TCP-connect to the service port of every returned server and hand the
   caller the list of connected sockets — "the user's program and the
   actual service program ... should be aware of how to interact through
   the list of connected sockets".

Failure hardening (beyond the thesis):

* retries back off exponentially with *decorrelated jitter* — the sleep
  before attempt k is drawn from ``U(base, 3 * previous)`` and capped —
  so a thundering herd of clients does not re-synchronise on a wizard
  that just came back;
* a server whose service port refused the connection is *quarantined*
  for ``config.quarantine_period`` seconds: subsequent ``smart_sockets``
  calls connect to it last, so one dead-but-not-yet-expired server does
  not slow every socket group down;
* a **pre-submit static check**: the requirement is run through
  :func:`repro.lang.analysis` *before* any packet leaves the client —
  misspelled variables, arity errors and statically-unsatisfiable
  constraints raise :class:`RequirementRejected` locally with the full
  diagnostics instead of burning a wizard round trip (disable with
  ``precheck=False``); a wizard NAK reply is surfaced the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from ..lang.analysis import CompileCache
from ..net.tcp import ConnectError, TcpConnection
from ..sim import RandomStreams, Simulator

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    import random
from .config import Config, DEFAULT_CONFIG
from .records import REPLY_NAK
from .wizard import WizardReply, WizardRequest

__all__ = ["SmartClient", "SmartReply", "InsufficientServers",
           "RequirementRejected"]


class InsufficientServers(Exception):
    """Raised in strict mode when fewer servers qualified than requested."""

    def __init__(self, wanted: int, got: list[str]):
        super().__init__(f"wanted {wanted} servers, wizard returned {len(got)}")
        self.wanted = wanted
        self.got = got


class RequirementRejected(Exception):
    """A requirement failed static analysis (locally or via wizard NAK)."""

    def __init__(self, reason: str, diagnostics=()):  # diagnostics render()able
        lines = [reason] + [d.render() for d in diagnostics]
        super().__init__("\n".join(lines))
        self.reason = reason
        self.diagnostics = list(diagnostics)


@dataclass
class SmartReply:
    """Outcome of one wizard round-trip."""

    seq: int
    servers: list[str] = field(default_factory=list)
    attempts: int = 1
    #: True when the wizard NAKed the request after static analysis
    nak: bool = False
    #: analyzer findings carried in a NAK reply
    diagnostics: list = field(default_factory=list)


class SmartClient:
    """Client-side API of the Smart TCP socket library."""

    def __init__(
        self,
        sim: Simulator,
        stack,
        wizard_addr: str,
        config: Config = DEFAULT_CONFIG,
        rng: Optional["random.Random"] = None,
    ):
        self.sim = sim
        self.stack = stack
        self.wizard_addr = wizard_addr
        self.config = config
        # deployments hand in a per-client named stream; the standalone
        # fallback derives one the same seeded way (never the global RNG)
        self.rng = rng or RandomStreams(0x5EED).stream("smart-client")
        #: client-side compile cache for the pre-submit static check
        self.compile_cache = CompileCache(maxsize=config.compile_cache_size)
        self.requests_sent = 0
        self.timeouts = 0
        self.connect_failures = 0
        #: requirements rejected locally before any packet was sent
        self.precheck_rejections = 0
        #: sleeps taken between retry attempts (for tests/telemetry)
        self.backoff_history: list[float] = []
        #: dead-server quarantine: addr -> sim time the sentence ends
        self._quarantine: dict[str, float] = {}

    # -- pre-submit static check ---------------------------------------------
    def precheck_requirement(self, requirement: str) -> None:
        """Raise :class:`RequirementRejected` when static analysis proves the
        requirement can never match (or is too broken to evaluate)."""
        compiled = self.compile_cache.get_or_compile(requirement)
        if compiled.parse_failed:
            self.precheck_rejections += 1
            raise RequirementRejected("requirement does not parse")
        if compiled.unsatisfiable or compiled.errors:
            self.precheck_rejections += 1
            raise RequirementRejected(
                "requirement rejected by static analysis",
                diagnostics=compiled.errors or compiled.diagnostics,
            )

    # -- wizard round trip ---------------------------------------------------
    def request_servers(self, requirement: str, n: int, option: str = "",
                        precheck: bool = True):
        """Process generator -> :class:`SmartReply`.

        Retries ``config.client_retries`` times on timeout; a reply whose
        sequence number does not match is ignored (§3.6.2 step 3).  With
        ``precheck`` (the default) a statically-bad requirement raises
        :class:`RequirementRejected` before any packet is sent.
        """
        if n <= 0:
            raise ValueError(f"server count must be positive, got {n}")
        if precheck:
            self.precheck_requirement(requirement)
        sock = self.stack.udp_socket()
        backoff = self.config.client_backoff_base
        try:
            for attempt in range(1 + self.config.client_retries):
                if attempt > 0:
                    # decorrelated jitter: spread the retries of many
                    # clients out instead of hammering in lock-step
                    backoff = min(
                        self.config.client_backoff_cap,
                        self.rng.uniform(
                            self.config.client_backoff_base, backoff * 3.0
                        ),
                    )
                    self.backoff_history.append(backoff)
                    yield self.sim.timeout(backoff)
                seq = self.rng.randrange(1, 2**31)
                request = WizardRequest(
                    seq=seq, server_num=n, option=option, detail=requirement
                )
                sock.sendto(
                    self.wizard_addr,
                    self.config.ports.wizard,
                    size=request.wire_bytes,
                    payload=request,
                )
                self.requests_sent += 1
                deadline = self.sim.timeout(self.config.client_timeout)
                while True:
                    get = sock.recv()
                    fired = yield self.sim.any_of([get, deadline])
                    if get not in fired:
                        self.timeouts += 1
                        break  # retry with a fresh sequence number
                    dgram = fired[get]
                    reply = dgram.payload
                    if isinstance(reply, WizardReply) and reply.seq == seq:
                        return SmartReply(
                            seq=seq, servers=list(reply.servers),
                            attempts=attempt + 1,
                            nak=reply.status == REPLY_NAK,
                            diagnostics=list(reply.diagnostics),
                        )
                    # stale or foreign reply: keep waiting on the deadline
            return SmartReply(seq=-1, servers=[], attempts=1 + self.config.client_retries)
        finally:
            sock.close()

    # -- the headline API ---------------------------------------------------------
    def smart_sockets(
        self,
        requirement: str,
        n: int,
        option: str = "",
        service_port: Optional[int] = None,
        mss: Optional[int] = None,
        strict: bool = False,
        precheck: bool = True,
    ):
        """Process generator -> list of connected :class:`TcpConnection`.

        The Smart analogue of calling ``socket(); connect()`` once per
        server (thesis Fig 1.2): one call returns the whole socket group.
        With ``strict=True`` an :class:`InsufficientServers` error is raised
        when the wizard cannot satisfy the count (otherwise the caller gets
        however many qualified — the "Option field" behaviours of §3.6.1).
        """
        reply = yield from self.request_servers(requirement, n, option=option,
                                                precheck=precheck)
        if reply.nak:
            raise RequirementRejected(
                "wizard rejected the requirement (static analysis NAK)",
                diagnostics=reply.diagnostics,
            )
        if strict and len(reply.servers) < n:
            raise InsufficientServers(n, reply.servers)
        port = service_port if service_port is not None else self.config.ports.service
        conns: list[TcpConnection] = []
        for addr in self._deprioritise(reply.servers):
            kwargs = {} if mss is None else {"mss": mss}
            try:
                conn = yield from self.stack.tcp.connect(addr, port, **kwargs)
            except ConnectError:
                # dead server: skip, and remember — the wizard's database
                # will not notice until the record expires, so deprioritise
                # the host locally in the meantime
                self._note_connect_failure(addr)
                continue
            conns.append(conn)
        if strict and len(conns) < n:
            for conn in conns:
                conn.close()
            raise InsufficientServers(n, [c.remote_addr for c in conns])
        return conns

    # -- dead-server quarantine ----------------------------------------------
    def _note_connect_failure(self, addr: str) -> None:
        self.connect_failures += 1
        self._quarantine[addr] = self.sim.now + self.config.quarantine_period

    def quarantined(self) -> set[str]:
        """Addresses currently serving a quarantine sentence."""
        now = self.sim.now
        return {a for a, until in self._quarantine.items() if until > now}

    def _deprioritise(self, servers: list[str]) -> list[str]:
        """Stable-sort a wizard reply so quarantined hosts connect last."""
        now = self.sim.now
        for addr, until in list(self._quarantine.items()):
            if until <= now:
                del self._quarantine[addr]
        if not self._quarantine:
            return list(servers)
        return sorted(servers, key=lambda a: a in self._quarantine)
