"""The client library (thesis §3.6.2) — what user programs link against.

Workflow of :meth:`SmartClient.smart_sockets`:

1. read the requirement (text or file contents);
2. attach a random sequence number, the requested server count and the
   option string, and send the request to the wizard over UDP;
3. wait for the matching reply (sequence numbers pair requests with
   replies; late/foreign replies are discarded), retrying on timeout;
4. TCP-connect to the service port of every returned server and hand the
   caller the list of connected sockets — "the user's program and the
   actual service program ... should be aware of how to interact through
   the list of connected sockets".

Failure hardening (beyond the thesis):

* retries back off exponentially with *decorrelated jitter* — the sleep
  before attempt k is drawn from ``U(base, 3 * previous)`` and capped —
  so a thundering herd of clients does not re-synchronise on a wizard
  that just came back;
* a server whose service port refused the connection is *quarantined*
  for ``config.quarantine_period`` seconds: subsequent ``smart_sockets``
  calls connect to it last, so one dead-but-not-yet-expired server does
  not slow every socket group down;
* a **pre-submit static check**: the requirement is run through
  :func:`repro.lang.analysis` *before* any packet leaves the client —
  misspelled variables, arity errors and statically-unsatisfiable
  constraints raise :class:`RequirementRejected` locally with the full
  diagnostics instead of burning a wizard round trip (disable with
  ``precheck=False``); a wizard NAK reply is surfaced the same way.

High availability (beyond the thesis): the client accepts a *ranked
list* of wizard replicas.  Every attempt re-ranks the fleet — replicas
under quarantine sort last, then by the freshest replica epoch seen in
their replies, then by configured order — and sends to the best one.  A
replica that times out or answers ``REPLY_STALE`` (its status feed died)
is quarantined for ``config.wizard_quarantine_period`` seconds, so the
retry (after the usual jittered backoff) lands on the next-best replica
instead of hammering the dead one.  Both the server and the wizard
quarantines share one TTL-decay mechanism (:class:`Quarantine`).

Gray failures (beyond the thesis): quarantine only catches replicas that
*fail* — a fail-slow replica (throttled CPU, sick link) answers inside
the fixed timeout forever and would keep winning the ranking.  The
client therefore feeds every request RTT into a per-replica
:class:`~repro.core.detector.SuspicionDetector`; warm baselines shrink
the request timeout (``baseline * client_timeout_scale``) and demote
fail-slow replicas in the ranking (:meth:`SmartClient.slow_wizards`)
before a single fixed timeout fires.  Replica epochs are compared on
the *client's* clock by rebasing each reply's freshness age, so a
replica with a skewed clock is ranked by the actual age of its data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from ..lang.analysis import CompileCache
from ..net.tcp import ConnectError, TcpConnection
from ..sim import RandomStreams, Simulator

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    import random
from .config import Config, DEFAULT_CONFIG
from .detector import SuspicionDetector
from .records import REPLY_NAK, REPLY_STALE
from .wizard import WizardReply, WizardRequest

__all__ = ["SmartClient", "SmartReply", "Quarantine", "InsufficientServers",
           "RequirementRejected"]


class Quarantine(dict):
    """TTL-decaying quarantine: ``addr -> sim time the sentence ends``.

    A plain dict underneath (so tests and telemetry can inspect it), with
    the decay policy attached: entries added via :meth:`add` serve
    ``period`` seconds, :meth:`active` reports who is still serving, and
    :meth:`decay` purges expired sentences.  Used for both dead *servers*
    (failed TCP connects, expired health leases) and dead *wizard
    replicas* (request timeouts, staleness NAKs).
    """

    def __init__(self, sim: Simulator, period: float):
        super().__init__()
        self.sim = sim
        self.period = period

    def add(self, addr: str, period: Optional[float] = None) -> None:
        """Start (or restart) a sentence of ``period`` seconds."""
        self[addr] = self.sim.now + (self.period if period is None else period)

    def active(self) -> set[str]:
        """Addresses currently serving a sentence (expired ones excluded)."""
        now = self.sim.now
        return {a for a, until in self.items() if until > now}

    def decay(self) -> None:
        """Purge entries whose sentence has ended."""
        now = self.sim.now
        for addr, until in list(self.items()):
            if until <= now:
                del self[addr]


class InsufficientServers(Exception):
    """Raised in strict mode when fewer servers qualified than requested."""

    def __init__(self, wanted: int, got: list[str]):
        super().__init__(f"wanted {wanted} servers, wizard returned {len(got)}")
        self.wanted = wanted
        self.got = got


class RequirementRejected(Exception):
    """A requirement failed static analysis (locally or via wizard NAK)."""

    def __init__(self, reason: str, diagnostics=()):  # diagnostics render()able
        lines = [reason] + [d.render() for d in diagnostics]
        super().__init__("\n".join(lines))
        self.reason = reason
        self.diagnostics = list(diagnostics)


@dataclass
class SmartReply:
    """Outcome of one wizard round-trip."""

    seq: int
    servers: list[str] = field(default_factory=list)
    attempts: int = 1
    #: True when the wizard NAKed the request after static analysis
    nak: bool = False
    #: analyzer findings carried in a NAK reply
    diagnostics: list = field(default_factory=list)
    #: True when every answering replica was stale (feed dead fleet-wide)
    stale: bool = False
    #: which replica answered ("" when every attempt timed out)
    wizard: str = ""
    #: replica epoch carried in the reply (freshness of its status view)
    epoch: float = 0.0


class SmartClient:
    """Client-side API of the Smart TCP socket library."""

    def __init__(
        self,
        sim: Simulator,
        stack,
        wizard_addr: Optional[str] = None,
        config: Config = DEFAULT_CONFIG,
        rng: Optional["random.Random"] = None,
        wizard_addrs: Optional[list[str]] = None,
    ):
        self.sim = sim
        self.stack = stack
        #: ranked wizard replica fleet — the explicit list wins; the
        #: single-address form is kept for one-wizard deployments
        addrs = list(wizard_addrs) if wizard_addrs else []
        if not addrs and wizard_addr is not None:
            addrs = [wizard_addr]
        if not addrs:
            raise ValueError("SmartClient needs at least one wizard address")
        self.wizard_addrs: list[str] = addrs
        self.wizard_addr = addrs[0]
        self.config = config
        # deployments hand in a per-client named stream; the standalone
        # fallback derives one the same seeded way (never the global RNG)
        self.rng = rng or RandomStreams(0x5EED).stream("smart-client")
        #: client-side compile cache for the pre-submit static check
        self.compile_cache = CompileCache(maxsize=config.compile_cache_size)
        self.requests_sent = 0
        self.timeouts = 0
        self.connect_failures = 0
        #: requirements rejected locally before any packet was sent
        self.precheck_rejections = 0
        #: stale NAKs received (a replica turned us away, feed dead)
        self.stale_rejections = 0
        #: attempts that switched away from the previous replica
        self.wizard_failovers = 0
        #: sleeps taken between retry attempts (for tests/telemetry)
        self.backoff_history: list[float] = []
        #: dead-server quarantine: addr -> sim time the sentence ends
        self._quarantine = Quarantine(sim, config.quarantine_period)
        #: dead-replica quarantine (timeouts / staleness NAKs)
        self._wizard_quarantine = Quarantine(sim, config.wizard_quarantine_period)
        #: freshest epoch each replica has advertised in a reply
        self._wizard_epochs: dict[str, float] = {}
        #: replica the previous attempt used (failover telemetry)
        self.last_wizard: Optional[str] = None
        #: adaptive suspicion: per-replica RTT baselines.  Cold replicas
        #: (< detector_min_samples answers) use the fixed client_timeout
        #: and are never demoted, so deployments that never warm the
        #: detector behave exactly like the binary-timeout client.
        self.detector = SuspicionDetector(
            alpha=config.detector_alpha,
            quantile=config.detector_quantile,
            min_samples=config.detector_min_samples,
        )

    # -- pre-submit static check ---------------------------------------------
    def precheck_requirement(self, requirement: str) -> None:
        """Raise :class:`RequirementRejected` when static analysis proves the
        requirement can never match (or is too broken to evaluate)."""
        compiled = self.compile_cache.get_or_compile(requirement)
        if compiled.parse_failed:
            self.precheck_rejections += 1
            raise RequirementRejected("requirement does not parse")
        if compiled.unsatisfiable or compiled.errors:
            self.precheck_rejections += 1
            raise RequirementRejected(
                "requirement rejected by static analysis",
                diagnostics=compiled.errors or compiled.diagnostics,
            )

    # -- wizard replica ranking ----------------------------------------------
    def _rank_wizards(self) -> list[str]:
        """Replicas in send preference order: non-quarantined first, then
        fast before fail-slow (RTT baseline beyond ``demote_factor`` times
        the best replica's), then by the freshest epoch each has
        advertised, then configured order (a deterministic total order —
        no set iteration feeds this)."""
        self._wizard_quarantine.decay()
        active = self._wizard_quarantine.active()
        demoted = self.slow_wizards()
        return [
            self.wizard_addrs[i]
            for i in sorted(
                range(len(self.wizard_addrs)),
                key=lambda i: (
                    self.wizard_addrs[i] in active,
                    self.wizard_addrs[i] in demoted,
                    -self._wizard_epochs.get(self.wizard_addrs[i], 0.0),
                    i,
                ),
            )
        ]

    def quarantined_wizards(self) -> set[str]:
        """Replicas currently serving a quarantine sentence."""
        return self._wizard_quarantine.active()

    def slow_wizards(self) -> set[str]:
        """Replicas demoted for a fail-slow RTT baseline.  Relative and
        self-correcting: a demoted replica keeps answering (it still gets
        traffic when the healthy ones are quarantined), so a recovered
        baseline lifts the demotion — no sentence to wait out."""
        return self.detector.slow_peers(
            self.wizard_addrs, self.config.wizard_rtt_demote_factor
        )

    def _request_timeout(self, target: str) -> float:
        """Adaptive per-replica request timeout: a warm RTT baseline cuts
        the wait to ``baseline * client_timeout_scale`` (floored), so a
        dead replica is abandoned in ~3 RTTs instead of the full fixed
        timeout; cold replicas keep the fixed timeout."""
        baseline = self.detector.baseline(target)
        if baseline is None:
            return self.config.client_timeout
        return min(
            self.config.client_timeout,
            max(self.config.client_timeout_floor,
                baseline * self.config.client_timeout_scale),
        )

    def _note_wizard_failure(self, addr: str) -> None:
        self._wizard_quarantine.add(addr)

    # -- wizard round trip ---------------------------------------------------
    def request_servers(self, requirement: str, n: int, option: str = "",
                        precheck: bool = True):
        """Process generator -> :class:`SmartReply`.

        Retries ``config.client_retries`` times on timeout; a reply whose
        sequence number does not match is ignored (§3.6.2 step 3).  With
        ``precheck`` (the default) a statically-bad requirement raises
        :class:`RequirementRejected` before any packet is sent.

        Every attempt is addressed to the best-ranked wizard replica
        (:meth:`_rank_wizards`); a replica that times out or answers
        ``REPLY_STALE`` is quarantined so the next attempt fails over.
        """
        if n <= 0:
            raise ValueError(f"server count must be positive, got {n}")
        if precheck:
            self.precheck_requirement(requirement)
        sock = self.stack.udp_socket()
        backoff = self.config.client_backoff_base
        stale_replies = 0
        timed_out = 0
        try:
            for attempt in range(1 + self.config.client_retries):
                if attempt > 0:
                    # decorrelated jitter: spread the retries of many
                    # clients out instead of hammering in lock-step
                    backoff = min(
                        self.config.client_backoff_cap,
                        self.rng.uniform(
                            self.config.client_backoff_base, backoff * 3.0
                        ),
                    )
                    self.backoff_history.append(backoff)
                    yield self.sim.timeout(backoff)
                target = self._rank_wizards()[0]
                if self.last_wizard is not None and target != self.last_wizard:
                    self.wizard_failovers += 1
                self.last_wizard = target
                seq = self.rng.randrange(1, 2**31)
                request = WizardRequest(
                    seq=seq, server_num=n, option=option, detail=requirement
                )
                sock.sendto(
                    target,
                    self.config.ports.wizard,
                    size=request.wire_bytes,
                    payload=request,
                )
                self.requests_sent += 1
                sent_at = self.sim.now
                deadline = self.sim.timeout(self._request_timeout(target))
                while True:
                    get = sock.recv()
                    fired = yield self.sim.any_of([get, deadline])
                    if get not in fired:
                        self.timeouts += 1
                        timed_out += 1
                        self._note_wizard_failure(target)
                        # withdraw the pending getter: abandoned, it would
                        # swallow the next attempt's reply
                        sock.rx.cancel(get)
                        break  # fail over with a fresh sequence number
                    dgram = fired[get]
                    reply = dgram.payload
                    if not (isinstance(reply, WizardReply) and reply.seq == seq):
                        continue  # late/foreign reply: keep waiting
                    self.detector.record(target, self.sim.now - sent_at)
                    # epoch for ranking: rebase the reply's freshness age
                    # onto *our* clock, so a replica with a skewed clock
                    # (epoch far in its future or past) is judged by how
                    # fresh its data actually is, not by what its clock
                    # claims.  Replies without an age (older wire format)
                    # fall back to the raw epoch.
                    if reply.freshness_age >= 0.0:
                        epoch_local = self.sim.now - reply.freshness_age
                    else:
                        epoch_local = reply.epoch
                    self._wizard_epochs[target] = max(
                        self._wizard_epochs.get(target, 0.0), epoch_local
                    )
                    if reply.status == REPLY_STALE:
                        # this replica's status feed died: quarantine it
                        # and retry against the next-freshest replica
                        self.stale_rejections += 1
                        stale_replies += 1
                        self._note_wizard_failure(target)
                        break
                    return SmartReply(
                        seq=seq, servers=list(reply.servers),
                        attempts=attempt + 1,
                        nak=reply.status == REPLY_NAK,
                        diagnostics=list(reply.diagnostics),
                        wizard=target, epoch=reply.epoch,
                    )
            return SmartReply(
                seq=-1, servers=[], attempts=1 + self.config.client_retries,
                stale=stale_replies > 0 and timed_out == 0,
            )
        finally:
            sock.close()

    # -- the headline API ---------------------------------------------------------
    def smart_sockets(
        self,
        requirement: str,
        n: int,
        option: str = "",
        service_port: Optional[int] = None,
        mss: Optional[int] = None,
        strict: bool = False,
        precheck: bool = True,
    ):
        """Process generator -> list of connected :class:`TcpConnection`.

        The Smart analogue of calling ``socket(); connect()`` once per
        server (thesis Fig 1.2): one call returns the whole socket group.
        With ``strict=True`` an :class:`InsufficientServers` error is raised
        when the wizard cannot satisfy the count (otherwise the caller gets
        however many qualified — the "Option field" behaviours of §3.6.1).
        """
        reply = yield from self.request_servers(requirement, n, option=option,
                                                precheck=precheck)
        if reply.nak:
            raise RequirementRejected(
                "wizard rejected the requirement (static analysis NAK)",
                diagnostics=reply.diagnostics,
            )
        if strict and len(reply.servers) < n:
            raise InsufficientServers(n, reply.servers)
        port = service_port if service_port is not None else self.config.ports.service
        conns: list[TcpConnection] = []
        for addr in self._deprioritise(reply.servers):
            kwargs = {} if mss is None else {"mss": mss}
            try:
                conn = yield from self.stack.tcp.connect(addr, port, **kwargs)
            except ConnectError:
                # dead server: skip, and remember — the wizard's database
                # will not notice until the record expires, so deprioritise
                # the host locally in the meantime
                self._note_connect_failure(addr)
                continue
            conns.append(conn)
        if strict and len(conns) < n:
            for conn in conns:
                conn.close()
            raise InsufficientServers(n, [c.remote_addr for c in conns])
        return conns

    # -- dead-server quarantine ----------------------------------------------
    def _note_connect_failure(self, addr: str) -> None:
        self.connect_failures += 1
        self._quarantine.add(addr)

    def quarantine_server(self, addr: str) -> None:
        """Mark a server dead from outside the connect path — the session
        layer calls this when a health lease expires or a peer resets, so
        the very next ``smart_sockets`` round avoids the corpse."""
        self._quarantine.add(addr)

    def quarantined(self) -> set[str]:
        """Addresses currently serving a quarantine sentence."""
        return self._quarantine.active()

    def _deprioritise(self, servers: list[str]) -> list[str]:
        """Stable-sort a wizard reply so quarantined hosts connect last."""
        self._quarantine.decay()
        if not self._quarantine:
            return list(servers)
        return sorted(servers, key=lambda a: a in self._quarantine)
