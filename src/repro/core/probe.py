"""The server probe: periodic self-probing via ``/proc`` (thesis §3.2.1, §4.1).

The probe runs on every server, scans the five ``/proc`` nodes at a fixed
interval, derives the rate values (CPU usage and NIC byte/packet rates come
from deltas between consecutive scans), formats the 22 server-side
parameters as an ASCII string and sends it to the system monitor over UDP.

To stay honest, the probe *parses the rendered /proc text* — it never
touches the :class:`~repro.host.machine.Machine` object directly.  The
parsers below accept real 2.4-kernel formats.
"""

from __future__ import annotations

import re
from typing import Optional

from ..host.procfs import ProcFS
from ..sim import Interrupt, Simulator
from .config import Config, DEFAULT_CONFIG
from .records import ServerStatusReport

__all__ = [
    "ServerProbe",
    "parse_loadavg",
    "parse_stat_cpu",
    "parse_stat_disk",
    "parse_meminfo",
    "parse_net_dev",
    "parse_cpuinfo_bogomips",
]


# ---------------------------------------------------------------------------
# /proc parsers
# ---------------------------------------------------------------------------

def parse_loadavg(text: str) -> tuple[float, float, float]:
    parts = text.split()
    if len(parts) < 3:
        raise ValueError(f"malformed /proc/loadavg: {text!r}")
    return float(parts[0]), float(parts[1]), float(parts[2])


def parse_stat_cpu(text: str) -> tuple[int, int, int, int]:
    """(user, nice, system, idle) jiffies from the aggregate ``cpu`` line."""
    for line in text.splitlines():
        if line.startswith("cpu "):
            parts = line.split()
            if len(parts) < 5:
                raise ValueError(f"malformed cpu line: {line!r}")
            return tuple(int(p) for p in parts[1:5])  # type: ignore[return-value]
    raise ValueError("no 'cpu' line in /proc/stat")


_DISK_RE = re.compile(r"\((\d+),(\d+)\):\((\d+),(\d+),(\d+),(\d+),(\d+)\)")


def parse_stat_disk(text: str) -> tuple[int, int, int, int, int]:
    """(allreq, rreq, rblocks, wreq, wblocks) summed over devices
    (2.4-kernel ``disk_io:`` format)."""
    totals = [0, 0, 0, 0, 0]
    seen = False
    for line in text.splitlines():
        if not line.startswith("disk_io:"):
            continue
        for m in _DISK_RE.finditer(line):
            seen = True
            for i in range(5):
                totals[i] += int(m.group(3 + i))
    if not seen:
        # a kernel without disk_io (or no disks): report zeros
        return (0, 0, 0, 0, 0)
    return tuple(totals)  # type: ignore[return-value]


def parse_meminfo(text: str) -> tuple[int, int, int]:
    """(total, used, free) in bytes from the 2.4 ``Mem:`` byte table."""
    for line in text.splitlines():
        if line.startswith("Mem:"):
            parts = line.split()
            if len(parts) < 4:
                raise ValueError(f"malformed Mem: line: {line!r}")
            return int(parts[1]), int(parts[2]), int(parts[3])
    # fall back to the kB key:value list (2.6-style)
    total = free = None
    for line in text.splitlines():
        if line.startswith("MemTotal:"):
            total = int(line.split()[1]) * 1024
        elif line.startswith("MemFree:"):
            free = int(line.split()[1]) * 1024
    if total is None or free is None:
        raise ValueError("no memory totals found in /proc/meminfo")
    return total, total - free, free


def parse_net_dev(text: str) -> dict[str, tuple[int, int, int, int]]:
    """iface -> (rbytes, rpackets, tbytes, tpackets)."""
    result: dict[str, tuple[int, int, int, int]] = {}
    for line in text.splitlines():
        if ":" not in line or line.strip().startswith(("Inter-", "face")):
            continue
        name, _, rest = line.partition(":")
        cols = rest.split()
        if len(cols) < 10:
            continue
        result[name.strip()] = (int(cols[0]), int(cols[1]), int(cols[8]), int(cols[9]))
    return result


def parse_cpuinfo_bogomips(text: str) -> float:
    for line in text.splitlines():
        if line.lower().startswith("bogomips"):
            return float(line.split(":")[1])
    raise ValueError("no bogomips line in /proc/cpuinfo")


# ---------------------------------------------------------------------------
# the probe daemon
# ---------------------------------------------------------------------------

class ServerProbe:
    """Periodic self-probing daemon for one server.

    Parameters
    ----------
    procfs:
        the server's ``/proc`` view.
    stack:
        the server's network stack (to send UDP reports).
    monitor_addr:
        where the system monitor lives.
    group:
        server-group label used by the network monitor plane.
    selected_params:
        optional subset of parameter names to report (thesis §6 "Selected
        parameters" extension); ``None`` reports all 22.
    """

    #: CPU cost of one /proc scan in dedicated-CPU seconds (thesis: <0.2 %
    #: of a P3-866 at a 5 s interval)
    SCAN_CPU_SECONDS = 0.002
    #: resident size, bytes (thesis §3.2.1: "130 KBytes of memory")
    RESIDENT_BYTES = 130 * 1024

    def __init__(
        self,
        sim: Simulator,
        procfs: ProcFS,
        stack,
        monitor_addr: str,
        group: str = "default",
        config: Config = DEFAULT_CONFIG,
        host_name: Optional[str] = None,
        selected_params: Optional[set[str]] = None,
        security_level: int = 1,
        use_tcp: bool = False,
        clock=None,
    ):
        self.sim = sim
        self.procfs = procfs
        #: the host's (possibly skewed) wall clock; None = true sim time.
        #: Only used for the inter-scan rate deltas — a constant offset
        #: cancels, drift skews rates a little, as on a real drifty box.
        self.clock = clock
        self.stack = stack
        self.monitor_addr = monitor_addr
        self.group = group
        self.config = config
        self.host_name = host_name or stack.node.name
        self.selected_params = selected_params
        self.security_level = security_level
        self.use_tcp = use_tcp  # thesis §6: long reports should switch to TCP
        self._proc = None
        self._sock = None
        self._tcp_conn = None
        self._alloc = None
        self._prev_cpu: Optional[tuple[int, int, int, int]] = None
        self._prev_net: Optional[tuple[int, int, int, int]] = None
        self._prev_scan_time: Optional[float] = None
        self.reports_sent = 0
        self.last_report: Optional[ServerStatusReport] = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            raise RuntimeError("probe already running")
        machine = self.procfs.machine
        self._alloc = machine.memory.alloc(self.RESIDENT_BYTES, owner="server_probe")
        self._sock = self.stack.udp_socket()
        self._proc = self.sim.process(self._run(), name=f"probe@{self.host_name}")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")

    def _run(self):
        machine = self.procfs.machine
        try:
            while True:
                yield machine.cpu.run(self.SCAN_CPU_SECONDS, name="probe-scan")
                report = self.scan()
                if self.use_tcp:
                    yield from self._send_tcp(report)
                else:
                    self._send(report)
                yield self.sim.timeout(self.config.probe_interval)
        except Interrupt:
            pass
        finally:
            if self._tcp_conn is not None:
                self._tcp_conn.close()
                self._tcp_conn = None
            if self._alloc is not None and self._alloc.live:
                machine.memory.free(self._alloc)

    def _now(self) -> float:
        return self.clock.now() if self.clock is not None else self.sim.now

    # -- scanning --------------------------------------------------------------
    def scan(self) -> ServerStatusReport:
        """One /proc sweep; returns the report (also kept as ``last_report``)."""
        now = self._now()
        l1, l5, l15 = parse_loadavg(self.procfs.read("/proc/loadavg"))
        stat_text = self.procfs.read("/proc/stat")
        cpu = parse_stat_cpu(stat_text)
        allreq, rreq, rblocks, wreq, wblocks = parse_stat_disk(stat_text)
        total, used, free = parse_meminfo(self.procfs.read("/proc/meminfo"))
        net = parse_net_dev(self.procfs.read("/proc/net/dev"))
        bogomips = parse_cpuinfo_bogomips(self.procfs.read("/proc/cpuinfo"))

        # aggregate across physical interfaces (skip loopback)
        rbytes = sum(v[0] for k, v in net.items() if k != "lo")
        rpackets = sum(v[1] for k, v in net.items() if k != "lo")
        tbytes = sum(v[2] for k, v in net.items() if k != "lo")
        tpackets = sum(v[3] for k, v in net.items() if k != "lo")

        # CPU usage fractions from jiffy deltas between scans
        if self._prev_cpu is not None:
            du, dn, ds, di = (c - p for c, p in zip(cpu, self._prev_cpu))
            dtotal = du + dn + ds + di
            if dtotal <= 0:
                u_frac = n_frac = s_frac = 0.0
                i_frac = 1.0
            else:
                u_frac, n_frac, s_frac, i_frac = (
                    du / dtotal, dn / dtotal, ds / dtotal, di / dtotal
                )
        else:
            total_j = sum(cpu) or 1
            u_frac, n_frac, s_frac, i_frac = (c / total_j for c in cpu)
        self._prev_cpu = cpu

        # NIC rates from byte/packet deltas
        if self._prev_net is not None and self._prev_scan_time is not None:
            dt = max(1e-9, now - self._prev_scan_time)
            prev = self._prev_net
            rbps = (rbytes - prev[0]) / dt
            rpps = (rpackets - prev[1]) / dt
            tbps = (tbytes - prev[2]) / dt
            tpps = (tpackets - prev[3]) / dt
        else:
            rbps = rpps = tbps = tpps = 0.0
        self._prev_net = (rbytes, rpackets, tbytes, tpackets)
        self._prev_scan_time = now

        values = {
            "host_system_load1": l1,
            "host_system_load5": l5,
            "host_system_load15": l15,
            "host_cpu_user": u_frac,
            "host_cpu_nice": n_frac,
            "host_cpu_system": s_frac,
            "host_cpu_idle": i_frac,
            "host_cpu_free": i_frac,
            "host_cpu_bogomips": bogomips,
            "host_memory_total": float(total),
            "host_memory_used": float(used),
            "host_memory_free": free / (1024.0 * 1024.0),  # MB (thesis quirk)
            "host_disk_allreq": float(allreq),
            "host_disk_rreq": float(rreq),
            "host_disk_rblocks": float(rblocks),
            "host_disk_wreq": float(wreq),
            "host_disk_wblocks": float(wblocks),
            "host_network_rbytesps": rbps,
            "host_network_rpacketsps": rpps,
            "host_network_tbytesps": tbps,
            "host_network_tpacketsps": tpps,
            "host_security_level": float(self.security_level),
        }
        if self.selected_params is not None:
            values = {k: v for k, v in values.items() if k in self.selected_params}
        # §6 string attributes: advertise the machine type so requirements
        # like "host_machine_type == i386" can be written
        extras = {"host_machine_type": self.procfs.machine.machine_type}
        report = ServerStatusReport(
            host=self.host_name,
            addr=self.stack.node.addr,
            group=self.group,
            values=values,
            extras=extras,
        )
        self.last_report = report
        return report

    def _send(self, report: ServerStatusReport) -> None:
        wire = report.to_wire()
        self._sock.sendto(
            self.monitor_addr,
            self.config.ports.system_monitor,
            size=len(wire),
            payload=wire,
        )
        self.reports_sent += 1

    def _send_tcp(self, report: ServerStatusReport):
        """TCP reporting (thesis §6): reliable delivery for long reports;
        reconnects lazily if the monitor went away."""
        from ..net.tcp import ConnectError, ConnectionClosed

        wire = report.to_wire()
        if self._tcp_conn is None or self._tcp_conn.peer_closed:
            try:
                self._tcp_conn = yield from self.stack.tcp.connect(
                    self.monitor_addr, self.config.ports.system_monitor
                )
            except ConnectError:
                self._tcp_conn = None
                return  # monitor unreachable; try again next interval
        try:
            self._tcp_conn.send(wire, len(wire))
        except ConnectionClosed:
            self._tcp_conn = None
            return
        self.reports_sent += 1
