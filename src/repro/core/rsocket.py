"""Reliable sockets — the thesis' §6 fault-tolerance extension.

"A new set of socket functions will be added to suspend and resume the
sockets, such that the program recovery and process migration steps can be
done more smoothly.  The reliable socket library *rsocks* is working at
this area."

This module implements that layer on top of the simulator's TCP: a
*session* survives the death of its transport connection.  Application
messages carry session sequence numbers and are buffered until the peer
acknowledges them, so after ``suspend()``/``resume()`` (or an involuntary
connection loss) the stream continues with exactly-once, in-order
delivery — no message lost, none duplicated.

Client side::

    rsock = ReliableSocket(stack, server_addr, port)
    yield from rsock.connect()
    rsock.send(payload, nbytes)
    msg, n = yield rsock.recv()
    rsock.suspend()                  # e.g. before migrating the process
    ...
    yield from rsock.resume()        # stream continues where it stopped

Server side::

    server = ReliableServer(stack, port)
    server.start()
    session = yield server.accept()  # one per *session*, not per connection
    msg, n = yield session.recv()
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from ..net.tcp import ConnectionClosed, TcpConnection
from ..sim import Interrupt, Simulator, Store

__all__ = ["ReliableSocket", "ReliableServer", "ReliableSession", "SessionError"]

_session_ids = itertools.count(1)

#: bytes added per message for the (session, seq) framing
ENVELOPE_BYTES = 12
ACK_BYTES = 12


class SessionError(Exception):
    """Session-level protocol violation or unrecoverable failure."""


class _Endpoint:
    """Shared send/receive machinery of both session ends."""

    def __init__(self, sim: Simulator, session_id: int):
        self.sim = sim
        self.session_id = session_id
        self._conn: Optional[TcpConnection] = None
        self._pump = None
        # sender state: unacked[seq] = (payload, nbytes)
        self._send_seq = 0
        self._unacked: dict[int, tuple[Any, int]] = {}
        # receiver state
        self._recv_seq = 0  # highest delivered
        self.rx = Store(sim)
        self.messages_sent = 0
        self.messages_delivered = 0
        self.retransmitted = 0

    # -- public API -----------------------------------------------------------
    @property
    def attached(self) -> bool:
        return self._conn is not None and not self._conn.peer_closed

    def send(self, payload: Any, nbytes: int) -> None:
        """Queue one message; transmitted now if attached, else on resume."""
        if nbytes <= 0:
            raise ValueError(f"message size must be positive, got {nbytes}")
        self._send_seq += 1
        seq = self._send_seq
        self._unacked[seq] = (payload, nbytes)
        self.messages_sent += 1
        if self.attached:
            self._transmit(seq, payload, nbytes)

    def recv(self):
        """Event firing with ``(payload, nbytes)`` — in order, exactly once."""
        return self.rx.get()

    # -- transport plumbing -------------------------------------------------------
    def _transmit(self, seq: int, payload: Any, nbytes: int) -> None:
        try:
            self._conn.send(("RDATA", self.session_id, seq, payload),
                            nbytes + ENVELOPE_BYTES)
        except ConnectionClosed:
            self._detach()

    def _attach(self, conn: TcpConnection, peer_recv_seq: int) -> None:
        """Adopt a (new) transport and retransmit what the peer lacks."""
        self._detach()
        self._conn = conn
        # everything at or below peer_recv_seq arrived before the break
        for seq in [s for s in self._unacked if s <= peer_recv_seq]:
            del self._unacked[seq]
        for seq in sorted(self._unacked):
            payload, nbytes = self._unacked[seq]
            self.retransmitted += 1
            self._transmit(seq, payload, nbytes)
        self._pump = self.sim.process(
            self._pump_loop(conn), name=f"rsock-pump-{self.session_id}"
        )

    def _detach(self) -> None:
        if self._pump is not None and self._pump.is_alive:
            self._pump.interrupt("detach")
        self._pump = None
        self._conn = None

    def _pump_loop(self, conn: TcpConnection):
        try:
            while True:
                try:
                    msg, nbytes = yield conn.recv()
                except ConnectionClosed:
                    if self._conn is conn:
                        self._conn = None
                    return
                kind = msg[0]
                if kind == "RDATA":
                    _, _, seq, payload = msg
                    if seq == self._recv_seq + 1:
                        self._recv_seq = seq
                        self.messages_delivered += 1
                        self.rx.put((payload, nbytes - ENVELOPE_BYTES))
                    # duplicates (seq <= recv_seq) are dropped silently;
                    # either way acknowledge what we have
                    try:
                        conn.send(("RACK", self.session_id, self._recv_seq),
                                  ACK_BYTES)
                    except ConnectionClosed:
                        return
                elif kind == "RACK":
                    _, _, ackseq = msg
                    for seq in [s for s in self._unacked if s <= ackseq]:
                        del self._unacked[seq]
        except Interrupt:
            pass


#: declared lifecycle of a :class:`ReliableSocket`, enforced statically
#: by ``repro check --proto`` (REPRO601/604) and checked against the
#: analyzer registry for drift (REPRO606).  The session outlives its
#: transports, so there is no terminal state: *suspended* is a legal
#: resting state (sends are buffered, ``recv`` drains the rx store) and
#: ``resume``/``connect`` re-establish — but send/recv before the first
#: ``connect()`` handshake, and ``resume()`` from anywhere other than
#: *suspended*, are protocol violations.
RELIABLE_SOCKET_MACHINE: dict[str, object] = {
    "name": "ReliableSocket",
    "initial": "created",
    "states": ("created", "connected", "suspended"),
    "final": (),
    "transitions": {
        "created.connect": "connected",
        "created.suspend": "created",
        "connected.send": "connected",
        "connected.recv": "connected",
        "connected.suspend": "suspended",
        "suspended.send": "suspended",
        "suspended.recv": "suspended",
        "suspended.resume": "connected",
        "suspended.connect": "connected",
    },
}


class ReliableSocket(_Endpoint):
    """Client end of a reliable session."""

    def __init__(self, stack, dst: str, port: int,
                 mss: int = 1460, window: int = 65535):
        super().__init__(stack.sim, next(_session_ids))
        self.stack = stack
        self.dst = dst
        self.port = port
        self.mss = mss
        self.window = window
        self.reconnects = -1  # first connect is not a reconnect

    def connect(self, timeout: float = 5.0):
        """Process generator: establish (or re-establish) the session."""
        conn = yield from self.stack.tcp.connect(
            self.dst, self.port, mss=self.mss, window=self.window,
            timeout=timeout,
        )
        conn.send(("RHELLO", self.session_id, self._recv_seq), ENVELOPE_BYTES)
        try:
            msg, _ = yield conn.recv()
        except Interrupt:
            # cancelled mid-handshake (daemon shutdown): release the
            # half-open transport instead of leaking it
            conn.close()
            raise SessionError("session handshake interrupted")
        if msg[0] != "RWELCOME" or msg[1] != self.session_id:
            # release the transport before bailing: a rejected handshake
            # must not leak the half-open connection
            conn.close()
            raise SessionError(f"bad session handshake: {msg[:2]}")
        peer_recv_seq = msg[2]
        self._attach(conn, peer_recv_seq)
        self.reconnects += 1
        return self

    def suspend(self) -> None:
        """Close the transport, keep the session (process migration step).

        Queued sends are buffered; ``resume()`` retransmits whatever the
        server has not acknowledged.
        """
        conn = self._conn
        self._detach()
        if conn is not None:
            conn.close()

    def resume(self, timeout: float = 5.0):
        """Process generator: reconnect and continue the stream."""
        return (yield from self.connect(timeout=timeout))


class ReliableSession(_Endpoint):
    """Server-side session object, stable across transport reconnects."""

    def __init__(self, server: "ReliableServer", session_id: int):
        super().__init__(server.stack.sim, session_id)
        self.server = server

    def _adopt(self, conn: TcpConnection, client_recv_seq: int) -> None:
        conn.send(("RWELCOME", self.session_id, self._recv_seq), ENVELOPE_BYTES)
        self._attach(conn, client_recv_seq)


class ReliableServer:
    """Accepts reliable sessions; reconnects re-bind to the same session."""

    def __init__(self, stack, port: int, mss: int = 1460, window: int = 65535):
        self.stack = stack
        self.port = port
        self.mss = mss
        self.window = window
        self.sessions: dict[int, ReliableSession] = {}
        self.accepts = Store(stack.sim)
        self._proc = None
        self._greeters: list = []

    def start(self) -> None:
        listener = self.stack.tcp.listen(self.port, mss=self.mss,
                                         window=self.window)
        self._proc = self.stack.sim.process(
            self._accept_loop(listener), name=f"rserver-{self.port}"
        )

    def stop(self) -> None:
        for proc in [self._proc, *self._greeters]:
            if proc is not None and proc.is_alive:
                proc.interrupt("stop")
        for session in self.sessions.values():
            session._detach()

    def accept(self):
        """Event firing with the next **new** :class:`ReliableSession`
        (reconnects to existing sessions do not surface here)."""
        return self.accepts.get()

    def _accept_loop(self, listener):
        try:
            while True:
                conn = yield listener.accept()
                self._greeters.append(self.stack.sim.process(
                    self._greet(conn), name="rserver-greet"
                ))
        except Interrupt:
            listener.close()

    def _greet(self, conn):
        try:
            msg, _ = yield conn.recv()
        except ConnectionClosed:
            return
        except Interrupt:
            # server stop() interrupts greeters mid-handshake; unwind
            # cleanly instead of crashing the process with a traceback
            conn.close()
            return
        if msg[0] != "RHELLO":
            conn.close()
            return
        _, session_id, client_recv_seq = msg
        session = self.sessions.get(session_id)
        is_new = session is None
        if is_new:
            session = ReliableSession(self, session_id)
            self.sessions[session_id] = session
        session._adopt(conn, client_recv_seq)
        if is_new:
            self.accepts.put(session)
