"""Self-healing smart sessions — the HA data plane (beyond the thesis).

The thesis' smart socket picks good servers *once*, at connect time; a
server that dies mid-job takes its share of the work down with it.  This
module closes that gap with a session layer over the smart socket:

* every server runs a :class:`LeaseResponder` — a tiny heartbeat service
  on ``config.ports.lease`` built on the reliable-socket layer
  (:mod:`repro.core.rsocket`), answering ``PING`` with ``PONG``;
* a :class:`SmartSession` wraps one application connection plus a *health
  lease* to the same server: a background process pings every
  ``config.lease_interval`` seconds and declares the server dead when no
  answer lands within ``config.lease_timeout``.  Death by RST (crashed
  host) and death by silence (partition, wedged peer) converge on the
  same signal: the session **aborts the application connection**, so the
  application driver's pending ``recv()`` raises
  :class:`~repro.net.tcp.ConnectionClosed` exactly as it would for a
  reset — one failure path to handle, not two;
* the driver then calls :meth:`SmartSession.failover`: the dead server
  is quarantined in the owning :class:`~repro.core.client.SmartClient`
  and *excluded* for the rest of the job (a set shared by every session
  of the group, so two sessions never re-adopt each other's corpse), the
  wizard fleet is re-queried, a replacement is connected, a fresh lease
  is started and the application's ``on_resume`` hook fires.  The
  application requeues only the in-flight shard — that is the whole
  checkpoint.

Gray failures (beyond dead servers): with
``config.session_watchdog_interval > 0`` each session also runs a
*throughput-floor watchdog* — a fail-slow server keeps its lease alive
while the transfer starves, so the watchdog learns the session's normal
progress cadence and, when the current stall's phi-accrual suspicion
crosses ``session_watchdog_phi``, proactively migrates through the very
same abort → ConnectionClosed → failover path (counted in
:attr:`SmartSession.slow_migrations`).

Everything is driven by simulator events and the client's seeded RNG:
runs are bit-identical under ``repro check`` with failover enabled.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from ..net.tcp import ConnectError, ConnectionClosed, TcpConnection
from ..sim import Interrupt
from .config import Config, DEFAULT_CONFIG
from .detector import SuspicionDetector
from .rsocket import ReliableServer, ReliableSocket, SessionError

__all__ = ["LeaseResponder", "SmartSession", "smart_sessions"]

_session_ids = itertools.count(1)

#: wire size of one PING/PONG heartbeat payload (seq + tag)
HEARTBEAT_BYTES = 8


class LeaseResponder:
    """Per-server heartbeat service on ``config.ports.lease``.

    Runs a :class:`~repro.core.rsocket.ReliableServer` so a lease
    survives transport blips: only a server that is actually gone stops
    answering.  Deployments start one next to every application service.
    """

    def __init__(self, host, config: Config = DEFAULT_CONFIG):
        self.host = host
        self.config = config
        self.server = ReliableServer(host.stack, config.ports.lease)
        self.pings_answered = 0
        self._proc = None
        self._workers: list = []

    def start(self) -> None:
        self.server.start()
        self._proc = self.host.sim.process(
            self._accept_loop(), name=f"lease-responder@{self.host.name}"
        )

    def stop(self) -> None:
        for proc in [self._proc, *self._workers]:
            if proc is not None and proc.is_alive:
                proc.interrupt("stop")
        self.server.stop()

    def _accept_loop(self):
        try:
            while True:
                session = yield self.server.accept()
                self._workers[:] = [p for p in self._workers if p.is_alive]
                self._workers.append(self.host.sim.process(
                    self._answer(session),
                    name=f"lease-answer@{self.host.name}",
                ))
        except Interrupt:
            pass

    def _answer(self, session):
        try:
            while True:
                msg, _ = yield session.recv()
                if msg[0] == "PING":
                    session.send(("PONG", msg[1]), HEARTBEAT_BYTES)
                    self.pings_answered += 1
        except Interrupt:
            pass


#: declared lifecycle of a :class:`SmartSession`, enforced statically
#: by ``repro check --proto`` (REPRO600/604) and checked against the
#: analyzer registry for drift (REPRO606).  ``failover()`` re-arms the
#: lease on the replacement server (so it lands in *leased*, same as
#: ``start_lease()``), but neither may be invoked once the session is
#: *closed* or *dead*; ``stop_lease()`` is idempotent.
SMART_SESSION_MACHINE: dict[str, object] = {
    "name": "SmartSession",
    "initial": "open",
    "states": ("open", "leased", "closed", "dead"),
    "final": ("closed", "dead"),
    "transitions": {
        "open.start_lease": "leased",
        "open.stop_lease": "open",
        "open.failover": "leased",
        "open.close": "closed",
        "leased.stop_lease": "open",
        "leased.failover": "leased",
        "leased.close": "closed",
    },
}


class SmartSession:
    """One application connection with a health lease and a failover path.

    Drivers use :attr:`conn` exactly like a plain
    :class:`~repro.net.tcp.TcpConnection`; when a send/recv raises
    :class:`~repro.net.tcp.ConnectionClosed` they requeue the in-flight
    shard and call ``conn = yield from session.failover()`` — ``None``
    means the slot is lost for good (leave remaining work to the peers).
    """

    def __init__(
        self,
        client,
        conn: TcpConnection,
        requirement: str,
        option: str = "",
        service_port: Optional[int] = None,
        mss: Optional[int] = None,
        on_resume: Optional[Callable] = None,
        excluded: Optional[set[str]] = None,
    ):
        self.client = client
        self.sim = client.sim
        self.config: Config = client.config
        self.requirement = requirement
        self.option = option
        self.service_port = (service_port if service_port is not None
                             else self.config.ports.service)
        self.mss = mss
        #: ``on_resume(session, old_addr, new_addr)`` — the application
        #: resume hook, fired after a replacement server is connected
        self.on_resume = on_resume
        #: dead servers, shared by every session of the group: a server
        #: that died once is never re-adopted within the job
        self.excluded: set[str] = excluded if excluded is not None else set()
        self.session_id = next(_session_ids)
        self.conn = conn
        self.addr = conn.remote_addr
        #: every server this slot has used, in adoption order
        self.history: list[str] = [self.addr]
        self.failovers = 0
        self.lease_expiries = 0
        #: proactive migrations off a fail-slow (leased but starving)
        #: server by the throughput-floor watchdog
        self.slow_migrations = 0
        #: (sim time, addr) of each watchdog migration, for telemetry
        self.watchdog_log: list[tuple[float, str]] = []
        #: True once failover gave up: the slot is permanently lost
        self.dead = False
        self._lease_proc = None
        self._watchdog_proc = None
        self._siblings: list["SmartSession"] = [self]

    # -- health lease --------------------------------------------------------
    def start_lease(self) -> None:
        self._lease_proc = self.sim.process(
            self._lease_loop(self.conn, self.addr),
            name=f"lease-{self.session_id}-{self.addr}",
        )
        if self.config.session_watchdog_interval > 0:
            self._watchdog_proc = self.sim.process(
                self._watchdog_loop(self.conn, self.addr),
                name=f"watchdog-{self.session_id}-{self.addr}",
            )

    def stop_lease(self) -> None:
        if self._lease_proc is not None and self._lease_proc.is_alive:
            self._lease_proc.interrupt("stop")
        self._lease_proc = None
        if self._watchdog_proc is not None and self._watchdog_proc.is_alive:
            self._watchdog_proc.interrupt("stop")
        self._watchdog_proc = None

    def close(self) -> None:
        """Orderly end of the slot: stop the lease, close the connection."""
        self.stop_lease()
        if not (self.conn.closed or self.conn.reset):
            self.conn.close()

    def _lease_loop(self, conn: TcpConnection, addr: str):
        """Heartbeat ``addr`` until the connection ends or the lease
        expires; on expiry abort ``conn`` so the driver's pending recv
        raises ConnectionClosed — silent death becomes loud death."""
        rsock = ReliableSocket(self.client.stack, addr, self.config.ports.lease)
        try:
            try:
                yield from rsock.connect(timeout=self.config.lease_timeout)
            except (ConnectError, SessionError, ConnectionClosed):
                self._declare_dead(conn, addr)
                return
            seq = 0
            while True:
                yield self.sim.timeout(self.config.lease_interval)
                if conn.reset or conn.peer_closed or conn.closed:
                    return  # the application path already knows
                seq += 1
                rsock.send(("PING", seq), HEARTBEAT_BYTES)
                get = rsock.recv()
                deadline = self.sim.timeout(self.config.lease_timeout)
                fired = yield self.sim.any_of([get, deadline])
                if get not in fired:
                    # withdraw the abandoned getter, then declare death
                    rsock.rx.cancel(get)
                    self.lease_expiries += 1
                    self._declare_dead(conn, addr)
                    return
        except Interrupt:
            pass
        finally:
            rsock.suspend()  # release the lease transport

    def _declare_dead(self, conn: TcpConnection, addr: str) -> None:
        self.client.quarantine_server(addr)
        if not conn.reset:
            # wake the driver: its pending recv() raises ConnectionClosed
            conn.abort()

    # -- throughput-floor watchdog -------------------------------------------
    def _watchdog_loop(self, conn: TcpConnection, addr: str):
        """Proactive gray-failure detection on the data plane.

        The lease only catches *dead* servers: a fail-slow one (throttled
        CPU, sick link) keeps answering PINGs while the transfer starves.
        This loop samples connection progress (bytes received + bytes
        acked) every ``session_watchdog_interval`` seconds, learns the
        session's normal inter-progress gap, and when the current gap's
        phi-accrual suspicion crosses ``session_watchdog_phi`` it migrates
        off the server through the exact same path a dead one takes
        (:meth:`_declare_dead` → driver's ConnectionClosed → failover).
        Cold detectors never fire (min_samples guard), so a session that
        was slow from the start is not flapped."""
        detector = SuspicionDetector(
            alpha=self.config.detector_alpha,
            quantile=self.config.detector_quantile,
            min_samples=self.config.session_watchdog_min_samples,
        )
        last_mark = conn.bytes_received + conn.bytes_acked
        last_progress = self.sim.now
        try:
            while True:
                yield self.sim.timeout(self.config.session_watchdog_interval)
                if conn.reset or conn.peer_closed or conn.closed:
                    return  # the application path already knows
                mark = conn.bytes_received + conn.bytes_acked
                now = self.sim.now
                if mark > last_mark:
                    detector.record(addr, now - last_progress)
                    last_mark = mark
                    last_progress = now
                    continue
                gap = now - last_progress
                if detector.phi(addr, gap) >= self.config.session_watchdog_phi:
                    self.slow_migrations += 1
                    self.watchdog_log.append((now, addr))
                    self._declare_dead(conn, addr)
                    return
        except Interrupt:
            pass

    # -- failover ------------------------------------------------------------
    def _retire(self, addr: str) -> None:
        """The server behind ``addr`` is dead: quarantine and exclude it."""
        self.stop_lease()
        self.client.quarantine_server(addr)
        self.excluded.add(addr)
        if not self.conn.reset:
            self.conn.abort()

    def _candidates(self, servers: list[str]) -> list[str]:
        """Rank a wizard reply for adoption: excluded/quarantined servers
        are dropped, servers a live sibling is already using sort last
        (spread the load before doubling up)."""
        usable = [
            a for a in self.client._deprioritise(servers)
            if a not in self.excluded and a not in self.client.quarantined()
        ]
        in_use = {
            s.addr for s in self._siblings if s is not self and not s.dead
        }
        return sorted(usable, key=lambda a: a in in_use)

    def failover(self):
        """Process generator -> replacement connection, or ``None``.

        Retries up to ``config.session_retries`` times with the client's
        decorrelated-jitter backoff between rounds; each round re-queries
        the wizard fleet (which itself fails over across replicas) and
        tries every acceptable candidate in rank order.
        """
        old_addr = self.addr
        self._retire(old_addr)
        # ask for enough servers that the excluded ones leave us a spare
        want = 1 + len(self.excluded) + max(0, len(self._siblings) - 1)
        backoff = self.config.client_backoff_base
        for attempt in range(max(1, self.config.session_retries)):
            if attempt > 0:
                backoff = min(
                    self.config.client_backoff_cap,
                    self.client.rng.uniform(
                        self.config.client_backoff_base, backoff * 3.0
                    ),
                )
                yield self.sim.timeout(backoff)
            reply = yield from self.client.request_servers(
                self.requirement, want, option=self.option, precheck=False,
            )
            for addr in self._candidates(reply.servers):
                kwargs = {} if self.mss is None else {"mss": self.mss}
                try:
                    conn = yield from self.client.stack.tcp.connect(
                        addr, self.service_port, **kwargs
                    )
                except ConnectError:
                    self.client._note_connect_failure(addr)
                    continue
                self.conn = conn
                self.addr = addr
                self.history.append(addr)
                self.failovers += 1
                self.start_lease()
                if self.on_resume is not None:
                    self.on_resume(self, old_addr, addr)
                return conn
        self.dead = True
        return None


def smart_sessions(
    client,
    requirement: str,
    n: int,
    option: str = "",
    service_port: Optional[int] = None,
    mss: Optional[int] = None,
    on_resume: Optional[Callable] = None,
    strict: bool = False,
    precheck: bool = True,
):
    """Process generator -> list of :class:`SmartSession`.

    The self-healing analogue of
    :meth:`~repro.core.client.SmartClient.smart_sockets`: same wizard
    round-trip and connect fan-out, but each connection comes wrapped in
    a session with a running health lease, and the whole group shares
    one dead-server exclusion set.
    """
    conns = yield from client.smart_sockets(
        requirement, n, option=option, service_port=service_port, mss=mss,
        strict=strict, precheck=precheck,
    )
    excluded: set[str] = set()
    sessions = [
        SmartSession(
            client, conn, requirement, option=option,
            service_port=service_port, mss=mss, on_resume=on_resume,
            excluded=excluded,
        )
        for conn in conns
    ]
    for session in sessions:
        session._siblings = sessions
        session.start_lease()
    return sessions
