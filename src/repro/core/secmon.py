"""Security monitor (thesis §3.4).

"In the current implementation ... the security monitor reads the security
records from a dummy security log.  The log file contains the server names
and the correspondingly security levels."  The framework is deliberately
open: any *source* implementing :class:`SecuritySource` can be plugged in —
the thesis imagines Cisco-NAC-style trust agents feeding it.

Two sources ship here:

* :class:`DummySecurityLog` — the thesis' literal design: a text log of
  ``host level`` lines re-read every interval;
* :class:`FingerprintScanner` — an nmap-flavoured extension that "scans"
  simulated hosts and derives a level from the advertised OS string,
  standing in for the fingerprint-database probing of §3.4.2.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from ..sim import Interrupt, SharedMemory, Simulator, shared
from .config import Config, DEFAULT_CONFIG
from .records import SecurityRecord

__all__ = [
    "SecuritySource",
    "DummySecurityLog",
    "FingerprintScanner",
    "SecurityMonitor",
]


class SecuritySource(Protocol):
    """Anything that can produce (host, level) pairs."""

    def collect(self) -> Iterable[tuple[str, int]]: ...


class DummySecurityLog:
    """The thesis' dummy log: ``hostname level`` per line, '#' comments."""

    def __init__(self, text: str = ""):
        self.text = text

    def set_text(self, text: str) -> None:
        self.text = text

    def collect(self) -> list[tuple[str, int]]:
        entries = []
        for lineno, line in enumerate(self.text.splitlines(), 1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"malformed security log line {lineno}: {line!r}")
            entries.append((parts[0], int(parts[1])))
        return entries


class FingerprintScanner:
    """nmap-style OS fingerprinting over the simulated cluster (extension).

    Maps advertised OS strings to clearance levels through a fingerprint
    table, defaulting unknown systems to level 0 (untrusted).
    """

    #: substring of the advertised OS string -> clearance level
    DEFAULT_FINGERPRINTS = {
        "2.4": 2,     # patched 2.4-series kernels (the testbed's fleet)
        "2.6": 3,     # newer kernel, assumed better hardened
        "Windows": 1,
    }

    def __init__(self, machines, fingerprints=None):
        self.machines = list(machines)
        self.fingerprints = dict(fingerprints or self.DEFAULT_FINGERPRINTS)

    def collect(self) -> list[tuple[str, int]]:
        out = []
        for machine in self.machines:
            level = 0
            for needle, lvl in self.fingerprints.items():
                if needle in machine.os_name:
                    level = max(level, lvl)
            out.append((machine.name, level))
        return out


class SecurityMonitor:
    """Daemon publishing host security levels to shared memory (key 1236)."""

    def __init__(
        self,
        sim: Simulator,
        shm: SharedMemory,
        source: SecuritySource,
        config: Config = DEFAULT_CONFIG,
        interval: float = 10.0,
    ):
        self.sim = sim
        self.shm = shm
        self.source = source
        self.config = config
        self.interval = interval
        self.segment_key = config.shm.monitor_security
        self._proc = None
        self.scans = 0
        self.errors = 0
        shared(self.shm.segment(self.segment_key), name="secdb").write({})

    def start(self) -> None:
        self._proc = self.sim.process(self._run(), name="secmon")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")

    def database(self) -> dict[str, SecurityRecord]:
        return dict(self.shm.segment(self.segment_key).read() or {})

    def refresh(self):
        """One collection pass (process generator)."""
        try:
            entries = list(self.source.collect())
        except (ValueError, TypeError):
            self.errors += 1
            return
        seg = self.shm.segment(self.segment_key)
        yield seg.lock.acquire()
        try:
            db = {
                host: SecurityRecord(host=host, level=level, updated_at=self.sim.now)
                for host, level in entries
            }
            seg.write(db)
            self.scans += 1
        finally:
            seg.lock.release()

    def _run(self):
        try:
            while True:
                yield from self.refresh()
                yield self.sim.timeout(self.interval)
        except Interrupt:
            pass
