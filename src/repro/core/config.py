"""Deployment constants of the Smart TCP socket library.

Ports follow thesis Table 4.2, shared-memory/semaphore keys Table 4.3, and
the operational parameters (probe interval, staleness policy, reply cap)
come from §§3.2, 3.6 and 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Ports", "ShmKeys", "Config", "Mode", "DEFAULT_CONFIG"]


class Mode:
    """Operating modes of the transmitter/receiver pair (thesis §3.5)."""

    CENTRALIZED = "centralized"
    DISTRIBUTED = "distributed"


@dataclass(frozen=True)
class Ports:
    """UDP/TCP service ports (thesis Table 4.2)."""

    system_monitor: int = 1111
    network_monitor: int = 1112
    security_monitor: int = 1113
    transmitter: int = 1110
    receiver: int = 1121
    wizard: int = 1120
    #: application service port on every worker/file server (not in the
    #: thesis tables; the client library connects here, §3.6.2 step 4)
    service: int = 9000
    #: health-lease port: the reliable-socket heartbeat responder every
    #: self-healing session pings (beyond the thesis — HA extension)
    lease: int = 9001
    #: closed port targeted by the one-way UDP probes so the peer answers
    #: with ICMP port-unreachable
    probe_target: int = 33434


@dataclass(frozen=True)
class ShmKeys:
    """System V shm/semaphore keys (thesis Table 4.3)."""

    monitor_system: int = 1234
    monitor_network: int = 1235
    monitor_security: int = 1236
    wizard_system: int = 4321
    wizard_network: int = 5321
    wizard_security: int = 6321


@dataclass(frozen=True)
class Config:
    """Tunable operational parameters."""

    ports: Ports = Ports()
    shm: ShmKeys = ShmKeys()
    #: probe reporting interval, seconds (thesis: 2 s in the resource
    #: measurements, 5–10 s suggested in §3.2.2)
    probe_interval: float = 2.0
    #: a server is dead after this many missed reports (thesis §4.1)
    probe_miss_limit: int = 3
    #: transmitter push interval in centralized mode
    transmit_interval: float = 2.0
    #: network-monitor probing interval (thesis §5.2: every 2 s)
    netmon_interval: float = 2.0
    #: probe packet sizes (thesis Table 3.3: optimal pair 1600/2900)
    netmon_sizes: tuple[int, int] = (1600, 2900)
    #: ICMP echo wait before declaring a probe lost
    netmon_timeout: float = 1.0
    #: samples per bandwidth estimate
    netmon_samples: int = 4
    #: hard cap on servers in one UDP reply (thesis §3.6.1: 60)
    max_reply_servers: int = 60
    #: client request timeout and retries
    client_timeout: float = 2.0
    client_retries: int = 2
    #: client retry backoff: exponential with decorrelated jitter, the sleep
    #: before attempt k drawn from U(base, 3 * previous) capped at the cap
    client_backoff_base: float = 0.2
    client_backoff_cap: float = 5.0
    #: how long a server stays deprioritised after a failed TCP connect
    quarantine_period: float = 10.0
    #: centralized transmitter: cap on the reconnect backoff after the
    #: receiver became unreachable (doubles from transmit_interval)
    transmit_backoff_cap: float = 4.0
    #: centralized transmitter: in-flight snapshot bytes unacked for this
    #: long means the path or peer silently died — drop and reconnect
    transmit_stall_limit: float = 6.0
    #: distributed receiver: per-transmitter budget for one pull round trip
    #: before the wizard falls back to last-known-good data
    pull_timeout: float = 2.0
    #: wizard compile cache: distinct requirement texts kept as analyzed,
    #: constant-folded ASTs (LRU); repeated requests skip lex/parse/analyze
    compile_cache_size: int = 256
    #: high availability: a wizard whose *freshest* status DB is older than
    #: this NAKs with REPLY_STALE so clients fail over to a fresher replica
    #: (``inf`` disables the check — single-wizard deployments)
    wizard_staleness_limit: float = float("inf")
    #: how long a client deprioritises a wizard replica after a timeout or
    #: staleness NAK before giving it another chance
    wizard_quarantine_period: float = 5.0
    #: self-healing sessions: heartbeat period of the health lease
    lease_interval: float = 0.5
    #: a lease with no heartbeat answer for this long is expired — the
    #: session declares the server dead and fails over
    lease_timeout: float = 2.0
    #: failover attempts a session makes before giving up its server slot
    session_retries: int = 3
    #: adaptive suspicion (phi-accrual-style) detection — gray failures.
    #: EWMA smoothing factor for per-peer RTT mean/variance
    detector_alpha: float = 0.25
    #: latency quantile tracked as the per-peer baseline (P² estimator)
    detector_quantile: float = 0.95
    #: observations before a baseline is trusted; colder peers fall back
    #: to the fixed timeouts above
    detector_min_samples: int = 5
    #: adaptive wizard-request timeout: clamp(baseline * scale, floor,
    #: client_timeout) — never waits longer than the fixed timeout, never
    #: hair-triggers below the floor
    client_timeout_floor: float = 0.25
    client_timeout_scale: float = 3.0
    #: a wizard whose RTT baseline exceeds this multiple of the best
    #: replica's baseline is demoted in the failover ranking (fail-slow
    #: replicas lose to healthy ones before they ever time out)
    wizard_rtt_demote_factor: float = 4.0
    #: monitor-clock skew a receiver tolerates before rebasing the
    #: report timestamp onto its own clock and counting suspected_skew
    skew_tolerance: float = 1.0
    #: self-healing sessions: throughput-floor watchdog sampling period
    #: (0 disables — plain lease-only sessions, the pre-gray behaviour)
    session_watchdog_interval: float = 0.0
    #: inter-progress gaps observed before the watchdog may act
    session_watchdog_min_samples: int = 4
    #: phi threshold at which a stalled-but-leased transfer is declared
    #: fail-slow and proactively migrated
    session_watchdog_phi: float = 3.0
    mode: str = Mode.CENTRALIZED


DEFAULT_CONFIG = Config()
