"""System status monitor (thesis §3.2.2).

Receives ASCII probe reports over UDP, parses them into
:class:`~repro.core.records.ServerStatusRecord`\\ s and maintains the server
status database in a keyed shared-memory segment (key 1234) under a
semaphore, exactly like the paper's monitor machine.  A reaper process
expires records whose probe has missed ``probe_miss_limit`` consecutive
intervals — this is how servers leave (and later rejoin) the pool.
"""

from __future__ import annotations


from ..sim import Interrupt, SharedMemory, Simulator, shared
from .config import Config, DEFAULT_CONFIG
from .records import ServerStatusRecord, ServerStatusReport

__all__ = ["SystemMonitor"]


class SystemMonitor:
    """Daemon on the monitor machine collecting probe reports."""

    def __init__(
        self,
        sim: Simulator,
        stack,
        shm: SharedMemory,
        config: Config = DEFAULT_CONFIG,
        clock=None,
    ):
        self.sim = sim
        self.stack = stack
        self.shm = shm
        self.config = config
        #: the host's (possibly skewed) wall clock; None = true sim time.
        #: Records are stamped with it, exactly as a real monitor stamps
        #: with gettimeofday() — downstream receivers rebase if it lies.
        self.clock = clock
        self.segment_key = config.shm.monitor_system
        self._listener = None
        self._tcp_listener = None
        self._tcp_sessions: list = []
        self._reaper = None
        self.reports_received = 0
        self.tcp_reports_received = 0
        self.parse_errors = 0
        self.expired = 0
        # initialise the segment with an empty database; shared() names
        # it for the happens-before sanitizer
        shared(self.shm.segment(self.segment_key),
               name=f"sysdb@{stack.node.name}").write({})

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        sock = self.stack.udp_socket(self.config.ports.system_monitor)
        self._listener = self.sim.process(self._listen(sock), name="sysmon-listen")
        # thesis §6 "UDP vs TCP": long reports on congested networks should
        # switch to TCP — the monitor accepts both on the same port number
        self._tcp_listener = self.sim.process(
            self._listen_tcp(), name="sysmon-listen-tcp"
        )
        self._reaper = self.sim.process(self._reap(), name="sysmon-reap")

    def stop(self) -> None:
        for proc in (self._listener, self._tcp_listener, self._reaper,
                     *self._tcp_sessions):
            if proc is not None and proc.is_alive:
                proc.interrupt("stop")

    # -- data access -------------------------------------------------------------
    def _now(self) -> float:
        """This host's wall-clock reading (skewed when a skew-clock fault
        is active); the simulator's true time without a clock."""
        return self.clock.now() if self.clock is not None else self.sim.now

    def database(self) -> dict[str, ServerStatusRecord]:
        """Snapshot of the server status DB (addr -> record)."""
        return dict(self.shm.segment(self.segment_key).read() or {})

    # -- daemons ---------------------------------------------------------------
    def _listen(self, sock):
        try:
            while True:
                dgram = yield sock.recv()
                try:
                    report = ServerStatusReport.from_wire(dgram.payload)
                except (ValueError, TypeError):
                    self.parse_errors += 1
                    continue
                self.reports_received += 1
                yield from self._upsert(report)
        except Interrupt:
            pass
        finally:
            sock.close()  # free the port so a restarted monitor can bind

    def _listen_tcp(self):
        listener = self.stack.tcp.listen(self.config.ports.system_monitor)
        try:
            while True:
                conn = yield listener.accept()
                # prune finished sessions so the list cannot grow without
                # bound over a long run full of short-lived reporters
                self._tcp_sessions[:] = [
                    p for p in self._tcp_sessions if p.is_alive
                ]
                proc = self.sim.process(
                    self._tcp_session(conn), name="sysmon-tcp-session"
                )
                self._tcp_sessions.append(proc)
        except Interrupt:
            listener.close()

    def _tcp_session(self, conn):
        from ..net.tcp import ConnectionClosed

        try:
            while True:
                try:
                    payload, _ = yield conn.recv()
                except ConnectionClosed:
                    return
                try:
                    report = ServerStatusReport.from_wire(payload)
                except (ValueError, TypeError):
                    self.parse_errors += 1
                    continue
                self.reports_received += 1
                self.tcp_reports_received += 1
                yield from self._upsert(report)
        except Interrupt:
            conn.close()

    def _upsert(self, report: ServerStatusReport):
        seg = self.shm.segment(self.segment_key)
        yield seg.lock.acquire()
        try:
            # copy-on-write upsert: in-place mutation of the stored dict
            # would bypass shared() tracking.  Per status report (seconds
            # apart per host), not per wizard request; delta shipping
            # (ROADMAP: fleet-sized traffic) is the structural fix.
            db = dict(seg.read() or {})  # repro: noqa[REPRO501]
            db[report.addr] = ServerStatusRecord(report=report, updated_at=self._now())
            seg.write(db)
        finally:
            seg.lock.release()

    def _reap(self):
        interval = self.config.probe_interval
        limit = self.config.probe_miss_limit * interval
        seg = self.shm.segment(self.segment_key)
        try:
            while True:
                yield self.sim.timeout(interval)
                yield seg.lock.acquire()
                try:
                    # copy-on-write reap, once per probe_interval — same
                    # shared()-tracking constraint and ROADMAP pointer as
                    # _upsert above
                    db = dict(seg.read() or {})  # repro: noqa[REPRO501]
                    stale = [a for a, rec in db.items() if rec.age(self._now()) > limit]
                    for addr in stale:
                        del db[addr]
                        self.expired += 1
                    if stale:
                        seg.write(db)
                finally:
                    seg.lock.release()
        except Interrupt:
            pass
