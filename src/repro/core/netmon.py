"""Network monitor: one-way UDP stream measurements (thesis §3.3).

The measurement primitive sends a UDP datagram of chosen size to a *closed*
port on the target and times the ICMP port-unreachable echo.  Available
bandwidth follows Eq. 3.5:

    B = (S2 - S1) / (T2 - T1)

with the probe sizes chosen **above the MTU** (thesis rule) so the
initialisation term of Eq. 3.6 is constant and cancels; the thesis'
sweet-spot pair is 1600/2900 bytes (Table 3.3).

Also provided, as the thesis' comparison baselines for Table 3.3:

* :func:`pipechar_estimate` — packet-pair dispersion (single-ended, echo
  gap of two back-to-back large probes),
* :func:`pathload_estimate` — a SLoPS-style rate search watching for an
  increasing one-way-delay trend within a constant-rate stream.

:class:`NetworkMonitor` is the daemon: it probes each peer group
sequentially (the thesis warns concurrent probes interfere), maintains the
``(delay, bw)`` table of Table 3.4 and publishes it to shared memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..sim import Interrupt, SharedMemory, Simulator, shared
from .config import Config, DEFAULT_CONFIG
from .records import NetMetric, NetStatusRecord

__all__ = [
    "measure_rtt",
    "rtt_curve",
    "BandwidthEstimate",
    "estimate_bandwidth",
    "pipechar_estimate",
    "pathload_estimate",
    "NetworkMonitor",
]


# ---------------------------------------------------------------------------
# measurement primitives (process generators: use with ``yield from``)
# ---------------------------------------------------------------------------

def measure_rtt(stack, dst: str, size: int, port: int = 33434,
                timeout: float = 2.0):
    """Send one UDP probe of ``size`` payload bytes; return the RTT to the
    ICMP port-unreachable echo, or ``None`` on timeout."""
    sim = stack.sim
    sock = stack.udp_socket()
    tap = stack.icmp_tap()
    try:
        t0 = sim.now
        probe = sock.sendto(dst, port, size=size)
        deadline = sim.timeout(timeout)
        while True:
            get = tap.get()
            fired = yield sim.any_of([get, deadline])
            if get not in fired:
                return None
            err = fired[get]
            if err.ref == probe.id:
                return sim.now - t0
            # stale echo from an earlier probe: keep waiting
    finally:
        sock.close()
        stack.icmp_taps.remove(tap)


def rtt_curve(stack, dst: str, sizes, port: int = 33434, gap: float = 0.01,
              timeout: float = 2.0):
    """RTT for each payload size in ``sizes``; returns ``[(size, rtt)]``
    with lost probes omitted.  This regenerates thesis Figs 3.3–3.6."""
    results = []
    for size in sizes:
        rtt = yield from measure_rtt(stack, dst, size, port=port, timeout=timeout)
        if rtt is not None:
            results.append((size, rtt))
        yield stack.sim.timeout(gap)
    return results


@dataclass
class BandwidthEstimate:
    """Outcome of a multi-sample one-way-UDP-stream estimate."""

    samples_bps: list[float] = field(default_factory=list)
    delay_s: Optional[float] = None  # min RTT of the small probe
    lost: int = 0

    @property
    def ok(self) -> bool:
        return bool(self.samples_bps)

    @property
    def min_bps(self) -> float:
        return min(self.samples_bps)

    @property
    def max_bps(self) -> float:
        return max(self.samples_bps)

    @property
    def avg_bps(self) -> float:
        return sum(self.samples_bps) / len(self.samples_bps)


def estimate_bandwidth(stack, dst: str, s1: int = 1600, s2: int = 2900,
                       samples: int = 4, reps: int = 3, port: int = 33434,
                       gap: float = 0.05, timeout: float = 2.0):
    """One-way UDP *stream* estimate of available bandwidth (Eq. 3.5).

    Per sample, a short stream of ``reps`` probes is sent at each size and
    the **minimum** delay per size is kept — min-filtering rejects transient
    cross-traffic queueing, which is what makes the method a *stream*
    method rather than a fragile single-packet-pair (the thesis' critique
    of pipechar, §3.3.1).  Then ``B = 8(S2-S1)/(T2-T1)``.  Samples whose
    delay difference is non-positive are discarded.
    """
    if s2 <= s1:
        raise ValueError(f"need s2 > s1, got {s1} >= {s2}")
    if reps <= 0:
        raise ValueError(f"reps must be positive, got {reps}")
    est = BandwidthEstimate()
    sim = stack.sim

    def min_rtt(size):
        best = None
        for _ in range(reps):
            rtt = yield from measure_rtt(stack, dst, size, port=port, timeout=timeout)
            if rtt is not None and (best is None or rtt < best):
                best = rtt
            yield sim.timeout(gap / reps)
        return best

    for _ in range(samples):
        t1 = yield from min_rtt(s1)
        t2 = yield from min_rtt(s2)
        if t1 is None or t2 is None:
            est.lost += 1
            continue
        if est.delay_s is None or t1 < est.delay_s:
            est.delay_s = t1
        dt = t2 - t1
        if dt <= 0:
            est.lost += 1
            continue
        est.samples_bps.append((s2 - s1) * 8.0 / dt)
    return est


def pipechar_estimate(stack, dst: str, size: int = 1500, pairs: int = 4,
                      port: int = 33434, timeout: float = 2.0):
    """Packet-pair dispersion (pipechar's core idea, §2.1).

    Two equal, back-to-back probes; the echo-time gap estimates the
    bottleneck serialisation of one probe: ``C = 8*size/gap``.  Highly
    sensitive to delay fluctuation — exactly the weakness the thesis
    observed on loaded paths.
    """
    sim = stack.sim
    sock = stack.udp_socket()
    tap = stack.icmp_tap()
    estimates = []
    try:
        for _ in range(pairs):
            p1 = sock.sendto(dst, port, size=size)
            p2 = sock.sendto(dst, port, size=size)
            echoes: dict[int, float] = {}
            deadline = sim.timeout(timeout)
            while len(echoes) < 2:
                get = tap.get()
                fired = yield sim.any_of([get, deadline])
                if get not in fired:
                    break
                err = fired[get]
                if err.ref in (p1.id, p2.id):
                    echoes[err.ref] = sim.now
            if len(echoes) == 2:
                gap = echoes[p2.id] - echoes[p1.id]
                if gap > 0:
                    estimates.append((size + 28) * 8.0 / gap)
            yield sim.timeout(0.05)
    finally:
        sock.close()
        stack.icmp_taps.remove(tap)
    if not estimates:
        return None
    estimates.sort()
    return estimates[len(estimates) // 2]  # median


def pathload_estimate(stack, dst: str, lo_bps: float = 1e6, hi_bps: float = 200e6,
                      stream_len: int = 12, size: int = 1200,
                      iterations: int = 8, port: int = 33434):
    """SLoPS-style search (pathload's idea, §2.1 / §3.3.1).

    For a candidate rate R, send a constant-rate stream and test whether
    the one-way delays (approximated by ICMP RTTs) trend upward — if so the
    path queue is building and R exceeds the available bandwidth.  Binary
    search converges on the crossing point.
    """
    sim = stack.sim
    sock = stack.udp_socket()
    tap = stack.icmp_tap()

    def stream_trend(rate_bps):
        spacing = size * 8.0 / rate_bps
        sent = {}
        rtts = []
        for _ in range(stream_len):
            probe = sock.sendto(dst, port, size=size)
            sent[probe.id] = sim.now
            yield sim.timeout(spacing)
        deadline = sim.timeout(2.0)
        got = 0
        while got < stream_len:
            get = tap.get()
            fired = yield sim.any_of([get, deadline])
            if get not in fired:
                break
            err = fired[get]
            if err.ref in sent:
                rtts.append(sim.now - sent.pop(err.ref))
                got += 1
        if len(rtts) < stream_len // 2:
            return True  # heavy loss: treat as over-rate
        half = len(rtts) // 2
        early = sum(rtts[:half]) / half
        late = sum(rtts[half:]) / (len(rtts) - half)
        return late > early * 1.05  # >5 % delay growth = queue building

    try:
        lo, hi = lo_bps, hi_bps
        for _ in range(iterations):
            mid = math.sqrt(lo * hi)  # geometric: rates span decades
            rising = yield from stream_trend(mid)
            if rising:
                hi = mid
            else:
                lo = mid
            yield sim.timeout(0.1)
        return (lo, hi)
    finally:
        sock.close()
        stack.icmp_taps.remove(tap)


# ---------------------------------------------------------------------------
# the daemon
# ---------------------------------------------------------------------------

class NetworkMonitor:
    """Per-group daemon probing peer monitors (thesis §3.3.3, Fig 3.8)."""

    def __init__(
        self,
        sim: Simulator,
        stack,
        shm: SharedMemory,
        group: str,
        config: Config = DEFAULT_CONFIG,
    ):
        self.sim = sim
        self.stack = stack
        self.shm = shm
        self.group = group
        self.config = config
        self.segment_key = config.shm.monitor_network
        #: peer group name -> monitor address
        self.peers: dict[str, str] = {}
        self._proc = None
        self.probes_done = 0
        self.probe_bytes = 0
        shared(self.shm.segment(self.segment_key),
               name=f"netdb@{group}").write(
            {group: NetStatusRecord(group=group)}
        )

    def add_peer(self, group: str, addr: str) -> None:
        if group == self.group:
            raise ValueError("a monitor does not probe its own group")
        self.peers[group] = addr

    def start(self) -> None:
        self._proc = self.sim.process(self._run(), name=f"netmon-{self.group}")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")

    def table(self) -> NetStatusRecord:
        db = self.shm.segment(self.segment_key).read() or {}
        return db.get(self.group, NetStatusRecord(group=self.group))

    def _run(self):
        cfg = self.config
        s1, s2 = cfg.netmon_sizes
        try:
            while True:
                # sequential probing, one peer after another (thesis §3.3.3)
                for group, addr in list(self.peers.items()):
                    est = yield from estimate_bandwidth(
                        self.stack, addr, s1=s1, s2=s2,
                        samples=cfg.netmon_samples,
                        port=cfg.ports.probe_target,
                        timeout=cfg.netmon_timeout,
                    )
                    if est.ok and est.delay_s is not None:
                        metric = NetMetric(
                            delay_ms=est.delay_s * 1e3 / 2,  # one-way ≈ RTT/2
                            bw_mbps=est.avg_bps / 1e6,
                        )
                        yield from self._publish(group, metric)
                    self.probes_done += 1
                    # per sample: 3 reps of each size + the ICMP echoes
                    self.probe_bytes += cfg.netmon_samples * 3 * (s1 + s2 + 2 * 84)
                yield self.sim.timeout(cfg.netmon_interval)
        except Interrupt:
            pass

    def _publish(self, peer_group: str, metric: NetMetric):
        seg = self.shm.segment(self.segment_key)
        yield seg.lock.acquire()
        try:
            # copy-on-write is required here: mutating the stored dict in
            # place would bypass shared() tracking.  Runs at probe rate
            # (netmon_interval), not request rate, so the copy is cheap;
            # delta shipping (ROADMAP: fleet-sized traffic) removes it.
            db = dict(seg.read() or {})  # repro: noqa[REPRO501]
            rec = db.get(self.group) or NetStatusRecord(group=self.group)
            rec.metrics = dict(rec.metrics)
            rec.metrics[peer_group] = metric
            rec.updated_at = self.sim.now
            db[self.group] = rec
            seg.write(db)
        finally:
            seg.lock.release()
