"""Transmitter: ships the three status databases to the wizard machine
(thesis §3.5.1).

Records cross in binary ``[type, size, data]`` messages over TCP.  Two
behaviours:

* **centralized** — actively pushes a snapshot of the three shared-memory
  segments to the receiver every interval over a persistent connection;
* **distributed** — passive: listens on its own port and answers each
  ``MSG_PULL`` with a fresh snapshot, so status only crosses the (wide
  area) network when a wizard actually needs it.

The centralized push loop is failure-hardened: a send that hits a reset or
locally-closed connection drops the connection instead of killing the
daemon, reconnects back off exponentially (capped at
``config.transmit_backoff_cap``), and a snapshot whose bytes sit unacked
for ``config.transmit_stall_limit`` seconds — a partition or a silently
crashed receiver — triggers an abort-and-reconnect, so recovery after a
heal is bounded by the backoff cap rather than by TCP's backed-off
retransmission timer.
"""

from __future__ import annotations

from typing import Optional

from ..net.tcp import ConnectError, ConnectionClosed
from ..sim import Interrupt, SharedMemory, Simulator
from .config import Config, DEFAULT_CONFIG, Mode
from .records import MSG_PULL, WireMessage

__all__ = ["Transmitter"]


class Transmitter:
    """Daemon on the monitor machine."""

    def __init__(
        self,
        sim: Simulator,
        stack,
        shm: SharedMemory,
        receiver_addr: Optional[str] = None,
        config: Config = DEFAULT_CONFIG,
        mode: Optional[str] = None,
    ):
        self.sim = sim
        self.stack = stack
        self.shm = shm
        self.receiver_addr = receiver_addr
        self.config = config
        self.mode = mode or config.mode
        if self.mode == Mode.CENTRALIZED and receiver_addr is None:
            raise ValueError("centralized transmitter needs a receiver address")
        self._proc = None
        self.snapshots_sent = 0
        self.bytes_sent = 0
        self.connects = 0
        self.send_failures = 0
        self.stalls = 0

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        if self.mode == Mode.CENTRALIZED:
            self._proc = self.sim.process(self._push_loop(), name="transmitter-push")
        else:
            self._proc = self.sim.process(self._serve_pulls(), name="transmitter-serve")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")

    # -- snapshotting ------------------------------------------------------------
    def snapshot(self):
        """Process generator: read the 3 segments under their semaphores and
        return the corresponding wire messages."""
        keys = self.config.shm
        messages = []
        for key, builder in (
            (keys.monitor_system, WireMessage.sysdb),
            (keys.monitor_network, WireMessage.netdb),
            (keys.monitor_security, WireMessage.secdb),
        ):
            seg = self.shm.segment(key)
            yield seg.lock.acquire()
            try:
                data = seg.read() or {}
            finally:
                seg.lock.release()
            messages.append(builder(dict(data)))
        return messages

    def _send_messages(self, conn, messages) -> None:
        for msg in messages:
            # [type, size] header first, then the binary body — the header
            # is what lets the receiver size its buffer (thesis §3.5.1)
            conn.send(("hdr", msg.type, msg.size), 8)
            conn.send(("body", msg.type, msg.data), max(1, msg.size))
            self.bytes_sent += 8 + max(1, msg.size)

    # -- centralized push ----------------------------------------------------------
    def _push_loop(self):
        conn = None
        backoff = self.config.transmit_interval
        acked_mark = 0
        progress_at = 0.0
        try:
            while True:
                if conn is not None and (conn.peer_closed or conn.reset):
                    conn.close()
                    conn = None
                if conn is not None and conn.in_flight > 0:
                    # stall watchdog: a partition or silently-crashed
                    # receiver never acks; waiting out TCP's backed-off
                    # retransmission timer would blow the recovery budget
                    if conn.bytes_acked > acked_mark:
                        acked_mark = conn.bytes_acked
                        progress_at = self.sim.now
                    elif (
                        self.sim.now - progress_at
                        >= self.config.transmit_stall_limit
                    ):
                        self.stalls += 1
                        conn.abort()
                        conn = None
                if conn is None:
                    try:
                        conn = yield from self.stack.tcp.connect(
                            self.receiver_addr, self.config.ports.receiver
                        )
                    except ConnectError:
                        yield self.sim.timeout(backoff)
                        backoff = min(
                            backoff * 2.0, self.config.transmit_backoff_cap
                        )
                        continue
                    self.connects += 1
                    backoff = self.config.transmit_interval
                    acked_mark = conn.bytes_acked
                    progress_at = self.sim.now
                messages = yield from self.snapshot()
                try:
                    self._send_messages(conn, messages)
                except ConnectionClosed:
                    # connection died mid-snapshot: drop it and reconnect
                    # on the next pass instead of killing the daemon
                    self.send_failures += 1
                    conn = None
                    continue
                self.snapshots_sent += 1
                yield self.sim.timeout(self.config.transmit_interval)
        except Interrupt:
            if conn is not None:
                conn.close()

    # -- distributed serve -----------------------------------------------------------
    def _serve_pulls(self):
        listener = self.stack.tcp.listen(self.config.ports.transmitter)
        sessions = []
        try:
            while True:
                conn = yield listener.accept()
                sessions[:] = [p for p in sessions if p.is_alive]
                sessions.append(
                    self.sim.process(self._session(conn), name="transmitter-session")
                )
        except Interrupt:
            listener.close()
            for proc in sessions:
                if proc.is_alive:
                    proc.interrupt("stop")

    def _session(self, conn):
        try:
            while True:
                try:
                    payload, _ = yield conn.recv()
                except ConnectionClosed:
                    return
                if isinstance(payload, WireMessage) and payload.type == MSG_PULL:
                    messages = yield from self.snapshot()
                    try:
                        self._send_messages(conn, messages)
                    except ConnectionClosed:
                        self.send_failures += 1
                        return
                    self.snapshots_sent += 1
        except Interrupt:
            conn.close()
