"""Transmitter: ships the three status databases to the wizard machine
(thesis §3.5.1), extended to a *replicated* control plane.

Records cross in binary ``[type, size, data]`` messages over TCP.  Two
behaviours:

* **centralized** — actively pushes a snapshot of the three shared-memory
  segments to every receiver every interval over persistent connections;
* **distributed** — passive: listens on its own port and answers each
  ``MSG_PULL`` with a fresh snapshot, so status only crosses the (wide
  area) network when a wizard actually needs it.

High availability (beyond the thesis): the centralized transmitter *fans
out* — it accepts a list of receiver addresses and runs one fully
independent push loop per receiver, each with its own connection,
reconnect backoff and stall watchdog.  A receiver that is down, wedged
or partitioned costs only its own loop; snapshots keep flowing to the
healthy replicas at the normal cadence (partial fan-out failure must
never stall the others).

Each push loop is failure-hardened: a send that hits a reset or
locally-closed connection drops the connection instead of killing the
daemon, reconnects back off exponentially (capped at
``config.transmit_backoff_cap``), and a snapshot whose bytes sit unacked
for ``config.transmit_stall_limit`` seconds — a partition or a silently
crashed receiver — triggers an abort-and-reconnect, so recovery after a
heal is bounded by the backoff cap rather than by TCP's backed-off
retransmission timer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..net.tcp import ConnectError, ConnectionClosed
from ..sim import Interrupt, SharedMemory, Simulator
from .config import Config, DEFAULT_CONFIG, Mode
from .records import MSG_PULL, WireMessage

__all__ = ["Transmitter", "PushStats"]


@dataclass
class PushStats:
    """Per-receiver counters of one fan-out push loop."""

    addr: str
    snapshots_sent: int = 0
    bytes_sent: int = 0
    connects: int = 0
    send_failures: int = 0
    stalls: int = 0
    #: sim time of the last snapshot fully handed to the TCP layer
    last_push_at: float = field(default=-1.0)


class Transmitter:
    """Daemon on the monitor machine."""

    def __init__(
        self,
        sim: Simulator,
        stack,
        shm: SharedMemory,
        receiver_addr: Optional[str] = None,
        config: Config = DEFAULT_CONFIG,
        mode: Optional[str] = None,
        receiver_addrs: Optional[Sequence[str]] = None,
        clock=None,
    ):
        self.sim = sim
        self.stack = stack
        self.shm = shm
        self.config = config
        #: the host's (possibly skewed) wall clock; None = true sim time
        self.clock = clock
        self.mode = mode or config.mode
        #: fan-out targets: explicit list wins; the single-address form is
        #: kept for the thesis' one-wizard deployments
        addrs = list(receiver_addrs) if receiver_addrs else []
        if not addrs and receiver_addr is not None:
            addrs = [receiver_addr]
        self.receiver_addrs: list[str] = addrs
        self.receiver_addr = addrs[0] if addrs else None
        if self.mode == Mode.CENTRALIZED and not addrs:
            raise ValueError("centralized transmitter needs a receiver address")
        self._procs: list = []
        #: per-receiver counters, in fan-out order
        self.push_stats: dict[str, PushStats] = {
            addr: PushStats(addr) for addr in addrs
        }
        # distributed-mode (pull) counters, folded into the aggregates
        self._pull_snapshots = 0
        self._pull_bytes = 0
        self._pull_send_failures = 0

    # -- aggregate counters (back-compat with the single-receiver API) -------
    @property
    def snapshots_sent(self) -> int:
        return sum(s.snapshots_sent for s in self.push_stats.values()) \
            + self._pull_snapshots

    @property
    def bytes_sent(self) -> int:
        return sum(s.bytes_sent for s in self.push_stats.values()) \
            + self._pull_bytes

    @property
    def connects(self) -> int:
        return sum(s.connects for s in self.push_stats.values())

    @property
    def send_failures(self) -> int:
        return sum(s.send_failures for s in self.push_stats.values()) \
            + self._pull_send_failures

    @property
    def stalls(self) -> int:
        return sum(s.stalls for s in self.push_stats.values())

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        self._procs = []
        if self.mode == Mode.CENTRALIZED:
            for addr in self.receiver_addrs:
                self._procs.append(self.sim.process(
                    self._push_loop(addr), name=f"transmitter-push-{addr}"
                ))
        else:
            self._procs.append(self.sim.process(
                self._serve_pulls(), name="transmitter-serve"
            ))

    def stop(self) -> None:
        for proc in self._procs:
            if proc is not None and proc.is_alive:
                proc.interrupt("stop")

    @property
    def _proc(self):
        """First worker process (legacy single-loop accessor)."""
        return self._procs[0] if self._procs else None

    # -- snapshotting ------------------------------------------------------------
    def snapshot(self):
        """Process generator: read the 3 segments under their semaphores and
        return the corresponding wire messages."""
        keys = self.config.shm
        messages = []
        for key, builder in (
            (keys.monitor_system, WireMessage.sysdb),
            (keys.monitor_network, WireMessage.netdb),
            (keys.monitor_security, WireMessage.secdb),
        ):
            seg = self.shm.segment(key)
            yield seg.lock.acquire()
            try:
                data = seg.read() or {}
            finally:
                seg.lock.release()
            messages.append(builder(dict(data)))
        return messages

    def _now(self) -> float:
        """This host's wall-clock reading (skewed when a skew-clock fault
        is active); the simulator's true time without a clock."""
        return self.clock.now() if self.clock is not None else self.sim.now

    def _send_messages(self, conn, messages) -> int:
        sent = 0
        stamp = self._now()
        for msg in messages:
            # [type, size] header first, then the binary body — the header
            # is what lets the receiver size its buffer (thesis §3.5.1).
            # The body carries this clock's reading so the receiver can
            # spot (and rebase around) a skewed reporter clock; 8 stamp
            # bytes ride in the header's reserved field, no size change.
            conn.send(("hdr", msg.type, msg.size), 8)
            conn.send(("body", msg.type, msg.data, stamp), max(1, msg.size))
            sent += 8 + max(1, msg.size)
        return sent

    # -- centralized push ----------------------------------------------------------
    def _push_loop(self, addr: str):
        """One receiver's push loop — connection, backoff and stall
        watchdog are all private to this loop, so a dead replica never
        stalls the fan-out to the live ones."""
        stats = self.push_stats[addr]
        conn = None
        backoff = self.config.transmit_interval
        acked_mark = 0
        progress_at = 0.0
        try:
            while True:
                if conn is not None and (conn.peer_closed or conn.reset):
                    conn.close()
                    conn = None
                if conn is not None and conn.in_flight > 0:
                    # stall watchdog: a partition or silently-crashed
                    # receiver never acks; waiting out TCP's backed-off
                    # retransmission timer would blow the recovery budget
                    if conn.bytes_acked > acked_mark:
                        acked_mark = conn.bytes_acked
                        progress_at = self.sim.now
                    elif (
                        self.sim.now - progress_at
                        >= self.config.transmit_stall_limit
                    ):
                        stats.stalls += 1
                        conn.abort()
                        conn = None
                if conn is None:
                    try:
                        conn = yield from self.stack.tcp.connect(
                            addr, self.config.ports.receiver
                        )
                    except ConnectError:
                        yield self.sim.timeout(backoff)
                        backoff = min(
                            backoff * 2.0, self.config.transmit_backoff_cap
                        )
                        continue
                    stats.connects += 1
                    backoff = self.config.transmit_interval
                    acked_mark = conn.bytes_acked
                    progress_at = self.sim.now
                messages = yield from self.snapshot()
                try:
                    stats.bytes_sent += self._send_messages(conn, messages)
                except ConnectionClosed:
                    # connection died mid-snapshot: drop it and reconnect
                    # on the next pass instead of killing the daemon
                    stats.send_failures += 1
                    conn = None
                    continue
                stats.snapshots_sent += 1
                stats.last_push_at = self.sim.now
                yield self.sim.timeout(self.config.transmit_interval)
        except Interrupt:
            if conn is not None:
                conn.close()

    # -- distributed serve -----------------------------------------------------------
    def _serve_pulls(self):
        listener = self.stack.tcp.listen(self.config.ports.transmitter)
        sessions = []
        try:
            while True:
                conn = yield listener.accept()
                sessions[:] = [p for p in sessions if p.is_alive]
                sessions.append(
                    self.sim.process(self._session(conn), name="transmitter-session")
                )
        except Interrupt:
            listener.close()
            for proc in sessions:
                if proc.is_alive:
                    proc.interrupt("stop")

    def _session(self, conn):
        try:
            while True:
                try:
                    payload, _ = yield conn.recv()
                except ConnectionClosed:
                    return
                if isinstance(payload, WireMessage) and payload.type == MSG_PULL:
                    messages = yield from self.snapshot()
                    try:
                        self._pull_bytes += self._send_messages(conn, messages)
                    except ConnectionClosed:
                        self._pull_send_failures += 1
                        return
                    self._pull_snapshots += 1
        except Interrupt:
            conn.close()
