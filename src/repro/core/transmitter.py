"""Transmitter: ships the three status databases to the wizard machine
(thesis §3.5.1).

Records cross in binary ``[type, size, data]`` messages over TCP.  Two
behaviours:

* **centralized** — actively pushes a snapshot of the three shared-memory
  segments to the receiver every interval over a persistent connection;
* **distributed** — passive: listens on its own port and answers each
  ``MSG_PULL`` with a fresh snapshot, so status only crosses the (wide
  area) network when a wizard actually needs it.
"""

from __future__ import annotations

from typing import Optional

from ..net.tcp import ConnectError, ConnectionClosed
from ..sim import Interrupt, SharedMemory, Simulator
from .config import Config, DEFAULT_CONFIG, Mode
from .records import MSG_PULL, WireMessage

__all__ = ["Transmitter"]


class Transmitter:
    """Daemon on the monitor machine."""

    def __init__(
        self,
        sim: Simulator,
        stack,
        shm: SharedMemory,
        receiver_addr: Optional[str] = None,
        config: Config = DEFAULT_CONFIG,
        mode: Optional[str] = None,
    ):
        self.sim = sim
        self.stack = stack
        self.shm = shm
        self.receiver_addr = receiver_addr
        self.config = config
        self.mode = mode or config.mode
        if self.mode == Mode.CENTRALIZED and receiver_addr is None:
            raise ValueError("centralized transmitter needs a receiver address")
        self._proc = None
        self.snapshots_sent = 0
        self.bytes_sent = 0

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        if self.mode == Mode.CENTRALIZED:
            self._proc = self.sim.process(self._push_loop(), name="transmitter-push")
        else:
            self._proc = self.sim.process(self._serve_pulls(), name="transmitter-serve")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")

    # -- snapshotting ------------------------------------------------------------
    def snapshot(self):
        """Process generator: read the 3 segments under their semaphores and
        return the corresponding wire messages."""
        keys = self.config.shm
        messages = []
        for key, builder in (
            (keys.monitor_system, WireMessage.sysdb),
            (keys.monitor_network, WireMessage.netdb),
            (keys.monitor_security, WireMessage.secdb),
        ):
            seg = self.shm.segment(key)
            yield seg.lock.acquire()
            try:
                data = seg.read() or {}
            finally:
                seg.lock.release()
            messages.append(builder(dict(data)))
        return messages

    def _send_messages(self, conn, messages) -> None:
        for msg in messages:
            # [type, size] header first, then the binary body — the header
            # is what lets the receiver size its buffer (thesis §3.5.1)
            conn.send(("hdr", msg.type, msg.size), 8)
            conn.send(("body", msg.type, msg.data), max(1, msg.size))
            self.bytes_sent += 8 + max(1, msg.size)

    # -- centralized push ----------------------------------------------------------
    def _push_loop(self):
        conn = None
        try:
            while True:
                if conn is None or conn.peer_closed:
                    try:
                        conn = yield from self.stack.tcp.connect(
                            self.receiver_addr, self.config.ports.receiver
                        )
                    except ConnectError:
                        yield self.sim.timeout(self.config.transmit_interval)
                        continue
                messages = yield from self.snapshot()
                self._send_messages(conn, messages)
                self.snapshots_sent += 1
                yield self.sim.timeout(self.config.transmit_interval)
        except Interrupt:
            if conn is not None:
                conn.close()

    # -- distributed serve -----------------------------------------------------------
    def _serve_pulls(self):
        listener = self.stack.tcp.listen(self.config.ports.transmitter)
        sessions = []
        try:
            while True:
                conn = yield listener.accept()
                sessions.append(
                    self.sim.process(self._session(conn), name="transmitter-session")
                )
        except Interrupt:
            listener.close()
            for proc in sessions:
                if proc.is_alive:
                    proc.interrupt("stop")

    def _session(self, conn):
        try:
            while True:
                try:
                    payload, _ = yield conn.recv()
                except ConnectionClosed:
                    return
                if isinstance(payload, WireMessage) and payload.type == MSG_PULL:
                    messages = yield from self.snapshot()
                    self._send_messages(conn, messages)
                    self.snapshots_sent += 1
        except Interrupt:
            conn.close()
