"""Server-selection strategies: the smart path and the paper's baselines.

The evaluation chapters compare the Smart library against *random* server
selection ("In the conventional socket library, users have to randomly
select servers", §5.3.2); §3.3.3 also names blind *round-robin* as the
classic technique.  All three share one interface so experiments can swap
them freely.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence, TYPE_CHECKING

from ..sim import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    import random

__all__ = ["Selector", "RandomSelector", "RoundRobinSelector", "StaticSelector"]


class Selector(Protocol):
    """Pick ``n`` servers from a pool."""

    def select(self, n: int) -> list[str]: ...


class RandomSelector:
    """Uniform random choice without replacement (the paper's comparator)."""

    def __init__(self, pool: Sequence[str], rng: Optional["random.Random"] = None):
        if not pool:
            raise ValueError("empty server pool")
        self.pool = list(pool)
        self.rng = rng or RandomStreams(42).stream("random-selector")

    def select(self, n: int) -> list[str]:
        if n > len(self.pool):
            raise ValueError(f"asked for {n} servers from a pool of {len(self.pool)}")
        return self.rng.sample(self.pool, n)


class RoundRobinSelector:
    """Cycle through the pool — the classic dispatcher baseline (§3.3.3)."""

    def __init__(self, pool: Sequence[str]):
        if not pool:
            raise ValueError("empty server pool")
        self.pool = list(pool)
        self._cursor = 0

    def select(self, n: int) -> list[str]:
        if n > len(self.pool):
            raise ValueError(f"asked for {n} servers from a pool of {len(self.pool)}")
        picked = []
        for _ in range(n):
            picked.append(self.pool[self._cursor % len(self.pool)])
            self._cursor += 1
        return picked


class StaticSelector:
    """A fixed, hand-written server list — the "static configuration
    statements manually prepared" the thesis' summary criticises."""

    def __init__(self, servers: Sequence[str]):
        self.servers = list(servers)

    def select(self, n: int) -> list[str]:
        if n > len(self.servers):
            raise ValueError(f"static list has only {len(self.servers)} servers")
        return self.servers[:n]
