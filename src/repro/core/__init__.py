"""The Smart TCP socket library — the paper's primary contribution.

Components (thesis Fig 3.1): server probes, the three monitors (system /
network / security), the transmitter/receiver pair, the wizard, and the
client library; plus the selection baselines used by the evaluation.
"""

from .client import (
    InsufficientServers,
    Quarantine,
    RequirementRejected,
    SmartClient,
    SmartReply,
)
from .config import Config, DEFAULT_CONFIG, Mode, Ports, ShmKeys
from .detector import Ewma, IncrementalQuantile, SuspicionDetector
from .netmon import (
    BandwidthEstimate,
    NetworkMonitor,
    estimate_bandwidth,
    measure_rtt,
    pathload_estimate,
    pipechar_estimate,
    rtt_curve,
)
from .probe import ServerProbe
from .receiver import Receiver
from .rsocket import ReliableServer, ReliableSession, ReliableSocket, SessionError
from .records import (
    MSG_NETDB,
    MSG_PULL,
    MSG_SECDB,
    MSG_SYSDB,
    REPLY_NAK,
    REPLY_OK,
    REPLY_STALE,
    NetMetric,
    NetStatusRecord,
    SecurityRecord,
    ServerStatusRecord,
    ServerStatusReport,
    WireDiagnostic,
    WireMessage,
)
from .secmon import (
    DummySecurityLog,
    FingerprintScanner,
    SecurityMonitor,
    SecuritySource,
)
from .selection import RandomSelector, RoundRobinSelector, Selector, StaticSelector
from .session import LeaseResponder, SmartSession, smart_sessions
from .sysmon import SystemMonitor
from .transmitter import PushStats, Transmitter
from .wizard import Candidate, Wizard, WizardReply, WizardRequest

__all__ = [
    "Config",
    "DEFAULT_CONFIG",
    "Mode",
    "Ports",
    "ShmKeys",
    "ServerProbe",
    "SystemMonitor",
    "NetworkMonitor",
    "SecurityMonitor",
    "SecuritySource",
    "DummySecurityLog",
    "FingerprintScanner",
    "Transmitter",
    "Receiver",
    "Wizard",
    "WizardRequest",
    "WizardReply",
    "Candidate",
    "SmartClient",
    "SmartReply",
    "Quarantine",
    "Ewma",
    "IncrementalQuantile",
    "SuspicionDetector",
    "InsufficientServers",
    "RequirementRejected",
    "SmartSession",
    "LeaseResponder",
    "smart_sessions",
    "PushStats",
    "ReliableSocket",
    "ReliableServer",
    "ReliableSession",
    "SessionError",
    "ServerStatusReport",
    "ServerStatusRecord",
    "NetMetric",
    "NetStatusRecord",
    "SecurityRecord",
    "WireMessage",
    "MSG_SYSDB",
    "MSG_NETDB",
    "MSG_SECDB",
    "MSG_PULL",
    "REPLY_OK",
    "REPLY_NAK",
    "REPLY_STALE",
    "WireDiagnostic",
    "measure_rtt",
    "rtt_curve",
    "estimate_bandwidth",
    "BandwidthEstimate",
    "pipechar_estimate",
    "pathload_estimate",
    "RandomSelector",
    "RoundRobinSelector",
    "StaticSelector",
    "Selector",
]
