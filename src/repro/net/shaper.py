"""Token-bucket egress shaper — the simulator's stand-in for ``rshaper``.

The thesis uses Rubini's *rshaper* kernel module to pin a host's link
bandwidth to a chosen value when running the massive-download experiments
(Fig 5.3, Tables 5.7–5.9).  We reproduce the same observable — "the maximum
throughput achievable through this interface is R" — with a classic token
bucket placed in front of a channel.

The shaper is purely analytic: :meth:`reserve` answers "given ``nbytes``
want to leave no earlier than ``t``, when may transmission start?" and
debits the bucket, so it composes with the channel's FIFO arithmetic
without extra simulator events.
"""

from __future__ import annotations

__all__ = ["TokenBucket"]


class TokenBucket:
    """Token bucket with rate ``rate_bps`` (bits/s) and burst ``burst_bytes``."""

    def __init__(self, rate_bps: float, burst_bytes: int = 16000):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if burst_bytes <= 0:
            raise ValueError(f"burst must be positive, got {burst_bytes}")
        self.rate_bps = float(rate_bps)
        self.burst_bytes = int(burst_bytes)
        self._tokens = float(burst_bytes)  # bytes
        self._stamp = 0.0  # sim time of last update

    @property
    def rate_bytes_per_s(self) -> float:
        return self.rate_bps / 8.0

    def _refill(self, t: float) -> None:
        if t > self._stamp:
            self._tokens = min(
                self.burst_bytes,
                self._tokens + (t - self._stamp) * self.rate_bytes_per_s,
            )
            self._stamp = t

    def tokens_at(self, t: float) -> float:
        """Bucket level at time ``t`` without consuming anything."""
        dt = max(0.0, t - self._stamp)
        return min(self.burst_bytes, self._tokens + dt * self.rate_bytes_per_s)

    def reserve(self, nbytes: int, t: float) -> float:
        """Earliest start time ≥ ``t`` for ``nbytes``; debits the bucket.

        Packets larger than the burst size are admitted once the bucket is
        full (letting the level go negative afterwards), the usual
        oversized-packet policy; sustained rate still converges to
        ``rate_bps``.
        """
        self._refill(t)
        need = min(nbytes, self.burst_bytes)
        if self._tokens >= need:
            start = t
        else:
            wait = (need - self._tokens) / self.rate_bytes_per_s
            start = t + wait
            self._refill(start)
        self._tokens -= nbytes
        self._stamp = start
        return start
