"""Network construction: nodes, links, addressing, static routing.

:class:`Network` is the builder facade used by the cluster layer.  It
assigns dotted-quad addresses from per-segment subnets, keeps a hostname
registry (the simulator's DNS), and computes static forwarding tables with
Dijkstra over link propagation delays (small per-hop bias so equal-delay
routes prefer fewer hops) — a reasonable stand-in for the thesis testbed's
hand-configured routes.
"""

from __future__ import annotations

import heapq
from typing import Optional

from ..sim import Simulator
from .link import Link
from .nic import DEFAULT_INIT_SPEED_BPS, NIC
from .node import Node

__all__ = ["Network", "MBPS", "ETHERNET_100"]

MBPS = 1e6
#: the testbed networks are all 100 Mbps Ethernet (thesis §5.1.1)
ETHERNET_100 = 100 * MBPS


class Network:
    """A collection of nodes and links plus routing and naming."""

    def __init__(self, sim: Simulator, default_init_speed_bps: float = DEFAULT_INIT_SPEED_BPS):
        self.sim = sim
        self.default_init_speed_bps = default_init_speed_bps
        self.nodes: dict[str, Node] = {}
        self.links: list[Link] = []
        self._next_subnet = 1
        self._next_host_octet: dict[str, int] = {}

    # -- construction ---------------------------------------------------------
    def add_host(self, name: str) -> Node:
        return self._add_node(name, is_router=False)

    def add_router(self, name: str) -> Node:
        return self._add_node(name, is_router=True)

    def _add_node(self, name: str, is_router: bool) -> Node:
        if name in self.nodes:
            raise ValueError(f"duplicate node name {name!r}")
        node = Node(self.sim, name, is_router=is_router)
        self.nodes[name] = node
        return node

    def subnet(self, prefix: Optional[str] = None) -> str:
        """Allocate (or register) a /24 subnet prefix like ``192.168.3``."""
        if prefix is None:
            prefix = f"192.168.{self._next_subnet}"
            self._next_subnet += 1
        self._next_host_octet.setdefault(prefix, 1)
        return prefix

    def _alloc_addr(self, prefix: str) -> str:
        self._next_host_octet.setdefault(prefix, 1)
        octet = self._next_host_octet[prefix]
        if octet > 254:
            raise ValueError(f"subnet {prefix} exhausted")
        self._next_host_octet[prefix] = octet + 1
        return f"{prefix}.{octet}"

    def connect(
        self,
        a: Node,
        b: Node,
        rate_bps: float = ETHERNET_100,
        delay: float = 100e-6,
        mtu: int = 1500,
        subnet: Optional[str] = None,
        buffer_bytes: Optional[int] = None,
    ) -> Link:
        """Create a duplex link; each endpoint gets a NIC with an address
        from ``subnet`` (auto-allocated when omitted)."""
        prefix = self.subnet(subnet)
        link = Link(self.sim, a, b, rate_bps, delay, mtu, buffer_bytes)
        self.links.append(link)
        for node in (a, b):
            init = None if node.is_router else self.default_init_speed_bps
            nic = NIC(
                node,
                link,
                addr=self._alloc_addr(prefix),
                name=f"eth{len(node.nics)}",
                init_speed_bps=init,
            )
            node.add_nic(nic)
        return link

    # -- naming ----------------------------------------------------------------
    def resolve(self, name_or_addr: str) -> str:
        """Hostname or address -> primary address (the simulator's DNS)."""
        node = self.nodes.get(name_or_addr)
        if node is not None:
            return node.addr
        for node in self.nodes.values():
            if name_or_addr in node.addresses:
                return name_or_addr
        raise KeyError(f"unknown host or address {name_or_addr!r}")

    def node_of(self, name_or_addr: str) -> Node:
        node = self.nodes.get(name_or_addr)
        if node is not None:
            return node
        for node in self.nodes.values():
            if name_or_addr in node.addresses:
                return node
        raise KeyError(f"unknown host or address {name_or_addr!r}")

    def hostname_of(self, addr: str) -> str:
        return self.node_of(addr).name

    # -- routing -----------------------------------------------------------------
    def build_routes(self, hop_bias: float = 1e-4) -> None:
        """Fill every node's forwarding table via Dijkstra on link delay.

        ``hop_bias`` is added per hop so that among equal-delay paths the
        one with fewer hops wins (and zero-delay topologies still route).
        """
        # adjacency: node -> list of (peer, cost, nic_on_node)
        adj: dict[Node, list[tuple[Node, float, NIC]]] = {n: [] for n in self.nodes.values()}
        for node in self.nodes.values():
            for nic in node.nics:
                adj[node].append((nic.peer, nic.channel.delay + hop_bias, nic))

        for src in self.nodes.values():
            dist: dict[Node, float] = {src: 0.0}
            first_nic: dict[Node, NIC] = {}
            heap: list[tuple[float, int, Node]] = [(0.0, id(src), src)]
            seen: set[Node] = set()
            while heap:
                d, _, u = heapq.heappop(heap)
                if u in seen:
                    continue
                seen.add(u)
                for v, cost, nic in adj[u]:
                    nd = d + cost
                    if nd < dist.get(v, float("inf")):
                        dist[v] = nd
                        first_nic[v] = nic if u is src else first_nic[u]
                        heapq.heappush(heap, (nd, id(v), v))
            routes: dict[str, NIC] = {}
            for dst, nic in first_nic.items():
                for addr in dst.addresses:
                    routes[addr] = nic
            src.routes = routes

    # -- convenience ---------------------------------------------------------------
    def path_hops(self, src: str, dst: str) -> list[str]:
        """Node names a datagram from ``src`` to ``dst`` would traverse."""
        node = self.node_of(src)
        target = self.resolve(dst)
        hops = [node.name]
        guard = 0
        while target not in node.addresses:
            nic = node.routes.get(target)
            if nic is None:
                raise KeyError(f"no route from {src} to {dst}")
            node = nic.peer
            hops.append(node.name)
            guard += 1
            if guard > 64:
                raise RuntimeError("routing loop detected")
        return hops
