"""Nodes: hosts and routers with static forwarding tables.

Routers forward :class:`~repro.net.packet.Frame`\\ s independently — IP
fragments are only reassembled at the destination host, like real IP.  Each
hop adds a small processing delay (``d_proc`` in the thesis' Eq. 3.3)
before the frame joins the egress queue.  Hosts additionally own a
transport :class:`~repro.net.sockets.NetworkStack`.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from ..sim import Simulator
from .nic import NIC
from .packet import Datagram, Frame

if TYPE_CHECKING:  # pragma: no cover
    from .sockets import NetworkStack

__all__ = ["Node", "DEFAULT_PROC_DELAY"]

#: per-hop processing delay; "usually negligible" per the thesis
DEFAULT_PROC_DELAY = 20e-6

#: reassembly buffers older than this are purged (fragment lost)
REASSEMBLY_TIMEOUT = 30.0


class Node:
    """A network element with NICs and a forwarding table."""

    def __init__(self, sim: Simulator, name: str, is_router: bool = False,
                 proc_delay: float = DEFAULT_PROC_DELAY):
        self.sim = sim
        self.name = name
        self.is_router = is_router
        self.proc_delay = proc_delay
        self.nics: list[NIC] = []
        #: dst address -> NIC to use
        self.routes: dict[str, NIC] = {}
        self.stack: Optional["NetworkStack"] = None
        #: hook for tests/sniffers: fn(datagram, node) on local delivery
        self.tap: Optional[Callable[[Datagram, "Node"], None]] = None
        self.forwarded = 0
        self.no_route = 0
        self.reassembly_failures = 0
        # datagram id -> [bytes_received, first_frame_seen_at]
        self._reassembly: dict[int, list] = {}

    # -- configuration ------------------------------------------------------
    def add_nic(self, nic: NIC) -> None:
        self.nics.append(nic)

    @property
    def addresses(self) -> list[str]:
        return [nic.addr for nic in self.nics]

    @property
    def addr(self) -> str:
        """Primary address (first NIC)."""
        if not self.nics:
            raise RuntimeError(f"node {self.name} has no NIC")
        return self.nics[0].addr

    def is_local(self, addr: str) -> bool:
        return any(nic.addr == addr for nic in self.nics)

    # -- data path ----------------------------------------------------------
    def receive(self, frame: Frame, nic: NIC) -> None:
        if self.is_local(frame.dgram.dst):
            self._reassemble(frame)
        else:
            self.forward(frame)

    def _reassemble(self, frame: Frame) -> None:
        dgram = frame.dgram
        if frame.payload_bytes >= dgram.transport_bytes:
            self.deliver_local(dgram)
            return
        entry = self._reassembly.get(dgram.id)
        if entry is None:
            entry = self._reassembly[dgram.id] = [0, self.sim.now]
        entry[0] += frame.payload_bytes
        if entry[0] >= dgram.transport_bytes:
            del self._reassembly[dgram.id]
            self.deliver_local(dgram)
        elif len(self._reassembly) > 256:
            self._purge_reassembly()

    def _purge_reassembly(self) -> None:
        cutoff = self.sim.now - REASSEMBLY_TIMEOUT
        stale = [k for k, (_, t0) in self._reassembly.items() if t0 < cutoff]
        for k in stale:
            del self._reassembly[k]
            self.reassembly_failures += 1

    def deliver_local(self, dgram: Datagram) -> None:
        hb = self.sim._hb
        if hb is not None:
            # message edge: the sender's clock (stamped in send()) joins
            # the delivery context even across NIC queues and reassembly
            hb.on_message(dgram)
        if self.tap is not None:
            self.tap(dgram, self)
        if self.stack is None:
            # A router addressed directly with no stack: drop silently.
            return
        self.stack.deliver(dgram)

    def forward(self, frame: Frame) -> None:
        dgram = frame.dgram
        if frame.first:
            dgram.ttl -= 1
            dgram.trace.append(self.name)
        if dgram.ttl <= 0:
            return  # TTL exceeded; nothing in the library relies on this
        nic = self.routes.get(dgram.dst)
        if nic is None:
            self.no_route += 1
            return
        self.forwarded += 1
        # d_proc: the lookup/forwarding cost before hitting the egress queue
        ev = self.sim.event()
        ev.add_callback(lambda _ev: nic.forward_frame(frame))
        ev.succeed(delay=self.proc_delay)

    def send(self, dgram: Datagram) -> bool:
        """Originate a datagram from this node (kernel -> NIC)."""
        hb = self.sim._hb
        if hb is not None:
            hb.stamp(dgram)
        if self.is_local(dgram.dst):
            # Loopback: no physical interface, no init term, tiny constant
            # delay — reproduces the thesis' flat localhost curve (Fig 3.6f,
            # base RTT 41 µs: ~one kernel traversal each way).
            ev = self.sim.event()
            ev.add_callback(lambda _ev: self.deliver_local(dgram))
            ev.succeed(delay=self.proc_delay)
            return True
        nic = self.routes.get(dgram.dst)
        if nic is None:
            self.no_route += 1
            return False
        return nic.send_datagram(dgram)

    def __repr__(self) -> str:  # pragma: no cover
        kind = "router" if self.is_router else "host"
        return f"<Node {self.name} ({kind}) nics={len(self.nics)}>"
