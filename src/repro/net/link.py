"""Point-to-point links: FIFO serialisation, propagation delay, loss.

A :class:`Link` is duplex — two independent :class:`Channel`\\ s.  A channel
performs *analytic* FIFO queueing: instead of pumping per-frame events it
tracks ``next_free`` (when the transmitter drains) and computes each
frame's start/finish time at enqueue.  Because the queue is FIFO this is
exactly equivalent to event-by-event transmission while costing one
simulator event per frame per hop.

Queueing delay, the ``d_queue`` term of the thesis' Eq. 3.3, emerges as
``start - now``; transmission delay ``d_trans`` as the serialisation time;
propagation delay ``d_prop`` is the configured constant.  Random loss (for
the TCP recovery tests) and tail-drop (bounded buffers) are both available.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from ..sim import Simulator
from .packet import Frame
from .shaper import TokenBucket

if TYPE_CHECKING:  # pragma: no cover
    import random

    from .node import Node

__all__ = ["Channel", "Link"]


class Channel:
    """One direction of a link."""

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        delay: float,
        mtu: int = 1500,
        buffer_bytes: Optional[int] = None,
        name: str = "",
    ):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.sim = sim
        self.rate_bps = float(rate_bps)
        self.delay = float(delay)
        self.mtu = int(mtu)
        #: None = unbounded; otherwise tail-drop once the backlog exceeds it
        self.buffer_bytes = buffer_bytes
        self.name = name
        self.shaper: Optional[TokenBucket] = None
        #: random frame loss probability (0 disables); seeded via loss_rng,
        #: which must come from a named RandomStreams substream
        self.loss_rate = 0.0
        self.loss_rng: Optional["random.Random"] = None
        #: hard carrier switch: a downed channel drops every frame (used by
        #: the fault-injection plane for partitions and link flaps)
        self.up = True
        #: gray-failure degradation, per direction (a link can be sick one
        #: way and healthy the other — asymmetric partitions): constant
        #: extra propagation delay, uniform [0, jitter] delay noise, and a
        #: reorder draw that late-delivers a frame by ``reorder_extra``.
        #: jitter/reorder draws come from ``degrade_rng`` (a named
        #: RandomStreams substream, like ``loss_rng``).
        self.extra_delay = 0.0
        self.jitter = 0.0
        self.reorder_rate = 0.0
        self.reorder_extra = 0.0
        self.degrade_rng: Optional["random.Random"] = None
        self.next_free = 0.0
        #: callback installed by the receiving endpoint: fn(frame)
        self.on_deliver: Optional[Callable[[Frame], None]] = None
        # statistics
        self.tx_frames = 0
        self.tx_bytes = 0
        self.drops = 0
        self.busy_time = 0.0

    # -- instrumentation ----------------------------------------------------
    def backlog_bytes(self) -> float:
        """Bytes currently queued/serialising (0 when idle)."""
        pending_s = max(0.0, self.next_free - self.sim.now)
        return pending_s * self.rate_bps / 8.0

    def utilisation(self, horizon: float) -> float:
        """Fraction of ``horizon`` seconds the transmitter was busy."""
        return self.busy_time / horizon if horizon > 0 else 0.0

    # -- data path ----------------------------------------------------------
    def tx_seconds(self, wire_bytes: int) -> float:
        return wire_bytes * 8.0 / self.rate_bps

    def transmit(self, frame: Frame, extra_start_delay: float = 0.0) -> bool:
        """Enqueue ``frame``; returns ``False`` on drop.

        ``extra_start_delay`` delays the earliest start (used by host NICs
        for the initialisation term of Eq. 3.6 without blocking the caller).
        """
        now = self.sim.now
        if not self.up:
            self.drops += 1
            return False
        if self.buffer_bytes is not None and self.backlog_bytes() > self.buffer_bytes:
            self.drops += 1
            return False
        if self.loss_rate > 0.0 and self.loss_rng is not None:
            if self.loss_rng.random() < self.loss_rate:
                self.drops += 1
                return False
        wire = frame.wire_at(self.mtu)
        start = max(now + extra_start_delay, self.next_free)
        if self.shaper is not None:
            start = self.shaper.reserve(wire, start)
        finish = start + self.tx_seconds(wire)
        self.next_free = finish
        self.busy_time += finish - start
        self.tx_frames += 1
        self.tx_bytes += wire
        deliver_at = finish + self.delay + self.extra_delay
        if self.degrade_rng is not None:
            if self.jitter > 0.0:
                deliver_at += self.degrade_rng.uniform(0.0, self.jitter)
            if self.reorder_rate > 0.0 \
                    and self.degrade_rng.random() < self.reorder_rate:
                # a reordered frame is simply late: by more than the
                # in-flight gap, so a successor genuinely overtakes it
                deliver_at += self.reorder_extra
        ev = self.sim.event()
        ev.add_callback(lambda _ev: self._deliver(frame))
        ev.succeed(delay=deliver_at - now)
        return True

    def occupy(self, wire_bytes: int) -> None:
        """Inject cross traffic: occupy the transmitter without delivering
        anything (the far end would just discard it)."""
        now = self.sim.now
        start = max(now, self.next_free)
        finish = start + self.tx_seconds(wire_bytes)
        self.next_free = finish
        self.busy_time += finish - start
        self.tx_bytes += wire_bytes

    def _deliver(self, frame: Frame) -> None:
        if self.on_deliver is None:
            raise RuntimeError(f"channel {self.name!r} has no receiver attached")
        self.on_deliver(frame)


class Link:
    """Duplex link between two nodes, built from two channels."""

    def __init__(
        self,
        sim: Simulator,
        a: "Node",
        b: "Node",
        rate_bps: float,
        delay: float,
        mtu: int = 1500,
        buffer_bytes: Optional[int] = None,
        name: str = "",
    ):
        self.sim = sim
        self.a = a
        self.b = b
        self.name = name or f"{a.name}<->{b.name}"
        self.ab = Channel(sim, rate_bps, delay, mtu, buffer_bytes, f"{a.name}->{b.name}")
        self.ba = Channel(sim, rate_bps, delay, mtu, buffer_bytes, f"{b.name}->{a.name}")

    def channel_from(self, node: "Node") -> Channel:
        if node is self.a:
            return self.ab
        if node is self.b:
            return self.ba
        raise ValueError(f"{node.name} is not an endpoint of {self.name}")

    def peer_of(self, node: "Node") -> "Node":
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise ValueError(f"{node.name} is not an endpoint of {self.name}")

    def set_mtu(self, mtu: int) -> None:
        """Reconfigure both directions (``ifconfig eth0 mtu N``)."""
        if mtu <= 28:
            raise ValueError(f"MTU {mtu} too small for IP+UDP headers")
        self.ab.mtu = mtu
        self.ba.mtu = mtu

    def set_up(self, up: bool) -> None:
        """Bring both directions up or down (partition / heal)."""
        self.ab.up = up
        self.ba.up = up

    @property
    def is_up(self) -> bool:
        return self.ab.up and self.ba.up
