"""Simplified but honest TCP: handshake, windowed go-back-N, message framing.

The Smart library uses TCP in two places — transmitter→receiver status
transfer (thesis §3.5, ``[type, size, data]`` messages) and the application
data paths (matmul blocks, massd file blocks).  What matters for the
reproduced experiments is that

* throughput is governed by the bottleneck link / token-bucket shaper
  (self-clocking: a byte window limits the in-flight data, acks return at
  the bottleneck rate),
* concurrent connections share links through the FIFO channel queues, and
* messages arrive whole and in order, like length-prefixed records on a
  byte stream.

So the implementation is a single-timer go-back-N with Jacobson/Karels
adaptive RTO and cumulative acks.  Loss recovery is real (tests inject
drops); congestion control is a fixed window, adequate for a testbed whose
"packet loss rate is relatively low" (thesis §3.3.1).
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, TYPE_CHECKING

from ..sim import Store
from .packet import Datagram, PROTO_TCP

if TYPE_CHECKING:  # pragma: no cover
    from .sockets import NetworkStack

__all__ = ["TcpLayer", "TcpListener", "TcpConnection", "ConnectionClosed", "ConnectError"]

#: default maximum segment size (Ethernet MSS)
DEFAULT_MSS = 1460
#: default send window in bytes (classic 64 KB)
DEFAULT_WINDOW = 65535

_conn_ids = itertools.count(1)


class ConnectionClosed(Exception):
    """recv() on a connection whose peer sent FIN, or send() after close."""


class ConnectError(Exception):
    """connect() failed (no listener / handshake timeout)."""


class _EOF:
    """Sentinel queued into the receive store when a FIN arrives."""

    __repr__ = lambda self: "<EOF>"  # noqa: E731  pragma: no cover


EOF = _EOF()

#: declared lifecycle of a :class:`TcpConnection`, enforced statically
#: by ``repro check --proto`` (REPRO600/601/602) and checked against
#: the analyzer registry for drift (REPRO606).  A driven
#: ``yield from tcp.connect(...)`` (or a yielded ``listener.accept()``)
#: hands back an *established* endpoint; binding the un-driven connect
#: generator leaves it *connecting*, where no op is legal yet.
#: ``abort()`` is the idempotent hard-teardown path, so it stays legal
#: after close.
TCP_CONNECTION_MACHINE: dict[str, object] = {
    "name": "TcpConnection",
    "initial": "established",
    "states": ("connecting", "established", "closed"),
    "final": ("closed",),
    "transitions": {
        "established.send": "established",
        "established.recv": "established",
        "established.close": "closed",
        "established.abort": "closed",
        "closed.abort": "closed",
    },
}

#: declared lifecycle of a :class:`TcpListener` (see above)
TCP_LISTENER_MACHINE: dict[str, object] = {
    "name": "TcpListener",
    "initial": "listening",
    "states": ("listening", "closed"),
    "final": ("closed",),
    "transitions": {
        "listening.accept": "listening",
        "listening.close": "closed",
    },
}


class TcpListener:
    """Passive socket: accepted connections appear in :attr:`accepts`."""

    def __init__(self, layer: "TcpLayer", port: int,
                 mss: int = DEFAULT_MSS, window: int = DEFAULT_WINDOW):
        self.layer = layer
        self.port = port
        self.mss = mss          # parameters for accepted (server-side) conns
        self.window = window
        self.accepts = Store(layer.stack.sim)
        self.closed = False

    def accept(self):
        """Event firing with the next established server-side connection."""
        return self.accepts.get()

    def close(self) -> None:
        self.closed = True
        self.layer.listeners.pop(self.port, None)


class TcpConnection:
    """One endpoint of an established (or establishing) connection."""

    def __init__(
        self,
        layer: "TcpLayer",
        local_port: int,
        remote_addr: str,
        remote_port: int,
        mss: int = DEFAULT_MSS,
        window: int = DEFAULT_WINDOW,
    ):
        self.layer = layer
        self.sim = layer.stack.sim
        self.id = next(_conn_ids)
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self.mss = mss
        self.window = window

        self.established = False
        self.established_ev = self.sim.event()
        self.closed = False          # local close() called
        self.peer_closed = False     # FIN received
        self.reset = False           # RST received, or abort() called

        # --- sender state (go-back-N) ---
        self._outq: list[tuple[Any, int]] = []   # (payload, nbytes) messages
        self._segments: dict[int, tuple[int, Any]] = {}  # seq -> (bytes, meta)
        self._send_times: dict[int, float] = {}
        self._retransmitted: set[int] = set()
        self._base = 0
        self._next_seq = 0
        self._fin_queued = False
        self._sender_proc = None
        self._wake = None

        # --- receiver state ---
        self._rcv_expected = 0
        self.rx = Store(self.sim)
        self._partial_bytes = 0

        # --- RTO estimation (Jacobson/Karels) ---
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        self.rto = 1.0
        self.retransmit_count = 0

        # statistics
        self.bytes_sent = 0
        self.bytes_acked = 0
        self.bytes_received = 0

    # -- public API -----------------------------------------------------------
    def send(self, payload: Any, nbytes: int) -> None:
        """Queue one application message of ``nbytes`` bytes."""
        if self.reset:
            raise ConnectionClosed("connection reset")
        if self.closed:
            raise ConnectionClosed("send() after close()")
        if nbytes <= 0:
            raise ValueError(f"message size must be positive, got {nbytes}")
        self._outq.append((payload, nbytes))
        self._signal()

    def recv(self):
        """Event firing with ``(payload, nbytes)`` of the next whole message.

        Yielding this after the peer closed raises :class:`ConnectionClosed`
        via the queued EOF sentinel — callers should catch it or check
        :attr:`peer_closed`.
        """
        ev = self.rx.get()
        wrapped = self.sim.event()

        def _unwrap(e):
            if not e.ok:  # pragma: no cover - store get never fails
                wrapped.fail(e.value)
            elif isinstance(e.value, _EOF):
                self.rx.put(EOF)  # keep EOF for subsequent recv() calls
                wrapped.fail(ConnectionClosed("peer closed"))
            else:
                wrapped.succeed(e.value)

        ev.add_callback(_unwrap)
        return wrapped

    def close(self) -> None:
        """Flush pending data, then send FIN."""
        if self.closed:
            return
        self.closed = True
        self._fin_queued = True
        self._signal()

    def abort(self) -> None:
        """Hard local teardown — no FIN, no flush (a crashed host).

        Queued and in-flight data is discarded and the endpoint is removed
        from the demux table, so the peer's next segment is answered with an
        RST instead of silently vanishing.
        """
        if self.reset and self.closed:
            return
        self.closed = True
        self.reset = True
        self.peer_closed = True
        self._outq.clear()
        self._fin_queued = False
        self.rx.put(EOF)
        self.layer.conns.pop(
            (self.local_port, self.remote_addr, self.remote_port), None
        )
        self._signal()

    def _handle_reset(self) -> None:
        """Peer answered with RST: the far endpoint no longer exists."""
        if self.reset:
            return
        self.reset = True
        self.peer_closed = True
        self.rx.put(EOF)
        self._signal()

    @property
    def in_flight(self) -> int:
        return self._next_seq - self._base

    # -- sender ----------------------------------------------------------------
    def _start(self) -> None:
        self.established = True
        if not self.established_ev.triggered:
            self.established_ev.succeed(self)
        self._sender_proc = self.sim.process(self._sender(), name=f"tcp-send-{self.id}")

    def _signal(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def _sender(self):
        while True:
            if self.reset:
                return  # reset: stop (re)transmitting immediately
            self._pump()
            idle = self._base == self._next_seq and not self._outq
            if idle and self.closed and not self._fin_queued:
                return  # FIN sent and acked: sender done
            self._wake = self.sim.event()
            if idle:
                yield self._wake
            else:
                timer = self.sim.timeout(self.rto)
                fired = yield self.sim.any_of([self._wake, timer])
                if self._wake not in fired and self._base != self._next_seq:
                    self._retransmit_window()

    def _pump(self) -> None:
        """Emit segments while data is queued and the window allows."""
        while self.in_flight < self.window:
            seg = self._next_segment()
            if seg is None:
                break
            nbytes, meta = seg
            self._transmit_segment(self._next_seq, nbytes, meta, retransmission=False)
            self._segments[self._next_seq] = (nbytes, meta)
            self._next_seq += nbytes
        # FIN occupies one sequence unit once the data queue drains
        if (
            self._fin_queued
            and not self._outq
            and self.in_flight < self.window
        ):
            self._fin_queued = False
            meta = ("FIN",)
            self._transmit_segment(self._next_seq, 1, meta, retransmission=False)
            self._segments[self._next_seq] = (1, meta)
            self._next_seq += 1

    def _next_segment(self) -> Optional[tuple[int, tuple]]:
        """Carve the next segment off the message queue.

        Returns ``(nbytes, meta)`` where meta describes message framing:
        ``("DATA", payload_or_None, end_of_message, message_total)``.
        """
        if not self._outq:
            return None
        payload, remaining = self._outq[0]
        take = min(self.mss, remaining)
        last = take == remaining
        total = remaining  # only meaningful alongside bookkeeping below
        if last:
            self._outq.pop(0)
            meta = ("DATA", payload, True, self._msg_total_for(payload, take))
        else:
            self._outq[0] = (payload, remaining - take)
            meta = ("DATA", None, False, 0)
        return take, meta

    def _msg_total_for(self, payload: Any, last_chunk: int) -> int:
        # receiver reconstructs the total from accumulated partial bytes;
        # we pass only the last chunk marker. Kept as a hook for clarity.
        return last_chunk

    def _transmit_segment(self, seq: int, nbytes: int, meta: tuple, retransmission: bool) -> None:
        dgram = Datagram(
            proto=PROTO_TCP,
            src=self.layer.stack.node.addr,
            dst=self.remote_addr,
            sport=self.local_port,
            dport=self.remote_port,
            size=nbytes,
            payload=("SEG", seq, meta),
            created=self.sim.now,
        )
        if retransmission:
            self._retransmitted.add(seq)
            self.retransmit_count += 1
        else:
            self._send_times[seq] = self.sim.now
        self.bytes_sent += nbytes
        self.layer.stack.node.send(dgram)

    def _retransmit_window(self) -> None:
        """Go-back-N: resend everything from ``base``; back the timer off."""
        self.rto = min(self.rto * 2, 60.0)
        for seq in sorted(self._segments):
            if seq >= self._base:
                nbytes, meta = self._segments[seq]
                self._transmit_segment(seq, nbytes, meta, retransmission=True)

    # -- inbound ------------------------------------------------------------------
    def _handle(self, dgram: Datagram) -> None:
        kind = dgram.payload[0]
        if kind == "SEG":
            _, seq, meta = dgram.payload
            self._handle_segment(seq, dgram.size, meta)
        elif kind == "ACK":
            self._handle_ack(dgram.payload[1])

    def _handle_segment(self, seq: int, nbytes: int, meta: tuple) -> None:
        if seq == self._rcv_expected:
            self._rcv_expected += nbytes
            if meta[0] == "DATA":
                self.bytes_received += nbytes
                self._partial_bytes += nbytes
                _, payload, end, _ = meta
                if end:
                    self.rx.put((payload, self._partial_bytes))
                    self._partial_bytes = 0
            elif meta[0] == "FIN":
                self.peer_closed = True
                self.rx.put(EOF)
        # cumulative ack (also a dup-ack when the segment was out of order)
        self._send_ack()

    def _send_ack(self) -> None:
        ack = Datagram(
            proto=PROTO_TCP,
            src=self.layer.stack.node.addr,
            dst=self.remote_addr,
            sport=self.local_port,
            dport=self.remote_port,
            size=0,
            payload=("ACK", self._rcv_expected),
            created=self.sim.now,
        )
        self.layer.stack.node.send(ack)

    def _handle_ack(self, ackno: int) -> None:
        if ackno <= self._base:
            return
        # RTT sample from the highest newly-acked, never-retransmitted segment
        sample_seq = None
        for seq in self._segments:
            if self._base <= seq < ackno and seq not in self._retransmitted:
                if sample_seq is None or seq > sample_seq:
                    sample_seq = seq
        if sample_seq is not None and sample_seq in self._send_times:
            self._rtt_sample(self.sim.now - self._send_times[sample_seq])
        for seq in [s for s in self._segments if s < ackno]:
            self.bytes_acked += self._segments[seq][0]
            del self._segments[seq]
            self._send_times.pop(seq, None)
            self._retransmitted.discard(seq)
        self._base = ackno
        self._signal()

    def _rtt_sample(self, rtt: float) -> None:
        if self._srtt is None:
            self._srtt = rtt
            self._rttvar = rtt / 2
        else:
            alpha, beta = 1 / 8, 1 / 4
            self._rttvar = (1 - beta) * self._rttvar + beta * abs(self._srtt - rtt)
            self._srtt = (1 - alpha) * self._srtt + alpha * rtt
        self.rto = max(0.05, self._srtt + max(0.01, 4 * self._rttvar))

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<TcpConnection #{self.id} {self.layer.stack.node.name}:{self.local_port}"
            f"->{self.remote_addr}:{self.remote_port}"
            f" {'EST' if self.established else 'SYN'}>"
        )


class TcpLayer:
    """Per-host TCP demultiplexer and connection factory."""

    def __init__(self, stack: "NetworkStack"):
        self.stack = stack
        self.listeners: dict[int, TcpListener] = {}
        self.conns: dict[tuple[int, str, int], TcpConnection] = {}
        self._ephemeral = itertools.count(40000)

    # -- API ------------------------------------------------------------------
    def listen(self, port: int, mss: int = DEFAULT_MSS,
               window: int = DEFAULT_WINDOW) -> TcpListener:
        if port in self.listeners:
            raise RuntimeError(f"tcp port {port} already listening on {self.stack.node.name}")
        lsn = TcpListener(self, port, mss=mss, window=window)
        self.listeners[port] = lsn
        return lsn

    def connect(self, dst: str, dport: int, mss: int = DEFAULT_MSS,
                window: int = DEFAULT_WINDOW, timeout: float = 5.0):
        """Process generator returning an established :class:`TcpConnection`.

        Usage inside a process: ``conn = yield from stack.tcp.connect(...)``.
        Raises :class:`ConnectError` if the handshake does not finish within
        ``timeout`` (retrying SYN once halfway through).
        """
        sim = self.stack.sim
        addr = self.stack.resolve(dst)
        lport = next(self._ephemeral)
        conn = TcpConnection(self, lport, addr, dport, mss=mss, window=window)
        self.conns[(lport, addr, dport)] = conn
        syn_sent_at = sim.now
        self._send_ctrl(conn, "SYN")
        half = sim.timeout(timeout / 2)
        got = yield sim.any_of([conn.established_ev, half])
        if conn.established_ev not in got:
            self._send_ctrl(conn, "SYN")  # one retry
            rest = sim.timeout(timeout / 2)
            got = yield sim.any_of([conn.established_ev, rest])
            if conn.established_ev not in got:
                del self.conns[(lport, addr, dport)]
                raise ConnectError(f"connect {dst}:{dport} timed out")
        conn._rtt_sample(sim.now - syn_sent_at)
        return conn

    def _send_ctrl(self, conn: TcpConnection, kind: str) -> None:
        dgram = Datagram(
            proto=PROTO_TCP,
            src=self.stack.node.addr,
            dst=conn.remote_addr,
            sport=conn.local_port,
            dport=conn.remote_port,
            size=0,
            payload=(kind,),
            created=self.stack.sim.now,
        )
        self.stack.node.send(dgram)

    # -- demux -------------------------------------------------------------------
    def deliver(self, dgram: Datagram) -> None:
        key = (dgram.dport, dgram.src, dgram.sport)
        conn = self.conns.get(key)
        kind = dgram.payload[0]
        if conn is not None:
            if kind == "SYN":  # duplicate SYN: re-ack
                self._send_ctrl_reply(dgram, "SYNACK", conn)
            elif kind == "SYNACK":
                if not conn.established:
                    conn._start()
                self._send_ctrl_reply(dgram, "ACK1", conn)
            elif kind == "ACK1":
                if not conn.established:
                    conn._start()
            elif kind == "RST":
                conn._handle_reset()
            else:
                conn._handle(dgram)
            return
        if kind in ("SEG", "ACK", "SYNACK"):
            # traffic for a connection this host no longer knows about (it
            # crashed, or the handshake was abandoned): answer with RST so
            # the peer learns the endpoint is gone instead of retrying
            # into the void
            reply = dgram.reply_skeleton(PROTO_TCP, 0, ("RST",))
            reply.created = self.stack.sim.now
            self.stack.node.send(reply)
            return
        if kind == "SYN":
            lsn = self.listeners.get(dgram.dport)
            if lsn is None or lsn.closed:
                return  # no RST modelling; connect() times out
            server = TcpConnection(
                self, dgram.dport, dgram.src, dgram.sport,
                mss=lsn.mss, window=lsn.window,
            )
            self.conns[key] = server
            self._send_ctrl_reply(dgram, "SYNACK", server)
            # server side considers itself established once SYN seen;
            # data cannot arrive before the client's ACK1 anyway (FIFO paths)
            server._start()
            lsn.accepts.put(server)

    def _send_ctrl_reply(self, dgram: Datagram, kind: str, conn: TcpConnection) -> None:
        reply = dgram.reply_skeleton(PROTO_TCP, 0, (kind,))
        reply.created = self.stack.sim.now
        self.stack.node.send(reply)
