"""Host transport layer: the network stack, UDP sockets and ICMP taps.

The Smart library's monitoring plane is UDP-heavy (probes, wizard requests)
and its one-way bandwidth probe relies on the classic trick of sending UDP
datagrams to a *closed* port and timing the ICMP port-unreachable echo —
so the stack implements exactly that: a UDP datagram arriving at a port
nobody is bound to triggers an ICMP error back to the sender, delivered to
any raw ICMP listener on the sending host.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, TYPE_CHECKING

from ..sim import Simulator, Store
from .node import Node
from .packet import Datagram, IP_HEADER, PROTO_ICMP, PROTO_TCP, PROTO_UDP

if TYPE_CHECKING:  # pragma: no cover
    from .tcp import TcpLayer

__all__ = ["NetworkStack", "UdpSocket", "IcmpError", "PortInUse"]


class PortInUse(Exception):
    """bind() on a port that already has a socket."""


class IcmpError:
    """Parsed ICMP destination-unreachable message (code 3: port)."""

    __slots__ = ("src", "ref", "received_at")

    def __init__(self, src: str, ref: int, received_at: float):
        self.src = src          # host that generated the error
        self.ref = ref          # id of the offending datagram
        self.received_at = received_at

    def __repr__(self) -> str:  # pragma: no cover
        return f"<IcmpError from {self.src} ref={self.ref} t={self.received_at:.6f}>"


#: declared lifecycle of a :class:`UdpSocket` getter handle, enforced
#: statically by ``repro check --proto`` (REPRO600/601/602) and checked
#: against the analyzer registry for drift (REPRO606)
UDP_SOCKET_MACHINE: dict[str, object] = {
    "name": "UdpSocket",
    "initial": "open",
    "states": ("open", "closed"),
    "final": ("closed",),
    "transitions": {
        "open.sendto": "open",
        "open.recv": "open",
        "open.recv_timeout": "open",
        "open.close": "closed",
    },
}


class UdpSocket:
    """Bound UDP endpoint with a drop-when-full receive buffer."""

    def __init__(self, stack: "NetworkStack", port: int, rcvbuf_datagrams: int = 512):
        self.stack = stack
        self.port = port
        self.rx = Store(stack.sim, capacity=rcvbuf_datagrams, drop_when_full=True)
        self.closed = False

    def sendto(self, dst: str, dport: int, size: int, payload: Any = None) -> Datagram:
        """Transmit one datagram; returns it (its ``id`` keys ICMP echoes)."""
        dgram = Datagram(
            proto=PROTO_UDP,
            src=self.stack.node.addr,
            dst=self.stack.resolve(dst),
            sport=self.port,
            dport=dport,
            size=size,
            payload=payload,
            created=self.stack.sim.now,
        )
        self.stack.node.send(dgram)
        return dgram

    def recv(self):
        """Event firing with the next inbound :class:`Datagram`."""
        return self.rx.get()

    def recv_timeout(self, timeout: float):
        """Process generator: datagram or ``None`` after ``timeout``."""
        get = self.rx.get()
        to = self.stack.sim.timeout(timeout)
        result = yield self.stack.sim.any_of([get, to])
        if get in result:
            return result[get]
        # withdraw the pending get: an abandoned getter would swallow
        # (and lose) the next datagram that arrives after the timeout
        self.rx.cancel(get)
        return None

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.stack.udp_ports.pop(self.port, None)


class NetworkStack:
    """Transport layer of one host node."""

    def __init__(self, sim: Simulator, node: Node, network=None):
        if node.stack is not None:
            raise RuntimeError(f"node {node.name} already has a stack")
        self.sim = sim
        self.node = node
        self.network = network  # used only for name resolution
        node.stack = self
        self.udp_ports: dict[int, UdpSocket] = {}
        self.icmp_taps: list[Store] = []
        self._ephemeral = itertools.count(32768)
        # imported lazily to avoid a cycle
        from .tcp import TcpLayer

        self.tcp: "TcpLayer" = TcpLayer(self)
        self.icmp_sent = 0

    # -- naming ----------------------------------------------------------
    def resolve(self, name_or_addr: str) -> str:
        if self.network is not None:
            return self.network.resolve(name_or_addr)
        return name_or_addr

    # -- sockets ------------------------------------------------------------
    def udp_socket(self, port: Optional[int] = None) -> UdpSocket:
        if port is None:
            port = self._alloc_port()
        if port in self.udp_ports:
            raise PortInUse(f"udp port {port} on {self.node.name}")
        sock = UdpSocket(self, port)
        self.udp_ports[port] = sock
        return sock

    def icmp_tap(self) -> Store:
        """Raw ICMP listener: every ICMP message to this host lands here."""
        tap = Store(self.sim)
        self.icmp_taps.append(tap)
        return tap

    def _alloc_port(self) -> int:
        while True:
            port = next(self._ephemeral)
            if port not in self.udp_ports:
                return port

    # -- demux -----------------------------------------------------------------
    def deliver(self, dgram: Datagram) -> None:
        if dgram.proto == PROTO_UDP:
            sock = self.udp_ports.get(dgram.dport)
            if sock is not None:
                sock.rx.put(dgram)
            else:
                self._send_port_unreachable(dgram)
        elif dgram.proto == PROTO_ICMP:
            err = IcmpError(src=dgram.src, ref=dgram.ref, received_at=self.sim.now)
            for tap in self.icmp_taps:
                tap.put(err)
        elif dgram.proto == PROTO_TCP:
            self.tcp.deliver(dgram)
        else:  # pragma: no cover - Datagram validates proto already
            raise ValueError(f"unknown protocol {dgram.proto!r}")

    def _send_port_unreachable(self, offending: Datagram) -> None:
        # ICMP type 3 code 3 carries the original IP header + 8 payload bytes.
        reply = offending.reply_skeleton(
            proto=PROTO_ICMP,
            size=IP_HEADER + 8,
            payload=("port-unreachable", offending.id),
        )
        reply.created = self.sim.now
        self.icmp_sent += 1
        self.node.send(reply)
