"""Packet-level network substrate: links, NICs, routing, UDP/TCP/ICMP."""

from .link import Channel, Link
from .nic import DEFAULT_INIT_SPEED_BPS, NIC
from .node import Node
from .packet import (
    Datagram,
    ICMP_HEADER,
    IP_HEADER,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TCP_HEADER,
    UDP_HEADER,
    fragment_sizes,
)
from .shaper import TokenBucket
from .sockets import IcmpError, NetworkStack, PortInUse, UdpSocket
from .tcp import (
    ConnectError,
    ConnectionClosed,
    TcpConnection,
    TcpLayer,
    TcpListener,
)
from .topology import ETHERNET_100, MBPS, Network

__all__ = [
    "Datagram",
    "fragment_sizes",
    "IP_HEADER",
    "UDP_HEADER",
    "TCP_HEADER",
    "ICMP_HEADER",
    "PROTO_UDP",
    "PROTO_TCP",
    "PROTO_ICMP",
    "Channel",
    "Link",
    "NIC",
    "DEFAULT_INIT_SPEED_BPS",
    "Node",
    "Network",
    "MBPS",
    "ETHERNET_100",
    "NetworkStack",
    "UdpSocket",
    "IcmpError",
    "PortInUse",
    "TokenBucket",
    "TcpLayer",
    "TcpListener",
    "TcpConnection",
    "ConnectionClosed",
    "ConnectError",
]
