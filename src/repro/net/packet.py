"""Datagram model and IP-style fragmentation arithmetic.

The simulator is *packet-level for timing* but *object-level for payloads*:
a :class:`Datagram` carries an arbitrary Python payload plus an explicit
byte size, and all link/queueing delays are computed from the wire size.
Fragmentation never splits the payload object — it only affects the wire
size (per-fragment IP headers) and the NIC initialisation term, which is
exactly what the paper's Eq. 3.6 model needs.

Header sizes follow IPv4/UDP/TCP/ICMP so the RTT-vs-payload knee lands at
``payload = MTU - 28`` for UDP, matching the thesis measurements.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "Datagram",
    "Frame",
    "IP_HEADER",
    "UDP_HEADER",
    "TCP_HEADER",
    "ICMP_HEADER",
    "PROTO_UDP",
    "PROTO_TCP",
    "PROTO_ICMP",
    "fragment_sizes",
]

IP_HEADER = 20
UDP_HEADER = 8
TCP_HEADER = 20
ICMP_HEADER = 8

PROTO_UDP = "udp"
PROTO_TCP = "tcp"
PROTO_ICMP = "icmp"

_PROTO_HEADER = {PROTO_UDP: UDP_HEADER, PROTO_TCP: TCP_HEADER, PROTO_ICMP: ICMP_HEADER}

_ids = itertools.count(1)


def fragment_sizes(transport_bytes: int, mtu: int) -> list[int]:
    """Wire sizes (incl. IP header) of the fragments of one IP packet.

    ``transport_bytes`` is the transport segment: payload plus UDP/TCP/ICMP
    header.  Each fragment carries its own ``IP_HEADER``; fragment payloads
    are multiples of 8 bytes except the last, per IPv4 — we keep the simpler
    equal-capacity split since only sizes matter for timing.
    """
    if mtu <= IP_HEADER:
        raise ValueError(f"MTU {mtu} leaves no room for IP payload")
    per_frag = mtu - IP_HEADER
    nfrag = max(1, math.ceil(transport_bytes / per_frag))
    sizes = []
    remaining = transport_bytes
    for _ in range(nfrag):
        chunk = min(per_frag, remaining)
        sizes.append(chunk + IP_HEADER)
        remaining -= chunk
    return sizes


@dataclass
class Datagram:
    """One transport PDU travelling through the simulated network."""

    proto: str
    src: str
    dst: str
    sport: int
    dport: int
    size: int  # transport payload bytes
    payload: Any = None
    id: int = field(default_factory=lambda: next(_ids))
    created: float = 0.0
    ttl: int = 64
    #: optional reference to a datagram this one is about (ICMP errors)
    ref: Optional[int] = None
    #: nodes traversed, appended by each forwarding node (traceroute-ish)
    trace: list = field(default_factory=list)
    #: sender's vector clock, stamped at origination when the
    #: happens-before sanitizer is on (see :mod:`repro.sim.hb`)
    hb_clock: Any = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative payload size {self.size}")
        if self.proto not in _PROTO_HEADER:
            raise ValueError(f"unknown protocol {self.proto!r}")

    @property
    def transport_bytes(self) -> int:
        """Payload plus transport header."""
        return self.size + _PROTO_HEADER[self.proto]

    def wire_size(self, mtu: int) -> int:
        """Total bytes on the wire after fragmentation at ``mtu``."""
        return sum(fragment_sizes(self.transport_bytes, mtu))

    def first_fragment_size(self, mtu: int) -> int:
        """Wire size of the first fragment — drives the NIC init term."""
        return fragment_sizes(self.transport_bytes, mtu)[0]

    def n_fragments(self, mtu: int) -> int:
        return len(fragment_sizes(self.transport_bytes, mtu))

    def reply_skeleton(self, proto: str, size: int, payload: Any = None) -> "Datagram":
        """A datagram heading back to this one's source."""
        return Datagram(
            proto=proto,
            src=self.dst,
            dst=self.src,
            sport=self.dport,
            dport=self.sport,
            size=size,
            payload=payload,
            ref=self.id,
        )


@dataclass
class Frame:
    """The unit a channel transmits and a router forwards.

    Two kinds exist:

    * **fragment** frames (``burst=False``) — real IP fragments.  UDP and
      ICMP datagrams travel as independent fragments that pipeline across
      hops and are reassembled only at the destination, exactly like IP.
      This is what makes the one-way-UDP-stream bandwidth estimator see the
      *bottleneck* rate on multi-hop paths instead of the sum of per-hop
      serialisations.
    * **burst** frames (``burst=True``) — a whole TCP segment forwarded
      store-and-forward per hop.  For a windowed stream this changes only
      per-segment latency, never steady-state throughput (segments pipeline
      across hops), and it keeps the event count of a 50 MB transfer low.

    ``payload_bytes`` counts transport-layer bytes carried; reassembly is
    complete when the per-datagram sum reaches ``transport_bytes``.
    """

    dgram: Datagram
    payload_bytes: int
    first: bool  # carries the datagram's first transport byte
    burst: bool = False

    def wire_at(self, mtu: int) -> int:
        """Bytes this frame occupies on a wire with the given MTU."""
        if self.burst:
            return sum(fragment_sizes(self.payload_bytes, mtu))
        return self.payload_bytes + IP_HEADER

    def split(self, mtu: int) -> list["Frame"]:
        """Re-fragment for an egress link whose MTU is too small."""
        if self.burst or self.payload_bytes + IP_HEADER <= mtu:
            return [self]
        per_frag = mtu - IP_HEADER
        frames = []
        remaining = self.payload_bytes
        first = self.first
        while remaining > 0:
            chunk = min(per_frag, remaining)
            frames.append(Frame(self.dgram, chunk, first, burst=False))
            first = False
            remaining -= chunk
        return frames
