"""Network interfaces, including the thesis' *initialisation speed* effect.

The thesis (§3.3.2) observes that the RTT-vs-packet-size curve has a knee at
the MTU and conjectures an initialisation cost when the kernel hands the
first frame of a datagram to the physical interface:

    T = S/B + min(S, MTU)/Speed_init + Overhead_sys + Overhead_net   (Eq 3.6)

:class:`NIC` implements exactly that: on egress of a datagram the earliest
transmission start of its *first* frame is pushed back by
``first_fragment/init_speed``.  Host NICs carry the effect (physical
interface); router NICs and loopback do not — the thesis found no knee on
loopback/virtual interfaces (Fig 3.6f).

On egress, UDP/ICMP datagrams are cut into real IP fragments that travel
(and pipeline across hops) independently; TCP segments travel as single
*burst* frames (see :class:`~repro.net.packet.Frame`).  NICs keep the rx/tx
byte and packet counters that the server probe later reads back out of the
synthesized ``/proc/net/dev``.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from .link import Link
from .packet import Datagram, Frame, IP_HEADER, PROTO_TCP

if TYPE_CHECKING:  # pragma: no cover
    from .node import Node

__all__ = ["NIC", "DEFAULT_INIT_SPEED_BPS"]

#: the thesis estimates Speed_init ≈ 25 Mbps on its 100 Mbps testbed
DEFAULT_INIT_SPEED_BPS = 25e6


class NIC:
    """One interface of a node, attached to one end of a link."""

    def __init__(
        self,
        node: "Node",
        link: Link,
        addr: str,
        name: str = "eth0",
        init_speed_bps: Optional[float] = DEFAULT_INIT_SPEED_BPS,
    ):
        self.node = node
        self.link = link
        self.addr = addr
        self.name = name
        #: None disables the Eq. 3.6 initialisation term (routers, loopback)
        self.init_speed_bps = init_speed_bps
        self.channel = link.channel_from(node)
        self.peer = link.peer_of(node)
        # /proc/net/dev counters
        self.tx_bytes = 0
        self.tx_packets = 0
        self.rx_bytes = 0
        self.rx_packets = 0
        self.tx_drops = 0
        # register as the receiver of the inbound channel
        link.channel_from(self.peer).on_deliver = self._on_deliver

    @property
    def mtu(self) -> int:
        return self.channel.mtu

    def set_mtu(self, mtu: int) -> None:
        """Reconfigure the MTU on both directions of the attached link."""
        self.link.set_mtu(mtu)

    def _init_delay(self, first_frame_wire: int) -> float:
        if self.init_speed_bps is None:
            return 0.0
        return first_frame_wire * 8.0 / self.init_speed_bps

    # -- egress ---------------------------------------------------------------
    def send_datagram(self, dgram: Datagram) -> bool:
        """Originate a datagram here: fragment (UDP/ICMP) or burst (TCP).

        Returns ``False`` if every frame was dropped at the channel.
        """
        frames = self._frames_for(dgram)
        first_wire = frames[0].wire_at(self.mtu)
        delivered_any = False
        for i, frame in enumerate(frames):
            extra = self._init_delay(first_wire) if i == 0 else 0.0
            delivered_any |= self._transmit(frame, extra)
        return delivered_any

    def forward_frame(self, frame: Frame) -> bool:
        """Forward a transit frame (router path: no init term)."""
        delivered_any = False
        for piece in frame.split(self.mtu):
            delivered_any |= self._transmit(piece, 0.0)
        return delivered_any

    def _frames_for(self, dgram: Datagram) -> list[Frame]:
        transport = dgram.transport_bytes
        if dgram.proto == PROTO_TCP:
            return [Frame(dgram, transport, first=True, burst=True)]
        per_frag = self.mtu - IP_HEADER
        frames = []
        remaining = transport
        first = True
        while True:
            chunk = min(per_frag, remaining)
            frames.append(Frame(dgram, chunk, first=first, burst=False))
            first = False
            remaining -= chunk
            if remaining <= 0:
                break
        return frames

    def _transmit(self, frame: Frame, extra: float) -> bool:
        ok = self.channel.transmit(frame, extra_start_delay=extra)
        if ok:
            self.tx_packets += 1
            self.tx_bytes += frame.wire_at(self.mtu)
        else:
            self.tx_drops += 1
        return ok

    # -- ingress ----------------------------------------------------------------
    def _on_deliver(self, frame: Frame) -> None:
        self.rx_packets += 1
        self.rx_bytes += frame.wire_at(self.mtu)
        self.node.receive(frame, self)
