"""repro — reproduction of *A Smart TCP Socket for Distributed Computing*
(Shao Tao, ICPP 2005 / NUS MSc thesis 2004).

The package is layered bottom-up:

* :mod:`repro.sim` — from-scratch discrete-event kernel (processes, events,
  stores, System V-style shared memory, seeded RNG streams);
* :mod:`repro.net` — packet-level network substrate: links with FIFO
  queueing, NICs with the thesis' MTU/init-speed effect, IP fragmentation,
  UDP/ICMP and a windowed go-back-N TCP, token-bucket shaping (*rshaper*);
* :mod:`repro.host` — machines: processor-sharing CPUs, Linux load
  averages, memory/disk accounting and a synthesized ``/proc``;
* :mod:`repro.lang` — the server-requirement meta-language (lexer, parser,
  evaluator; 22 server-side + 10 user-side variables, math builtins);
* :mod:`repro.core` — the Smart TCP socket library itself: server probes,
  system/network/security monitors, transmitter/receiver, the wizard and
  the client library, plus the random/round-robin selection baselines;
* :mod:`repro.cluster` — the 11-machine thesis testbed, WAN path profiles
  and one-call deployment of all daemons;
* :mod:`repro.faults` — deterministic fault injection: seedable
  :class:`~repro.faults.FaultPlan` schedules (host crashes, partitions,
  link flaps, daemon kills, loss bursts) executed by a
  :class:`~repro.faults.ChaosController` against a live deployment;
* :mod:`repro.apps` — the evaluation workloads: distributed matrix
  multiplication and the ``massd`` massive downloader;
* :mod:`repro.bench` — runners that regenerate every table and figure of
  the thesis' evaluation.

Quickstart::

    from repro.cluster import build_testbed, Deployment

    cluster = build_testbed()
    dep = Deployment(cluster, wizard_host=cluster.host("dalmatian"))
    dep.add_group("lab", cluster.host("dalmatian"),
                  [cluster.host(n) for n in ("dione", "mimas", "lhost")])
    dep.start()

    def app():
        yield cluster.sim.timeout(dep.warm_up_seconds())
        client = dep.client_for(cluster.host("sagit"))
        conns = yield from client.smart_sockets(
            "host_cpu_free > 0.9\\nhost_memory_free > 5", n=2)
        # ... drive the returned sockets ...

    cluster.sim.process(app())
    cluster.run(until=30.0)
"""

__version__ = "1.0.0"

__all__ = [
    "sim",
    "net",
    "host",
    "lang",
    "core",
    "cluster",
    "faults",
    "apps",
    "bench",
    "__version__",
]
