from setuptools import setup

# setup.py shim: the offline environment lacks the `wheel` package, so the
# PEP-517 editable-install path (`pip install -e .` -> bdist_wheel) fails.
# `python setup.py develop` / `pip install -e . --no-use-pep517` work without
# wheels; all real metadata lives in pyproject.toml.
setup()
