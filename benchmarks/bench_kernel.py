"""Kernel event-loop benchmark: throughput and profiler overhead.

The deterministic profiler (`Simulator.enable_profile`) sits behind a
single ``is None`` check in the kernel's schedule/step/resume paths, so
its cost when enabled must stay modest and its cost when *disabled*
must be nothing.  This bench drives a synthetic churn world — many
short-lived timer processes plus a few long-lived tickers, the same
shape as a wizard fleet under message load — and measures:

* raw kernel throughput (processed events per wall-second),
* the instrumented/uninstrumented wall-time ratio (criterion: <= 1.3x),
* that the profiler's attribution is byte-identical across two
  instrumented runs (the determinism `repro profile` relies on).

Writes ``benchmarks/results/BENCH_kernel.json``.

Run with ``PYTHONPATH=src python benchmarks/bench_kernel.py``.
"""

from __future__ import annotations

import gc
import json
import statistics
import time
from pathlib import Path

from compare import report_drift

from repro.sim import Simulator

RESULTS = Path(__file__).parent / "results" / "BENCH_kernel.json"

#: long-lived ticker processes and per-ticker spawned workers
N_TICKERS = 40
N_SPAWNS = 100
#: instrumented run may cost at most this much over the plain run
OVERHEAD_BUDGET = 1.3
N_TRIALS = 15


def churn_world(sim: Simulator) -> None:
    """Tickers that each spawn a stream of short-lived worker timers."""
    def worker(delay: float):
        yield sim.timeout(delay)

    def ticker(idx: int):
        for step in range(N_SPAWNS):
            sim.process(worker(0.5 + (step % 7) * 0.25),
                        name=f"worker-{idx}")
            yield sim.timeout(1.0)

    for idx in range(N_TICKERS):
        sim.process(ticker(idx), name=f"ticker-{idx}")


def one_run(profile: bool) -> "tuple[float, dict | None]":
    """(wall seconds, attribution dict or None when uninstrumented)."""
    sim = Simulator()
    profiler = sim.enable_profile() if profile else None
    churn_world(sim)
    # keep collector pauses (triggered by the *previous* run's garbage)
    # out of the timed section
    gc.collect()
    gc.disable()
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    gc.enable()
    return elapsed, None if profiler is None else profiler.attribution()


def main() -> None:
    plain_times = []
    ratios = []
    attributions = []
    events = 0
    one_run(profile=False)  # warm caches before the timed trials
    for _ in range(N_TRIALS):
        # interleave the arms and take per-pair ratios: adjacent runs
        # share machine state, so the ratio cancels load drift that
        # would contaminate a min- or median-of-arm comparison
        plain_elapsed, _ = one_run(profile=False)
        plain_times.append(plain_elapsed)
        profiled_elapsed, attr = one_run(profile=True)
        ratios.append(profiled_elapsed / plain_elapsed)
        assert attr is not None
        # the world is deterministic, so the instrumented run's event
        # count is the plain run's too
        events = attr["total_events"]
        attributions.append(json.dumps(attr, sort_keys=True))

    plain_s = statistics.median(plain_times)
    overhead = statistics.median(ratios)
    byte_stable = len(set(attributions)) == 1
    result = {
        "tickers": N_TICKERS,
        "spawns_per_ticker": N_SPAWNS,
        "events": events,
        "trials": N_TRIALS,
        "plain_median_s": round(plain_s, 5),
        "events_per_sec": round(events / plain_s) if plain_s > 0 else 0,
        "overhead_ratio": round(overhead, 3),
        "overhead_budget": OVERHEAD_BUDGET,
        "byte_stable": byte_stable,
        "criterion_met": bool(overhead <= OVERHEAD_BUDGET and byte_stable),
    }
    report_drift(result, RESULTS)
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    assert result["criterion_met"], (
        f"kernel profiler criterion failed: overhead {overhead:.3f}x "
        f"(budget {OVERHEAD_BUDGET}x), byte_stable={byte_stable}")


if __name__ == "__main__":
    main()
