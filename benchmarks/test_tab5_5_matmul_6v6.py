"""Table 5.5 — matmul 6 vs 6 with the blacklist option.

Paper: random 46.90 s vs Smart 43.02 s — only 8.3 % better.  The thesis
explains the small gain: with 6 of 11 servers on each side the two sets
overlap (pandora-x, helene, lhost were picked by both) and communication
overhead grows.  The requirement denies the five slowest machines.
"""

from __future__ import annotations

from conftest import matmul_report
from repro.bench import matmul_experiment

REQUIREMENT = ("(host_cpu_free > 0.9) && (host_memory_free > 5) && "
               "(user_denied_host1 = telesto) && (user_denied_host2 = mimas) && "
               "(user_denied_host3 = phoebe) && (user_denied_host4 = calypso) && "
               "(user_denied_host5 = titan-x)")


def test_matmul_6v6(benchmark):
    arms = benchmark.pedantic(
        lambda: matmul_experiment(
            n_servers=6, blk=200, requirement=REQUIREMENT,
            random_servers=("phoebe", "pandora-x", "calypso",
                            "telesto", "helene", "lhost"),
        ),
        rounds=1, iterations=1,
    )
    matmul_report(
        "tab5_5", "Thesis Table 5.5 — 6 vs 6 under zero Workload, blacklist "
        "(1500x1500, blk=200)",
        arms,
        paper={"random": ("phoebe, pandora-x, calypso, telesto, helene, lhost",
                          46.90),
               "smart": ("dalmatian, dione, pandora-x, helene, lhost, sagit",
                         43.02)},
    )
    by = {a.label: a for a in arms}
    # none of the blacklisted five may appear in the smart set
    denied = {"telesto", "mimas", "phoebe", "calypso", "titan-x"}
    assert denied.isdisjoint(by["smart"].servers)
    assert len(by["smart"].servers) == 6
    # smart still wins, but the 6v6 gain is the smallest of the series
    improvement = 1 - by["smart"].elapsed / by["random"].elapsed
    assert 0.0 < improvement < 0.35
