"""Table 3.3 / Figure 3.7 — bandwidth estimates across probe-size groups.

The thesis measures a ~95 Mbps-available 100 Mbps path with seven
``S1~S2`` probe pairs: groups entirely below the MTU read ~18–20 Mbps
(the ``Speed_init`` distortion of Eq. 3.7), groups above the MTU read
83–93 Mbps, and the tuned 1600~2900 pair is the best at ~93 Mbps; the
pipechar/pathload baselines see ~95–101 Mbps.
"""

from __future__ import annotations

import pytest

from conftest import record
from repro.bench import ComparisonRow, bandwidth_probe_table, format_comparison, format_table

PAPER_AVG = {
    "100~500": 20.01,
    "500~1000": 18.39,
    "100~1000": 18.33,
    "2000~4000": 88.12,
    "4000~6000": 81.0,  # avg cell blank in the thesis; midpoint of min/max
    "2000~6000": 83.54,
    "1600~2900": 92.86,
}


def test_bandwidth_probe_size_groups(benchmark):
    rows, extra = benchmark.pedantic(
        lambda: bandwidth_probe_table(runs=5, samples=4), rounds=1, iterations=1
    )
    table = format_table(
        ["Packet Size(Bytes)", "Min Bw(Mbps)", "Max Bw", "Avg Bw"],
        [(r.label, r.min_mbps, r.max_mbps, r.avg_mbps) for r in rows]
        + [("pipechar", "", "", extra["pipechar_mbps"]),
           ("pathload", "", "", f"{extra['pathload_mbps'][0]:.1f}"
                                f"~{extra['pathload_mbps'][1]:.1f}")],
        title="Thesis Table 3.3 — Bandwidth Measurements using various Packet Size",
    )
    comparison = format_comparison(
        [ComparisonRow(r.label, PAPER_AVG[r.label], round(r.avg_mbps, 2))
         for r in rows],
        title="paper avg (Mbps) vs measured avg (Mbps)",
    )
    record("tab3_3_fig3_7", table + "\n\n" + comparison)

    by_label = {r.label: r for r in rows}
    sub_mtu = [by_label[k].avg_mbps for k in ("100~500", "500~1000", "100~1000")]
    supra_mtu = [by_label[k].avg_mbps
                 for k in ("2000~4000", "4000~6000", "2000~6000", "1600~2900")]

    # the headline shape: sub-MTU groups are crushed by Speed_init
    assert max(sub_mtu) < 0.35 * min(supra_mtu)
    # supra-MTU groups land near the available bandwidth (95 of 100 Mbps)
    for avg in supra_mtu:
        assert avg == pytest.approx(95.0, rel=0.15)
    # the thesis' tuned pair is a good estimator
    assert by_label["1600~2900"].avg_mbps == pytest.approx(95.0, rel=0.12)
    # baselines in their published ranges
    assert extra["pipechar_mbps"] == pytest.approx(95.0, rel=0.15)
    lo, hi = extra["pathload_mbps"]
    assert lo < 105 and hi > 85
