"""Table 5.9 / Figure 5.6 — massd with 3 servers, all four mixes.

Paper setup: group-1 5.99 Mbps (fast), group-2 2.92 Mbps.  Throughput
rises with the number of fast servers in the set: 387 (0 fast), 520 (1),
634 (2), 796 KB/s (Smart, 3 fast via ``monitor_network_bw > 5``).
"""

from __future__ import annotations

import pytest

from conftest import record
from repro.bench import MASSD_GROUP1, format_table, massd_experiment

PAPER = {"random1": 387.0, "random2": 520.0, "random3": 634.0, "smart": 796.0}


def test_massd_3v3(benchmark):
    arms = benchmark.pedantic(
        lambda: massd_experiment(
            group1_mbps=5.99, group2_mbps=2.92,
            requirement="monitor_network_bw > 5",
            n_servers=3,
            random_sets=[
                ("dione", "titan-x", "pandora-x"),   # 0 fast
                ("mimas", "titan-x", "dione"),        # 1 fast
                ("telesto", "mimas", "dione"),        # 2 fast
            ],
        ),
        rounds=1, iterations=1,
    )
    table = format_table(
        ["arm", "servers", "throughput KB/s", "paper KB/s"],
        [(a.label, ", ".join(a.servers), round(a.throughput_kbps, 1),
          PAPER[a.label]) for a in arms],
        title="Thesis Table 5.9 / Fig 5.6 — massd 3 vs 3 "
              "(group-1 5.99 Mbps, group-2 2.92 Mbps, 50000 KB by 100 KB)",
    )
    record("tab5_9_fig5_6", table)

    by = {a.label: a for a in arms}
    # the Smart set is all three group-1 machines
    assert sorted(by["smart"].servers) == sorted(MASSD_GROUP1)
    # monotone in the number of fast servers — the thesis' staircase
    t = [by["random1"].throughput_kbps, by["random2"].throughput_kbps,
         by["random3"].throughput_kbps, by["smart"].throughput_kbps]
    assert t == sorted(t)
    # smart/worst factor near the paper's ~2.05x
    assert t[3] / t[0] == pytest.approx(796 / 387, rel=0.25)
