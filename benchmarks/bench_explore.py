"""Chaos-explorer benchmark: search throughput, shrink quality, replay
stability.

Three measurements:

* ``search``      — a healthy-build sweep (no mutant) over the matmul
  and massd scenarios: trials/minute of the single-worker engine, and
  the kind x phase coverage those trials bought.  A healthy build must
  come back violation-free.
* ``mutant_hunt`` — the seeded ``drop-checkpoint`` mutant: how fast the
  search trips an invariant, and how far ddmin + value shrinking get
  the triggering plan (the acceptance bar is <= 25% of the original
  events).
* ``replay``      — every committed corpus counterexample replayed
  twice with tracing: the dual runs must hash byte-identically and the
  recorded invariant must trip again.

Wall-clock figures (``wall_s``, ``trials_per_min``) vary with the
machine; everything else in the artefact is pure simulation output and
deterministic.  The criterion gates only the deterministic metrics.

Run with ``PYTHONPATH=src python benchmarks/bench_explore.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from compare import report_drift

from repro.faults.explore import explore, load_corpus, replay_counterexample

RESULTS = Path(__file__).parent / "results" / "BENCH_explore.json"
CORPUS = Path(__file__).parent.parent / "tests" / "faults" / "corpus"

HEALTHY_BUDGET = 40
MUTANT_BUDGET = 10


def main() -> dict:
    t0 = time.perf_counter()
    healthy = explore(budget=HEALTHY_BUDGET, seed=0,
                      scenarios=["matmul", "massd"])
    sweep_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    hunt = explore(budget=MUTANT_BUDGET, seed=0, scenarios=["matmul"],
                   mutant="drop-checkpoint")
    hunt_s = time.perf_counter() - t0
    shrink = hunt.shrink or {}
    ratio = (shrink["shrunk_events"] / shrink["original_events"]
             if shrink.get("original_events") else 1.0)

    replays = [replay_counterexample(ce) for _, ce in load_corpus(CORPUS)]

    report = {
        "scenario": "property-based fault-space search + corpus replay",
        "search": {
            "budget": HEALTHY_BUDGET,
            "trials_run": healthy.trials_run,
            "violations": len(healthy.violations),
            "wall_s": round(sweep_s, 1),
            "trials_per_min": round(healthy.trials_run / (sweep_s / 60.0), 1),
            "coverage_cells": {
                name: f"{cov['cells']}/{cov['total']}"
                for name, cov in healthy.coverage.items()
            },
        },
        "mutant_hunt": {
            "mutant": "drop-checkpoint",
            "found": hunt.found,
            "trial": hunt.counterexample.trial if hunt.counterexample else None,
            "invariant": (hunt.counterexample.invariant
                          if hunt.counterexample else None),
            "wall_s": round(hunt_s, 1),
            "shrink": shrink,
            "shrink_ratio": round(ratio, 3),
        },
        "replay": {
            "corpus_size": len(replays),
            "all_stable": all(r["stable"] for r in replays),
            "all_reproduced": all(r["reproduced"] for r in replays),
        },
        "criterion": ("healthy sweep violation-free; mutant found and "
                      "shrunk to <= 25% of original events; every corpus "
                      "CE replays byte-stably and reproduces"),
        "criterion_met": (
            not healthy.found
            and hunt.found
            and ratio <= 0.25
            and bool(replays)
            and all(r["stable"] and r["reproduced"] for r in replays)
        ),
    }
    RESULTS.parent.mkdir(exist_ok=True)
    report_drift(report, RESULTS)
    RESULTS.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    return report


if __name__ == "__main__":
    main()
