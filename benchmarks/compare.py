"""Diff a fresh benchmark result against its committed baseline.

Every bench script writes ``benchmarks/results/BENCH_<name>.json`` and,
just before overwriting it, calls :func:`report_drift` with the fresh
result — so each run prints how far every numeric metric moved relative
to the committed baseline.  The report is informational inside the bench
scripts (timings vary across machines; the hard gate is each script's
own ``criterion_met``-style assert), but the CLI form exits non-zero on
drift beyond tolerance for use as an explicit regression check::

    python benchmarks/compare.py results/BENCH_flowcheck.json fresh.json
    python benchmarks/compare.py --tolerance 0.25 baseline.json fresh.json
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Callable, Iterator

#: relative drift beyond which a metric is reported (50% — bench scripts
#: run on wildly different hardware; this catches regressions, not noise)
DEFAULT_TOLERANCE = 0.5


def numeric_leaves(obj: Any, prefix: str = "") -> Iterator[tuple[str, float]]:
    """Flatten nested dicts/lists to ``dotted.path -> number`` pairs
    (bools excluded — they are criteria, not metrics)."""
    if isinstance(obj, bool):
        return
    if isinstance(obj, (int, float)):
        yield prefix or "<root>", float(obj)
    elif isinstance(obj, dict):
        for key in sorted(obj):
            yield from numeric_leaves(obj[key], f"{prefix}.{key}" if prefix
                                      else str(key))
    elif isinstance(obj, list):
        for i, item in enumerate(obj):
            yield from numeric_leaves(item, f"{prefix}[{i}]")


def drift_report(baseline: Any, fresh: Any,
                 tolerance: float = DEFAULT_TOLERANCE
                 ) -> tuple[list[str], list[str]]:
    """(within-tolerance lines, beyond-tolerance lines), both sorted."""
    base = dict(numeric_leaves(baseline))
    new = dict(numeric_leaves(fresh))
    ok: list[str] = []
    bad: list[str] = []
    for key in sorted(base.keys() | new.keys()):
        if key not in base:
            ok.append(f"  {key}: (new metric) = {new[key]:g}")
            continue
        if key not in new:
            bad.append(f"  {key}: metric vanished (baseline {base[key]:g})")
            continue
        ref = max(abs(base[key]), 1e-9)
        rel = (new[key] - base[key]) / ref
        line = (f"  {key}: {base[key]:g} -> {new[key]:g} "
                f"({rel:+.1%})")
        (bad if abs(rel) > tolerance else ok).append(line)
    return ok, bad


def report_drift(fresh: Any, baseline_path: Path,
                 tolerance: float = DEFAULT_TOLERANCE,
                 emit: Callable[[str], None] = print) -> bool:
    """Print drift of ``fresh`` vs the committed ``baseline_path``.

    Returns ``True`` when every metric stayed within tolerance (or there
    is no baseline yet).  Never raises — the bench's own criterion is
    the hard gate.
    """
    if not baseline_path.exists():
        emit(f"compare: no committed baseline at {baseline_path} "
             f"(first run)")
        return True
    try:
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        emit(f"compare: unreadable baseline {baseline_path}: {exc}")
        return True
    ok, bad = drift_report(baseline, fresh, tolerance)
    emit(f"compare: vs {baseline_path.name} "
         f"(tolerance ±{tolerance:.0%}): "
         f"{len(ok)} metric(s) within, {len(bad)} beyond")
    for line in bad:
        emit(line)
    return not bad


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff a fresh benchmark JSON against a baseline; "
                    "exits 1 when any metric drifts beyond tolerance.")
    parser.add_argument("baseline", type=Path)
    parser.add_argument("fresh", type=Path)
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="relative drift allowed per metric "
                             "(default %(default)s)")
    args = parser.parse_args(argv)
    for path in (args.baseline, args.fresh):
        if not path.exists():
            print(f"compare: no such file: {path}")
            return 2
    fresh = json.loads(args.fresh.read_text(encoding="utf-8"))
    clean = report_drift(fresh, args.baseline, tolerance=args.tolerance)
    return 0 if clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
