"""Ablations of the deployment-level design choices (thesis §3.5, §4.1).

* **centralized vs distributed transmitter mode** — the thesis' stated
  trade-off: centralized pushes keep status hot (fast request handling)
  at a steady background byte cost; distributed mode moves bytes only
  when a request arrives, at the price of a pull round-trip per request.
* **probe interval vs failure-detection latency** — a server is declared
  dead after 3 missed reports (§4.1), so the detection latency and the
  background reporting bandwidth both scale with the interval.
"""

from __future__ import annotations

from conftest import record
from repro.bench import format_table
from repro.bench.experiments import _drive
from repro.cluster import Cluster, Deployment
from repro.core import Config, Mode


def build_world(mode, probe_interval=1.0):
    cluster = Cluster(seed=43)
    wizard_host = cluster.add_host("wizard")
    mon = cluster.add_host("mon")
    core = cluster.add_switch("core")
    cluster.link(wizard_host, core)
    cluster.link(mon, core)
    servers = []
    for i in range(4):
        s = cluster.add_host(f"s{i}")
        cluster.link(s, mon)
        servers.append(s)
    cluster.finalize()
    cfg = Config(probe_interval=probe_interval, transmit_interval=1.0,
                 mode=mode)
    dep = Deployment(cluster, wizard_host=wizard_host, config=cfg, mode=mode)
    dep.add_group("g", monitor_host=mon, servers=servers)
    dep.start()
    return cluster, dep


def run_mode(mode, n_requests=3, window=60.0):
    cluster, dep = build_world(mode)
    client = dep.client_for(dep.wizard_host)
    latencies = []

    def driver():
        yield cluster.sim.timeout(5.0)
        for _ in range(n_requests):
            t0 = cluster.sim.now
            reply = yield from client.request_servers("host_cpu_free > 0.2", 4)
            latencies.append(cluster.sim.now - t0)
            assert len(reply.servers) == 4
            yield cluster.sim.timeout((window - 5.0) / n_requests)

    proc = cluster.sim.process(driver())
    _drive(cluster, proc)
    status_bytes = dep.groups["g"].transmitter.bytes_sent
    return status_bytes, sum(latencies) / len(latencies)


def test_centralized_vs_distributed(benchmark):
    results = benchmark.pedantic(
        lambda: {m: run_mode(m) for m in (Mode.CENTRALIZED, Mode.DISTRIBUTED)},
        rounds=1, iterations=1,
    )
    rows = [(mode, nbytes, round(lat * 1e3, 2))
            for mode, (nbytes, lat) in results.items()]
    record("ablation_modes", format_table(
        ["mode", "status bytes / 60 s", "avg request latency (ms)"],
        rows,
        title="Ablation — centralized push vs distributed pull "
              "(4 servers, 3 requests per minute)",
    ))
    c_bytes, c_lat = results[Mode.CENTRALIZED]
    d_bytes, d_lat = results[Mode.DISTRIBUTED]
    # the thesis' §3.5 trade-off, quantified: sparse requests make the
    # distributed mode far cheaper in bytes but slower per request
    assert d_bytes < 0.25 * c_bytes
    assert c_lat < d_lat


def detection_latency(probe_interval):
    cluster, dep = build_world(Mode.CENTRALIZED, probe_interval=probe_interval)
    group = dep.groups["g"]
    out = {}

    def driver():
        yield cluster.sim.timeout(5 * probe_interval + 2.0)
        group.probes[0].stop()  # crash one server
        died_at = cluster.sim.now
        victim = group.probes[0].stack.node.addr
        while True:
            yield cluster.sim.timeout(probe_interval / 4)
            if victim not in group.sysmon.database():
                out["latency"] = cluster.sim.now - died_at
                return

    proc = cluster.sim.process(driver())
    _drive(cluster, proc)
    reports_per_min = 60.0 / probe_interval
    return out["latency"], reports_per_min


def test_probe_interval_tradeoff(benchmark):
    intervals = (0.5, 2.0, 5.0)
    results = benchmark.pedantic(
        lambda: {i: detection_latency(i) for i in intervals},
        rounds=1, iterations=1,
    )
    record("ablation_probe_interval", format_table(
        ["probe interval (s)", "failure detected after (s)",
         "reports/min/server"],
        [(i, round(results[i][0], 2), round(results[i][1], 1))
         for i in intervals],
        title="Ablation — probe interval vs failure-detection latency "
              "(miss limit = 3 reports, thesis §4.1)",
    ))
    # detection latency tracks ~(miss_limit+1) * interval
    for interval in intervals:
        latency, _ = results[interval]
        assert 3 * interval <= latency <= 5.2 * interval
    # and is monotone in the interval
    lats = [results[i][0] for i in intervals]
    assert lats == sorted(lats)
