"""Table 5.8 / Figure 5.5 — massd with 2 servers.

Paper setup: group-1 5.01 Mbps, group-2 7.67 Mbps (group-2 is the fast one
this round).  Random set 1 (mimas, telesto) has zero fast servers
(660 KB/s), random set 2 (telesto, titan-x) has one (795 KB/s); Smart with
``monitor_network_bw > 7`` picks two from group-2 (994 KB/s).
"""

from __future__ import annotations

import pytest

from conftest import record
from repro.bench import MASSD_GROUP2, format_table, massd_experiment

PAPER = {"random1": 660.0, "random2": 795.0, "smart": 994.0}


def test_massd_2v2(benchmark):
    arms = benchmark.pedantic(
        lambda: massd_experiment(
            group1_mbps=5.01, group2_mbps=7.67,
            requirement="monitor_network_bw > 7",
            n_servers=2,
            random_sets=[("mimas", "telesto"), ("telesto", "titan-x")],
        ),
        rounds=1, iterations=1,
    )
    table = format_table(
        ["arm", "servers", "throughput KB/s", "paper KB/s"],
        [(a.label, ", ".join(a.servers), round(a.throughput_kbps, 1),
          PAPER[a.label]) for a in arms],
        title="Thesis Table 5.8 / Fig 5.5 — massd 2 vs 2 "
              "(group-1 5.01 Mbps, group-2 7.67 Mbps, 50000 KB by 100 KB)",
    )
    record("tab5_8_fig5_5", table)

    by = {a.label: a for a in arms}
    # both smart picks come from the fast group
    assert all(s in MASSD_GROUP2 for s in by["smart"].servers)
    # ordering by number of fast servers: 0 < 1 < 2
    assert (by["random1"].throughput_kbps
            < by["random2"].throughput_kbps
            < by["smart"].throughput_kbps)
    # aggregate throughput tracks the sum of the chosen shapers
    assert by["smart"].throughput_kbps == pytest.approx(
        2 * 7.67e6 / 8 / 1024, rel=0.15)
