"""Table 5.6 — matmul 4 vs 4 with SuperPI workload on three servers.

Paper: helene, telesto and mimas run SuperPI (≥150 MB, load_1 above 1);
random (mimas, helene, calypso, telesto) needs 90.93 s, Smart (calypso,
phoebe, titan-x, pandora-x) needs 66.72 s — 26.6 % better, purely from the
``host_system_load1 < 0.5`` clause steering around the busy machines.
"""

from __future__ import annotations

from conftest import matmul_report
from repro.bench import matmul_experiment

REQUIREMENT = ("(host_cpu_free > 0.9) && (host_memory_free > 5) && "
               "(host_system_load1 < 0.5)")
LOADED = ("helene", "telesto", "mimas")
#: "7 servers with CPU P4 1.6GHz to 1.8 GHz were used to form the server
#: pool" (thesis §5.3.1, experiment 4)
POOL = ("mimas", "telesto", "helene", "phoebe", "calypso", "titan-x",
        "pandora-x")


def test_matmul_4v4_loaded(benchmark):
    arms = benchmark.pedantic(
        lambda: matmul_experiment(
            n_servers=4, blk=200, requirement=REQUIREMENT,
            random_servers=("mimas", "helene", "calypso", "telesto"),
            loaded_hosts=LOADED,
            warmup=90.0,  # load_1 needs ~40 s to cross 0.5
            pool=POOL,
        ),
        rounds=1, iterations=1,
    )
    matmul_report(
        "tab5_6", "Thesis Table 5.6 — 4 vs 4 with Workload "
        "(SuperPI on helene/telesto/mimas; 1500x1500, blk=200)",
        arms,
        paper={"random": ("mimas, helene, calypso, telesto", 90.93),
               "smart": ("calypso, phoebe, titan-x, pandora-x", 66.72)},
    )
    by = {a.label: a for a in arms}
    # the busy machines must not be selected
    assert set(LOADED).isdisjoint(by["smart"].servers)
    assert len(by["smart"].servers) == 4
    # avoiding 2 busy machines in the random set buys a substantial win
    improvement = 1 - by["smart"].elapsed / by["random"].elapsed
    assert 0.15 < improvement < 0.60
