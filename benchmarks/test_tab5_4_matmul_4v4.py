"""Table 5.4 — matmul 4 vs 4 under zero workload.

Paper: random (phoebe, pandora-x, calypso, telesto) 62.61 s vs Smart
(dalmatian, dione, sagit, lhost) 49.95 s — 20.2 % better.  The requirement
exploits the Fig 5.2 benchmark insight: ask for bogomips > 4000 *or*
< 2000 to get both the P4-2.4s and the P3-866s.
"""

from __future__ import annotations

from conftest import matmul_report
from repro.bench import matmul_experiment

REQUIREMENT = ("((host_cpu_bogomips > 4000) || (host_cpu_bogomips < 2000)) && "
               "(host_cpu_free > 0.9) && (host_memory_free > 5)")


def test_matmul_4v4(benchmark):
    arms = benchmark.pedantic(
        lambda: matmul_experiment(
            n_servers=4, blk=200, requirement=REQUIREMENT,
            random_servers=("phoebe", "pandora-x", "calypso", "telesto"),
        ),
        rounds=1, iterations=1,
    )
    matmul_report(
        "tab5_4", "Thesis Table 5.4 — 4 vs 4 under zero Workload "
        "(1500x1500, blk=200)",
        arms,
        paper={"random": ("phoebe, pandora-x, calypso, telesto", 62.61),
               "smart": ("dalmatian, dione, sagit, lhost", 49.95)},
    )
    by = {a.label: a for a in arms}
    assert sorted(by["smart"].servers) == ["dalmatian", "dione", "lhost", "sagit"]
    improvement = 1 - by["smart"].elapsed / by["random"].elapsed
    # paper saw 20.2 %; smaller than the 2v2 gain, still clearly positive
    assert 0.10 < improvement < 0.45
    # dynamic dispatch: the fast machines do more blocks than the P3s
    blocks = by["smart"].blocks_per_server
    assert blocks["dalmatian"] > blocks["sagit"]
