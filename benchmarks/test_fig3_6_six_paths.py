"""Figure 3.6 / Table 3.2 — RTT curves on six sample network paths.

Thesis observations reproduced as assertions:

1. the knee exists only on physical-interface paths — loopback (f) is flat;
2. base RTTs match the published ``ping`` values;
4. on the long, jittery WAN paths (a: 126 ms, b: 238 ms) the knee is
   *shadowed* — relative RTT growth over the probe-size sweep is tiny.
"""

from __future__ import annotations

import pytest

from conftest import record
from repro.bench import series_to_text, six_paths
from repro.cluster import WAN_PATHS


def test_six_paths(benchmark):
    results = benchmark.pedantic(
        lambda: six_paths(sizes=range(100, 6001, 100)), rounds=1, iterations=1
    )
    blocks = []
    for spec in WAN_PATHS:
        series = results[spec.index]
        blocks.append(series_to_text(
            [(s, round(t * 1e3, 3)) for s, t in series],
            "payload_B", "rtt_ms", max_points=10,
            title=f"path {spec.index}: {spec.src} -> {spec.dst} "
                  f"({spec.description}; ping {spec.ping_rtt_ms} ms)",
        ))
    record("fig3_6", "Thesis Fig 3.6 — RTT on six paths\n\n" + "\n\n".join(blocks))

    # 1. LAN paths show a real knee...
    from repro.bench import knee_slopes

    for index in ("c", "d", "e"):
        below, above = knee_slopes(results[index], 1500)
        assert below > 1.8 * above, f"path {index} lost its knee"
    # ...loopback does not (slopes are both ~0 and RTT stays flat)
    f_series = results["f"]
    f_spread = max(t for _, t in f_series) - min(t for _, t in f_series)
    assert f_spread < 100e-6

    # 2. base RTT matches ping (small probes, generous tolerance)
    for spec in WAN_PATHS:
        base = min(t for _, t in results[spec.index]) * 1e3
        assert base == pytest.approx(spec.ping_rtt_ms, rel=0.6), spec.index

    # 4. the knee is shadowed on large-RTT jittery paths: total RTT growth
    # across the sweep is a tiny fraction of the base RTT
    for index in ("a", "b"):
        series = results[index]
        base = min(t for _, t in series)
        growth = max(t for _, t in series) - base
        assert growth < 0.5 * base, f"path {index} should dwarf the size effect"
