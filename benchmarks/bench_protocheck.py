"""Whole-repo typestate benchmark: `repro check --proto` must stay fast.

The S-series analyzer is a CI gate over every push, so it carries an
explicit wall-clock budget: analyzing all of ``src/repro`` (symbol
table + machine-declaration drift check + path-sensitive typestate walk
+ request-reply pairing) must finish within ``BUDGET_S`` seconds, and
two runs must produce byte-identical findings (the determinism the
golden fixtures rely on).

Writes ``benchmarks/results/BENCH_protocheck.json``.

Run with ``PYTHONPATH=src python benchmarks/bench_protocheck.py``.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from compare import report_drift

from repro.analysis.typestate import run_typestate

REPO = Path(__file__).parent.parent
SRC = REPO / "src" / "repro"
RESULTS = Path(__file__).parent / "results" / "BENCH_protocheck.json"

#: hard wall-clock budget for one whole-repo analysis (CI gate)
BUDGET_S = 10.0
N_TRIALS = 5


def one_run():
    t0 = time.perf_counter()
    report = run_typestate([SRC])
    elapsed = time.perf_counter() - t0
    return elapsed, report


def render(report) -> str:
    """A canonical text form of everything the analysis produced."""
    return "\n".join(
        f"{unit.posix}:{d.line}:{d.col}:{d.code}:{d.message}"
        for unit, d in report.findings)


def main() -> None:
    trials = []
    renders = []
    report = None
    for _ in range(N_TRIALS):
        elapsed, report = one_run()
        trials.append(elapsed)
        renders.append(render(report))

    assert report is not None
    median_s = statistics.median(trials)
    byte_stable = len(set(renders)) == 1
    result = {
        "files": len(report.units),
        "functions": report.function_count,
        "acquisitions": report.acquisition_count,
        "declarations": report.declaration_count,
        "findings": len(report.findings),
        "trials": N_TRIALS,
        "median_s": round(median_s, 4),
        "min_s": round(min(trials), 4),
        "max_s": round(max(trials), 4),
        "budget_s": BUDGET_S,
        "byte_stable": byte_stable,
        "criterion_met": bool(median_s <= BUDGET_S and byte_stable
                              and len(report.findings) == 0),
    }
    report_drift(result, RESULTS)
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    assert result["criterion_met"], (
        f"proto gate criterion failed: median {median_s:.3f}s "
        f"(budget {BUDGET_S}s), byte_stable={byte_stable}, "
        f"findings={len(report.findings)}")


if __name__ == "__main__":
    main()
