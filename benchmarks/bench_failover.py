"""Failover benchmark: recovery latency of the self-healing data plane.

Runs the HA matmul job (2 self-healing sessions on the two-replica
wizard star) for a handful of seeds under three fault modes:

* ``none``        — the no-fault baseline;
* ``wizard_kill`` — the primary wizard replica (wizard + receiver) dies
  just before the first request, forcing a control-plane failover;
* ``server_kill`` — the first chosen worker power-fails 2.5 s into the
  stream, forcing a checkpoint + data-plane failover.

For each faulted run the *recovery latency* is its elapsed wall time
minus the same-seed baseline's — the price of the fault, everything else
being equal.  The report records per-scenario p50/p95 recovery and the
acceptance criterion ``elapsed < 2x no-fault`` per run.

The metrics are pure simulation time, so the JSON artefact
(``benchmarks/results/BENCH_failover.json``) is deterministic and later
PRs can diff it to track the failover path's cost.

Run with ``PYTHONPATH=src python benchmarks/bench_failover.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

from compare import report_drift

from repro.bench.experiments import failover_experiment

RESULTS = Path(__file__).parent / "results" / "BENCH_failover.json"

SEEDS = (0, 1, 2)
FAULTS = ("wizard_kill", "server_kill")


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of a small sample."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[rank]


def main() -> dict:
    baselines = {seed: failover_experiment("none", seed=seed)
                 for seed in SEEDS}
    scenarios = {}
    for fault in FAULTS:
        runs = []
        for seed in SEEDS:
            arm = failover_experiment(fault, seed=seed)
            base = baselines[seed]
            runs.append({
                "seed": seed,
                "elapsed_s": round(arm.elapsed, 3),
                "baseline_s": round(base.elapsed, 3),
                "recovery_s": round(arm.elapsed - base.elapsed, 3),
                "failovers": arm.failovers,
                "requeued_blocks": arm.requeued_blocks,
                "wizard_failovers": arm.wizard_failovers,
                "under_2x_baseline": arm.elapsed < 2.0 * base.elapsed,
            })
        recoveries = [r["recovery_s"] for r in runs]
        scenarios[fault] = {
            "runs": runs,
            "recovery_p50_s": round(_percentile(recoveries, 0.50), 3),
            "recovery_p95_s": round(_percentile(recoveries, 0.95), 3),
            "all_under_2x_baseline": all(r["under_2x_baseline"] for r in runs),
        }
    report = {
        "scenario": "self-healing matmul 2v2 on a 2-replica wizard star",
        "baseline_elapsed_s": {
            str(seed): round(arm.elapsed, 3)
            for seed, arm in baselines.items()
        },
        "scenarios": scenarios,
        "criterion": "faulted elapsed < 2x same-seed no-fault elapsed",
        "criterion_met": all(s["all_under_2x_baseline"]
                             for s in scenarios.values()),
    }
    RESULTS.parent.mkdir(exist_ok=True)
    report_drift(report, RESULTS)
    RESULTS.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    return report


if __name__ == "__main__":
    main()
