"""Table 5.2 — per-component system resources with 11 probes running.

The thesis' headline: the whole monitoring plane is *cheap* — every
component under 1 % CPU and under ~100 KB resident, with the system
monitor the busiest network consumer (it absorbs all probe reports).
"""

from __future__ import annotations

from conftest import record
from repro.bench import format_table, resource_usage

PAPER = {
    "System Probe": ("<0.1%", "8 KB", "0.5~0.6 KBps(UDP)"),
    "System Monitor": ("0.7%", "8 KB", "5.7 KBps(UDP)"),
    "Network Monitor": ("<0.1%", "8 KB", "5.6 KBps(UDP)"),
    "Security Monitor": ("<0.1%", "8 KB", "(not used)"),
    "Transmitter": ("<0.1%", "8 KB", "1.2 KBps(TCP)"),
    "Receiver": ("<0.1%", "92 KB", "1.2 KBps(TCP)"),
    "Wizard": ("0.1%", "96 KB", "<1 KBps(UDP)"),
}


def test_resource_usage(benchmark):
    rows = benchmark.pedantic(lambda: resource_usage(duration=60.0),
                              rounds=1, iterations=1)
    table = format_table(
        ["Program", "CPU", "Memory", "Net bandwidth", "paper CPU/mem/net"],
        [(r.component, f"{r.cpu_pct:.2f}%", f"{r.mem_kb:.0f} KB",
          f"{r.net_kbps:.2f} KBps({r.transport})",
          " / ".join(PAPER[r.component]))
         for r in rows],
        title="Thesis Table 5.2 — System Resource used with 11 Probes Running",
    )
    record("tab5_2", table)

    by_name = {r.component: r for r in rows}
    # every component is lightweight: ≤1% CPU, ≤150 KB resident
    for r in rows:
        assert r.cpu_pct <= 1.0, r.component
        assert r.mem_kb <= 150, r.component
    # the system monitor carries the aggregate probe traffic: roughly
    # one probe-report bandwidth per monitored server (10 in the lab group)
    probe = by_name["System Probe"]
    sysmon = by_name["System Monitor"]
    assert 8 * probe.net_kbps < sysmon.net_kbps < 12 * probe.net_kbps
    # transmitter and receiver move the same bytes (same TCP stream)
    assert by_name["Transmitter"].net_kbps == by_name["Receiver"].net_kbps
    # the network monitor probes actively; the security monitor is local-only
    assert by_name["Network Monitor"].net_kbps > 0
    assert by_name["Security Monitor"].net_kbps == 0
    # wizard answered requests but stayed under 1 KBps, like the paper
    assert 0 < by_name["Wizard"].net_kbps < 1.0
