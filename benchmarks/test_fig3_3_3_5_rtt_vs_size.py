"""Figures 3.3/3.4/3.5 — RTT vs UDP payload size, knee at the MTU.

The thesis sweeps UDP payloads 1→6000 B and finds the RTT slope breaks at
the interface MTU (1500, then reconfigured to 1000 and 500 B).  Shape
checks: the sub-MTU slope clearly exceeds the supra-MTU slope and the
best-split breakpoint lands at ``MTU - 28`` (IP+UDP headers).
"""

from __future__ import annotations

import pytest

from conftest import record
from repro.bench import knee_slopes, rtt_vs_size, series_to_text


def locate_knee(series):
    """Payload size minimising two-piece linear fit error (coarse scan)."""
    from repro.bench.experiments import _slope

    best, best_err = None, float("inf")
    candidates = [s for s, _ in series][5:-5]
    for cut in candidates[:: max(1, len(candidates) // 60)]:
        lo = [(s, t) for s, t in series if s <= cut]
        hi = [(s, t) for s, t in series if s > cut]
        if len(lo) < 3 or len(hi) < 3:
            continue
        slo, shi = _slope(lo), _slope(hi)
        err = sum((t - (lo[0][1] + slo * (s - lo[0][0]))) ** 2 for s, t in lo)
        err += sum((t - (hi[0][1] + shi * (s - hi[0][0]))) ** 2 for s, t in hi)
        if err < best_err:
            best, best_err = cut, err
    return best


@pytest.mark.parametrize("mtu,figure", [(1500, "fig3_3"), (1000, "fig3_4"),
                                        (500, "fig3_5")])
def test_rtt_knee_at_mtu(benchmark, mtu, figure):
    series = benchmark.pedantic(
        lambda: rtt_vs_size(mtu=mtu, sizes=range(1, 6001, 25)),
        rounds=1, iterations=1,
    )
    below, above = knee_slopes(series, mtu)
    knee = locate_knee(series)
    report = series_to_text(
        [(s, round(t * 1e6, 1)) for s, t in series],
        "payload_B", "rtt_us",
        title=(f"Thesis {figure.replace('_', '.')} — RTT vs UDP payload, "
               f"MTU={mtu}B\n"
               f"slope below knee: {below*1e9:.1f} ns/B, above: "
               f"{above*1e9:.1f} ns/B, knee located at ~{knee} B "
               f"(expected ~{mtu - 28} B)"),
    )
    record(figure, report)

    # thesis observation 3: sub-MTU ascent rate is distinctly higher
    assert below > 1.8 * above
    # thesis observation 2: the threshold M sits at the MTU
    assert knee == pytest.approx(mtu - 28, abs=mtu * 0.15)
    # RTT is (noisily) increasing overall
    assert series[-1][1] > series[0][1]
