"""Chaos benchmark: time-to-recover of the control plane after faults.

Runs the ISSUE-1 acceptance scenario (crash 2 of 6 servers, partition one
group for 30 simulated seconds, kill+restart a transmitter) for a handful
of seeds and records how fast the wizard's reply quality recovers:

* ``expiry_s``   — how long after the crash dead servers kept appearing
  in replies (record-expiry propagation latency);
* ``recovery_s`` — how long after the partition heal the client got back
  a full-quality reply (3 requested, 3 live);
* ``budget_s``   — the plane's theoretical bound,
  ``probe_miss_limit * probe_interval + transmit_interval``.

The metrics are pure simulation time, so the JSON artefact
(``benchmarks/results/BENCH_chaos.json``) is deterministic and later PRs
can diff it to track the robustness trajectory.

Run with ``PYTHONPATH=src python benchmarks/bench_chaos.py``.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

from compare import report_drift

from repro.cluster import Cluster, Deployment
from repro.core.config import DEFAULT_CONFIG
from repro.faults import ChaosController, FaultPlan

RESULTS = Path(__file__).parent / "results" / "BENCH_chaos.json"

CONFIG = replace(
    DEFAULT_CONFIG,
    probe_interval=1.0,
    probe_miss_limit=3,
    transmit_interval=1.0,
    netmon_interval=1.0,
    client_timeout=1.0,
    client_retries=2,
    client_backoff_base=0.1,
    client_backoff_cap=1.0,
    transmit_backoff_cap=2.0,
    transmit_stall_limit=3.0,
)
REQUIREMENT = "host_cpu_free > 0.1\nhost_status_age < 10"

CRASH_AT = 5.0
PARTITION_AT = 12.0
PARTITION_FOR = 30.0
HEAL_AT = PARTITION_AT + PARTITION_FOR
TX_KILL_AT = 20.0
TX_RESTART_AT = 25.0
HORIZON = 60.0
BUDGET = CONFIG.probe_miss_limit * CONFIG.probe_interval + CONFIG.transmit_interval


def build_world(seed: int):
    """Two-group six-server star; cutting sw-g1<->core isolates group g1."""
    cluster = Cluster(seed=seed)
    wiz = cluster.add_host("wiz")
    cli = cluster.add_host("cli")
    mon1 = cluster.add_host("mon1")
    mon2 = cluster.add_host("mon2")
    core = cluster.add_switch("core")
    sw1 = cluster.add_switch("sw-g1")
    sw2 = cluster.add_switch("sw-g2")
    cluster.link(wiz, core, subnet="10.0.0")
    cluster.link(cli, core, subnet="10.0.3")
    cluster.link(mon1, sw1, subnet="10.0.1")
    cluster.link(sw1, core, subnet="10.0.1")
    cluster.link(mon2, sw2, subnet="10.0.2")
    cluster.link(sw2, core, subnet="10.0.2")
    servers = []
    for i in range(6):
        s = cluster.add_host(f"s{i}")
        cluster.link(s, sw1 if i < 3 else sw2,
                     subnet="10.0.1" if i < 3 else "10.0.2")
        servers.append(s)
    cluster.finalize()
    dep = Deployment(cluster, wizard_host=wiz, config=CONFIG)
    dep.add_group("g1", mon1, servers[:3])
    dep.add_group("g2", mon2, servers[3:])
    dep.start()
    return cluster, dep, {s.name: s.addr for s in servers}


def acceptance_plan() -> FaultPlan:
    return (FaultPlan()
            .crash_host(CRASH_AT, "s4")
            .crash_host(CRASH_AT, "s5")
            .partition(PARTITION_AT, "sw-g1", "core", duration=PARTITION_FOR)
            .kill_daemon(TX_KILL_AT, "mon2", "transmitter")
            .restart_daemon(TX_RESTART_AT, "mon2", "transmitter"))


def run_once(seed: int) -> dict:
    cluster, dep, addrs = build_world(seed)
    chaos = ChaosController(dep, acceptance_plan())
    chaos.start()
    client = dep.client_for(cluster.host("cli"))
    observed: list[tuple[float, tuple[str, ...]]] = []

    def poller():
        yield cluster.sim.timeout(dep.warm_up_seconds())
        while cluster.sim.now < HORIZON:
            reply = yield from client.request_servers(REQUIREMENT, 3)
            observed.append((cluster.sim.now, tuple(sorted(reply.servers))))
            yield cluster.sim.timeout(1.0)

    cluster.sim.process(poller(), name="bench-poller")
    cluster.run(until=HORIZON + 2.0)

    dead = {addrs["s4"], addrs["s5"]}
    live = {addrs[n] for n in ("s0", "s1", "s2", "s3")}
    dead_sightings = [t for t, s in observed if t >= CRASH_AT and dead & set(s)]
    expiry_s = (max(dead_sightings) - CRASH_AT) if dead_sightings else 0.0
    recovered = [t for t, s in observed
                 if t >= HEAL_AT and len(s) == 3 and set(s) <= live]
    recovery_s = (recovered[0] - HEAL_AT) if recovered else float("inf")
    return {
        "seed": seed,
        "expiry_s": round(expiry_s, 3),
        "recovery_s": round(recovery_s, 3),
        "within_budget": recovery_s <= BUDGET + 1.0,
        "replies": len(observed),
        "faults_applied": len(chaos.log),
    }


def main() -> dict:
    runs = [run_once(seed) for seed in (0, 1, 2)]
    report = {
        "scenario": "crash 2/6 servers + 30 s group partition + transmitter restart",
        "budget_s": BUDGET,
        "runs": runs,
        "mean_expiry_s": round(sum(r["expiry_s"] for r in runs) / len(runs), 3),
        "mean_recovery_s": round(sum(r["recovery_s"] for r in runs) / len(runs), 3),
        "all_within_budget": all(r["within_budget"] for r in runs),
    }
    RESULTS.parent.mkdir(exist_ok=True)
    report_drift(report, RESULTS)
    RESULTS.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    return report


if __name__ == "__main__":
    main()
