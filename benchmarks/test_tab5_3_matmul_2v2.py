"""Table 5.3 — matmul 2 vs 2 under zero workload.

Paper: random (lhost, phoebe) 100.16 s vs Smart (dalmatian, dione) 63.00 s
— a 37.1 % improvement from asking for ``bogomips > 4000``.
"""

from __future__ import annotations

import pytest

from conftest import matmul_report
from repro.bench import matmul_experiment

REQUIREMENT = ("(host_cpu_bogomips > 4000) && (host_cpu_free > 0.9) && "
               "(host_memory_free > 5)")


def test_matmul_2v2(benchmark):
    arms = benchmark.pedantic(
        lambda: matmul_experiment(
            n_servers=2, blk=600, requirement=REQUIREMENT,
            random_servers=("lhost", "phoebe"),
        ),
        rounds=1, iterations=1,
    )
    matmul_report(
        "tab5_3", "Thesis Table 5.3 — 2 vs 2 under zero Workload "
        "(1500x1500, blk=600)",
        arms,
        paper={"random": ("lhost, phoebe", 100.16),
               "smart": ("dalmatian, dione", 63.00)},
    )
    by = {a.label: a for a in arms}
    # the Smart library finds the two P4-2.4 machines
    assert sorted(by["smart"].servers) == ["dalmatian", "dione"]
    # and wins by roughly the paper's factor (37.1 %); shape band 25–50 %
    improvement = 1 - by["smart"].elapsed / by["random"].elapsed
    assert 0.25 < improvement < 0.50
    # absolute times in the paper's ballpark (same workload, similar speeds)
    assert by["smart"].elapsed == pytest.approx(63.0, rel=0.25)
    assert by["random"].elapsed == pytest.approx(100.16, rel=0.25)
