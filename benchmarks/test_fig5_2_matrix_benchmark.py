"""Figure 5.2 — per-host matrix multiplication benchmark (1500², blk 200).

The thesis' calibration finding: "the P3 866MHz and P4 2.4GHz CPUs have
better performance than the P4 1.6GHz ~ 1.8GHz ones" for its matmul
program, i.e. benchmark time is *not* monotone in bogomips.
"""

from __future__ import annotations

from conftest import record
from repro.bench import format_table, matrix_benchmark
from repro.cluster import TESTBED_MACHINES


def test_matrix_benchmark(benchmark):
    results = benchmark.pedantic(matrix_benchmark, rounds=1, iterations=1)
    times = dict(results)
    spec = {m.name: m for m in TESTBED_MACHINES}
    table = format_table(
        ["host", "cpu", "bogomips", "benchmark_s"],
        [(name, spec[name].cpu, spec[name].bogomips, round(t, 2))
         for name, t in results],
        title="Thesis Fig 5.2 — Matrix Benchmarking Results (1500x1500, blk=200)",
    )
    record("fig5_2", table)

    p4_24 = {"dalmatian", "dione"}
    p3 = {"sagit", "lhost"}
    p4_mid = {"mimas", "telesto", "helene", "phoebe", "calypso",
              "titan-x", "pandora-x"}
    # the thesis' ranking: P4-2.4 fastest, P3-866 next, P4-1.6~1.8 slowest
    assert max(times[n] for n in p4_24) < min(times[n] for n in p3)
    assert max(times[n] for n in p3) < min(times[n] for n in p4_mid)
    # and therefore NOT monotone in bogomips: sagit (1730 bogomips) beats
    # pandora-x (3591 bogomips)
    assert times["sagit"] < times["pandora-x"]
