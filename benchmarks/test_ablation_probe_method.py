"""Ablations of the one-way UDP stream design choices (thesis §3.3.2).

Two knobs the thesis argues for, measured directly:

* **min-filtered streams vs single packet pairs** — the thesis rejects
  pipechar's single-pair approach as "highly sensitive to network delay
  variations"; we measure estimate spread with 1 repetition vs 3 under
  cross traffic.
* **the Speed_init term (Eq 3.6)** — with the NIC initialisation effect
  disabled, sub-MTU probe pairs stop under-estimating, demonstrating the
  term really is what produces Table 3.3's 20-vs-90 Mbps split.
"""

from __future__ import annotations

import statistics

import pytest

from conftest import record
from repro.bench import format_table
from repro.bench.experiments import _cross_traffic, _drive
from repro.cluster import Cluster
from repro.core import estimate_bandwidth
from repro.net import MBPS


def build_path(init_speed=True, cross=0.06, seed=0):
    cluster = Cluster(seed=seed)
    if not init_speed:
        cluster.network.default_init_speed_bps = None  # type: ignore[assignment]
    a = cluster.add_host("a")
    b = cluster.add_host("b")
    sw = cluster.add_switch("sw")
    l1 = cluster.link(a, sw, rate_bps=100 * MBPS)
    l2 = cluster.link(sw, b, rate_bps=100 * MBPS)
    cluster.finalize()
    if cross:
        _cross_traffic(cluster, [l1.ab, l1.ba, l2.ab, l2.ba], utilisation=cross)
    return cluster, a, b


def collect_estimates(reps: int, runs: int = 12, seed: int = 0):
    cluster, a, b = build_path(seed=seed)
    samples: list[float] = []

    def measure():
        for _ in range(runs):
            est = yield from estimate_bandwidth(
                a.stack, b.addr, samples=1, reps=reps, gap=0.03)
            if est.ok:
                samples.append(est.avg_bps / 1e6)
            yield cluster.sim.timeout(0.2)

    proc = cluster.sim.process(measure())
    _drive(cluster, proc)
    return samples


def test_min_filtering_tames_variance(benchmark):
    def run():
        return collect_estimates(reps=1), collect_estimates(reps=3)

    single, filtered = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("single pair (reps=1)", round(min(single), 1), round(max(single), 1),
         round(statistics.median(single), 1), round(statistics.stdev(single), 1)),
        ("min-filtered stream (reps=3)", round(min(filtered), 1),
         round(max(filtered), 1), round(statistics.median(filtered), 1),
         round(statistics.stdev(filtered), 1)),
    ]
    record("ablation_min_filtering", format_table(
        ["method", "min Mbps", "max Mbps", "median", "stdev"],
        rows,
        title="Ablation — single packet pair vs min-filtered stream "
              "(100 Mbps path, 6% cross traffic)",
    ))
    # the stream method is dramatically steadier under cross traffic
    assert statistics.stdev(filtered) < 0.5 * statistics.stdev(single)
    # and its median stays near the truth
    assert statistics.median(filtered) == pytest.approx(95.0, rel=0.15)


def test_speed_init_term_causes_sub_mtu_bias(benchmark):
    def run():
        out = {}
        for label, enabled in (("with Speed_init", True), ("without", False)):
            cluster, a, b = build_path(init_speed=enabled, cross=0.0)
            est_holder = {}

            def measure():
                low = yield from estimate_bandwidth(
                    a.stack, b.addr, s1=100, s2=1000, samples=3)
                high = yield from estimate_bandwidth(
                    a.stack, b.addr, s1=1600, s2=2900, samples=3)
                est_holder["low"] = low.avg_bps / 1e6
                est_holder["high"] = high.avg_bps / 1e6

            proc = cluster.sim.process(measure())
            _drive(cluster, proc)
            out[label] = (est_holder["low"], est_holder["high"])
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    record("ablation_speed_init", format_table(
        ["NIC model", "100~1000 B (Mbps)", "1600~2900 B (Mbps)"],
        [(k, round(v[0], 1), round(v[1], 1)) for k, v in out.items()],
        title="Ablation — Eq 3.6 initialisation term on/off (clean 100 Mbps path)",
    ))
    with_low, with_high = out["with Speed_init"]
    without_low, without_high = out["without"]
    # supra-MTU estimates are immune to the term either way
    assert with_high == pytest.approx(without_high, rel=0.1)
    # the sub-MTU bias exists if and only if the term is modelled...
    assert with_low < 0.35 * with_high
    # ...without it, sub-MTU pairs see only per-hop store-and-forward
    # (2 hops -> ~rate/2), much closer to the truth than ~rate/6
    assert without_low > 1.8 * with_low
