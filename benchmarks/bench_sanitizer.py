"""Sanitizer overhead benchmark: detector on vs off on the smoke worlds.

The happens-before race detector instruments every event trigger,
process resume, message delivery and shared-segment access.  It is a
debugging tool, but it must stay cheap enough to run in CI on every
push, so this benchmark times the two ``--sanitize`` smoke scenarios
(matmul 2v2 and massd 1v1 — the same worlds the CI ``sanitize`` job
runs) with the detector off and on.

Writes ``benchmarks/results/BENCH_sanitizer.json``.  The acceptance
bar: detector-on wall time must stay within 2x detector-off on both
scenarios, and both sanitized runs must be race-free.

Run with ``PYTHONPATH=src python benchmarks/bench_sanitizer.py``.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from compare import report_drift

from repro.bench.experiments import massd_experiment, matmul_experiment

RESULTS = Path(__file__).parent / "results" / "BENCH_sanitizer.json"

N_TRIALS = 3

MATMUL_KW = dict(
    n_servers=2,
    blk=120,
    requirement="(host_cpu_bogomips > 4000) && (host_cpu_free > 0.9)"
                " && (host_memory_free > 5)",
    random_servers=("lhost", "phoebe"),
    n=240,
)

MASSD_KW = dict(
    group1_mbps=6.72,
    group2_mbps=1.33,
    requirement="monitor_network_bw > 6",
    n_servers=1,
    random_sets=[("pandora-x",)],
    data_kb=2000,
)


def _time_scenario(fn, kwargs, sanitize):
    trials = []
    arms = []
    for _ in range(N_TRIALS):
        t0 = time.perf_counter()
        arms = fn(sanitize=sanitize, **kwargs)
        trials.append(time.perf_counter() - t0)
    return statistics.median(trials), arms


def bench_one(fn, kwargs):
    off_s, _ = _time_scenario(fn, kwargs, sanitize=False)
    on_s, arms = _time_scenario(fn, kwargs, sanitize=True)
    races = sum(len(a.races or ()) for a in arms)
    accesses = sum(a.tracked_accesses for a in arms)
    return {
        "off_s": round(off_s, 4),
        "on_s": round(on_s, 4),
        "overhead": round(on_s / off_s, 3),
        "races": races,
        "tracked_accesses": accesses,
        "within_2x": on_s <= 2.0 * off_s,
    }


def main() -> None:
    result = {
        "trials": N_TRIALS,
        "matmul_2v2": bench_one(matmul_experiment, MATMUL_KW),
        "massd_1v1": bench_one(massd_experiment, MASSD_KW),
    }
    result["all_within_2x"] = all(
        result[k]["within_2x"] for k in ("matmul_2v2", "massd_1v1"))
    result["race_free"] = all(
        result[k]["races"] == 0 for k in ("matmul_2v2", "massd_1v1"))
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    report_drift(result, RESULTS)
    RESULTS.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    assert result["all_within_2x"], (
        "sanitizer overhead exceeded 2x on a smoke scenario")
    assert result["race_free"], "a smoke scenario raced under the detector"


if __name__ == "__main__":
    main()
