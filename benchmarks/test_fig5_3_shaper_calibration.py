"""Figure 5.3 — rshaper / massd calibration.

Ten sample transfers with the shaper set to 1 % of the data size (in
KB/s): "the bandwidth values set by rshaper were very close to the actual
throughput we can get from the massd program", i.e. the tooling itself has
negligible overhead.
"""

from __future__ import annotations

import pytest

from conftest import record
from repro.bench import format_table, shaper_calibration


def test_shaper_calibration(benchmark):
    points = benchmark.pedantic(lambda: shaper_calibration(tests=10),
                                rounds=1, iterations=1)
    table = format_table(
        ["rshaper set (KB/s)", "massd measured (KB/s)", "ratio"],
        [(set_kbps, round(got, 1), round(got / set_kbps, 3))
         for set_kbps, got in points],
        title="Thesis Fig 5.3 — Benchmark for rshaper and massd",
    )
    record("fig5_3", table)

    # the shaper controls massd's throughput precisely across the range
    for set_kbps, got in points:
        assert got == pytest.approx(set_kbps, rel=0.08)
    # and monotonically: higher cap, higher throughput
    measured = [got for _, got in points]
    assert measured == sorted(measured)
