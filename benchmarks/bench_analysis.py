"""Compile-cache benchmark: folded-AST evaluation vs the seed pipeline.

The wizard answers every request by evaluating the requirement against
each server's status record.  The seed pipeline re-parsed the text on
every request; the analysis pipeline compiles once (analyze +
constant-fold) into an LRU cache and evaluates the folded AST.  This
benchmark measures three paths over a synthetic status DB:

* ``parse_every_time``  — seed behaviour: ``parse(text)`` then evaluate
  the raw AST against every record, once per request;
* ``cached_folded``     — ``CompileCache.get_or_compile`` then evaluate
  the folded AST (first request misses, the rest hit);
* ``static_reject``     — a provably-unsatisfiable requirement: the seed
  path scans the whole DB, the analysis path NAKs on a cache lookup.

Writes ``benchmarks/results/BENCH_analysis.json``.  The acceptance bar:
``cached_folded`` must be no slower than ``parse_every_time`` for
repeated requests (it skips the parser entirely and evaluates fewer
nodes), and ``static_reject`` must be orders of magnitude faster.

Run with ``PYTHONPATH=src python benchmarks/bench_analysis.py``.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from compare import report_drift

from repro.lang import evaluate, parse
from repro.lang.analysis import CompileCache

RESULTS = Path(__file__).parent / "results" / "BENCH_analysis.json"

#: Table 5.3/5.4/5.6-shaped requirements — what real clients send
REQUIREMENTS = [
    "(host_cpu_bogomips > 4000) && (host_cpu_free > 0.9) && (host_memory_free > 5)",
    "((host_cpu_bogomips > 4000) || (host_cpu_bogomips < 2000)) && "
    "(host_cpu_free > 0.9) && (host_memory_free > 5)",
    "(host_cpu_free > 0.9) && (host_memory_free > 5) && (host_system_load1 < 0.5)",
    "host_memory_used <= 250*1024*1024\nhost_cpu_free > 0.5",
]
UNSATISFIABLE = "(host_cpu_free > 2) && (host_memory_free > 5)"

N_RECORDS = 60           # the wizard's hard reply cap is 60 hosts
N_REQUESTS = 200         # repeated requests per requirement text
N_TRIALS = 5


def synthetic_db(n: int) -> list[dict[str, float]]:
    records = []
    for i in range(n):
        records.append({
            "host_cpu_free": (i % 10) / 10.0,
            "host_cpu_bogomips": 1500.0 + 60.0 * i,
            "host_memory_free": float(i % 32),
            "host_memory_used": float(i) * 8 * 1024 * 1024,
            "host_system_load1": (i % 7) / 4.0,
        })
    return records


def time_parse_every_time(reqs, db, n_requests) -> float:
    t0 = time.perf_counter()
    for _ in range(n_requests):
        for text in reqs:
            program = parse(text)
            for params in db:
                evaluate(program, params)
    return time.perf_counter() - t0


def time_cached_folded(reqs, db, n_requests) -> tuple[float, CompileCache]:
    cache = CompileCache(maxsize=64)
    t0 = time.perf_counter()
    for _ in range(n_requests):
        for text in reqs:
            compiled = cache.get_or_compile(text)
            if compiled.unsatisfiable or compiled.parse_failed:
                continue
            for params in db:
                evaluate(compiled.folded, params)
    return time.perf_counter() - t0, cache


def check_equivalence(reqs, db) -> None:
    """The folded AST must qualify exactly the same records."""
    cache = CompileCache()
    for text in reqs:
        program = parse(text)
        folded = cache.get_or_compile(text).folded
        for params in db:
            a = evaluate(program, params)
            b = evaluate(folded, params)
            assert a.qualified == b.qualified, (text, params)


def main() -> None:
    db = synthetic_db(N_RECORDS)
    check_equivalence(REQUIREMENTS, db)

    seed_trials, cached_trials = [], []
    for _ in range(N_TRIALS):
        seed_trials.append(
            time_parse_every_time(REQUIREMENTS, db, N_REQUESTS))
        elapsed, cache = time_cached_folded(REQUIREMENTS, db, N_REQUESTS)
        cached_trials.append(elapsed)

    # static-reject fast path: same request volume, unsatisfiable text
    reject_seed = min(
        time_parse_every_time([UNSATISFIABLE], db, N_REQUESTS)
        for _ in range(N_TRIALS))
    reject_cached = min(
        time_cached_folded([UNSATISFIABLE], db, N_REQUESTS)[0]
        for _ in range(N_TRIALS))

    seed_s = statistics.median(seed_trials)
    cached_s = statistics.median(cached_trials)
    result = {
        "n_records": N_RECORDS,
        "n_requests_per_requirement": N_REQUESTS,
        "n_requirements": len(REQUIREMENTS),
        "trials": N_TRIALS,
        "parse_every_time_s": round(seed_s, 4),
        "cached_folded_s": round(cached_s, 4),
        "speedup": round(seed_s / cached_s, 3),
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
        "static_reject": {
            "seed_full_scan_s": round(reject_seed, 4),
            "cached_nak_s": round(reject_cached, 6),
            "speedup": round(reject_seed / max(reject_cached, 1e-9), 1),
        },
        "cached_no_slower": cached_s <= seed_s * 1.05,
    }
    report_drift(result, RESULTS)
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    assert result["cached_no_slower"], (
        f"compile-cache path regressed: {cached_s:.4f}s vs seed {seed_s:.4f}s")


if __name__ == "__main__":
    main()
