"""Performance of the simulation substrate itself.

Not a thesis artefact — these benchmarks guard the property that makes the
reproduction *usable*: a full testbed experiment must run in seconds.
They use pytest-benchmark's statistics properly (multiple rounds) since,
unlike the experiment regenerations, these are micro-benchmarks.
"""

from __future__ import annotations

from repro.host import CPU
from repro.net import MBPS, Network, NetworkStack
from repro.sim import Simulator, Store


def pump_timeouts(n: int) -> float:
    sim = Simulator()

    def ticker():
        for _ in range(n):
            yield sim.timeout(0.001)

    sim.process(ticker())
    sim.run()
    return sim.now


def test_kernel_event_throughput(benchmark):
    """One process cycling through timeouts: pure kernel overhead."""
    n = 20_000
    benchmark.pedantic(lambda: pump_timeouts(n), rounds=5, iterations=1)
    # sanity: ~2 events per timeout; keep a generous floor so CI noise
    # doesn't flake — the real figure is >100k events/s
    assert benchmark.stats.stats.mean < n / 20_000  # <50 µs per timeout


def test_store_handoff_throughput(benchmark):
    n = 10_000

    def run():
        sim = Simulator()
        store = Store(sim)

        def producer():
            for i in range(n):
                store.put(i)
                yield sim.timeout(0)

        def consumer():
            for _ in range(n):
                yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_udp_datagram_cost(benchmark):
    """End-to-end cost per datagram across one switch (2 hops)."""
    n = 2_000

    def run():
        sim = Simulator()
        net = Network(sim)
        a = net.add_host("a")
        r = net.add_router("r")
        b = net.add_host("b")
        net.connect(a, r, rate_bps=1000 * MBPS)
        net.connect(r, b, rate_bps=1000 * MBPS)
        net.build_routes()
        sa = NetworkStack(sim, a, net)
        sb = NetworkStack(sim, b, net)
        inbox = sb.udp_socket(9)
        sock = sa.udp_socket()

        def sender():
            for i in range(n):
                sock.sendto("b", 9, size=512)
                yield sim.timeout(1e-5)

        sim.process(sender())
        sim.run()
        assert len(inbox.rx) + inbox.rx.dropped == n

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_processor_sharing_churn(benchmark):
    """Arrivals/departures force PS reschedules — the worst case for the
    analytic CPU."""
    n = 2_000

    def run():
        sim = Simulator()
        cpu = CPU(sim)

        def task(i):
            yield sim.timeout(i * 1e-4)
            yield cpu.run(1e-3)

        for i in range(n):
            sim.process(task(i))
        sim.run()
        assert cpu.completed_tasks == n

    benchmark.pedantic(run, rounds=3, iterations=1)
