"""Table 5.7 / Figure 5.4 — massd with 1 server: random vs Smart.

Paper setup: group-1 shaped to 6.72 Mbps, group-2 to 1.33 Mbps; random drew
pandora-x (the slow group) for 170 KB/s, the Smart library's
``monitor_network_bw > 6`` found lhost for 860 KB/s — a 5x throughput win.
"""

from __future__ import annotations

import pytest

from conftest import record
from repro.bench import MASSD_GROUP1, format_table, massd_experiment

PAPER = {"random1": 170.0, "smart": 860.0}


def test_massd_1v1(benchmark):
    arms = benchmark.pedantic(
        lambda: massd_experiment(
            group1_mbps=6.72, group2_mbps=1.33,
            requirement="monitor_network_bw > 6",
            n_servers=1,
            random_sets=[("pandora-x",)],
        ),
        rounds=1, iterations=1,
    )
    table = format_table(
        ["arm", "servers", "throughput KB/s", "paper KB/s"],
        [(a.label, ", ".join(a.servers), round(a.throughput_kbps, 1),
          PAPER[a.label]) for a in arms],
        title="Thesis Table 5.7 / Fig 5.4 — massd 1 vs 1 "
              "(group-1 6.72 Mbps, group-2 1.33 Mbps, 50000 KB by 100 KB)",
    )
    record("tab5_7_fig5_4", table)

    by = {a.label: a for a in arms}
    # the Smart pick comes from the fast group
    assert by["smart"].servers[0] in MASSD_GROUP1
    # throughputs sit at the shaped rates (KB/s = Mbps * 1e6/8/1024)
    assert by["smart"].throughput_kbps == pytest.approx(6.72e6 / 8 / 1024, rel=0.1)
    assert by["random1"].throughput_kbps == pytest.approx(1.33e6 / 8 / 1024, rel=0.1)
    # the paper's headline: ~5x better
    assert by["smart"].throughput_kbps > 4 * by["random1"].throughput_kbps
