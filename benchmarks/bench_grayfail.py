"""Gray-failure benchmark: adaptive vs fixed detection of fail-slow.

Runs the self-healing matmul job (2 sessions on the two-replica wizard
star) under *gray* faults — the injected server never dies, it just gets
sick while its health lease stays green:

* ``slow_server``   — the chosen worker's CPU is throttled 10x (it keeps
  heartbeating, so the binary lease detector never fires);
* ``degraded_link`` — the worker's access link gains 300 ms latency and
  3 % loss (sick but connected).

Each scenario runs two detector arms per seed: ``adaptive`` sessions arm
the phi-accrual throughput-floor watchdog and migrate off the sick
server proactively; ``fixed`` sessions have only the binary lease and
ride it to the end of the job.  *Job slowdown* is each run's elapsed
time over its own same-seed, same-arm no-fault baseline; the headline
criterion is that the adaptive arm's excess slowdown is at least 2x
lower than the fixed arm's on every run, with the adaptive
time-to-demote (fault injection -> first watchdog migration) reported
alongside.

The metrics are pure simulation time, so the JSON artefact
(``benchmarks/results/BENCH_grayfail.json``) is deterministic and later
PRs can diff it to track the detector's reaction time.

Run with ``PYTHONPATH=src python benchmarks/bench_grayfail.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

from compare import report_drift

from repro.bench.experiments import (
    GRAYFAIL_DETECTORS,
    grayfail_experiment,
)

RESULTS = Path(__file__).parent / "results" / "BENCH_grayfail.json"

SEEDS = (0, 1, 2)
FAULTS = ("slow_server", "degraded_link")

#: the acceptance bar: adaptive excess slowdown at least this many times
#: smaller than fixed on every seed of every scenario
ADVANTAGE_FLOOR = 2.0


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of a small sample."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[rank]


def main() -> dict:
    # the watchdog config changes the event schedule, so each detector
    # arm is judged against its *own* same-seed no-fault baseline
    baselines = {
        (detector, seed): grayfail_experiment("none", detector, seed=seed)
        for detector in GRAYFAIL_DETECTORS
        for seed in SEEDS
    }
    scenarios = {}
    for fault in FAULTS:
        arms = {}
        for detector in GRAYFAIL_DETECTORS:
            runs = []
            for seed in SEEDS:
                arm = grayfail_experiment(fault, detector, seed=seed)
                base = baselines[(detector, seed)]
                runs.append({
                    "seed": seed,
                    "elapsed_s": round(arm.elapsed, 3),
                    "baseline_s": round(base.elapsed, 3),
                    "slowdown": round(arm.elapsed / base.elapsed, 3),
                    "excess_s": round(arm.elapsed - base.elapsed, 3),
                    "time_to_demote_s": round(arm.time_to_demote, 3),
                    "slow_migrations": arm.slow_migrations,
                    "lease_expiries": arm.lease_expiries,
                    "failovers": arm.failovers,
                    "requeued_blocks": arm.requeued_blocks,
                })
            slowdowns = [r["slowdown"] for r in runs]
            demotes = [r["time_to_demote_s"] for r in runs
                       if r["time_to_demote_s"] >= 0]
            arms[detector] = {
                "runs": runs,
                "slowdown_p50": round(_percentile(slowdowns, 0.50), 3),
                "slowdown_p95": round(_percentile(slowdowns, 0.95), 3),
                "time_to_demote_p50_s": (
                    round(_percentile(demotes, 0.50), 3) if demotes else -1.0
                ),
            }
        # per-seed advantage: excess slowdown fixed / adaptive (the
        # binary detector never migrates, so its excess is the gray
        # fault's full price; inf-safe via a tiny floor on adaptive)
        advantages = []
        per_seed = []
        for fixed_run, adaptive_run in zip(arms["fixed"]["runs"],
                                           arms["adaptive"]["runs"]):
            fixed_x = fixed_run["slowdown"] - 1.0
            adaptive_x = adaptive_run["slowdown"] - 1.0
            advantage = fixed_x / max(adaptive_x, 1e-3)
            advantages.append(advantage)
            per_seed.append({
                "seed": fixed_run["seed"],
                "fixed_excess": round(fixed_x, 3),
                "adaptive_excess": round(adaptive_x, 3),
                "advantage": round(advantage, 1),
                "met": advantage >= ADVANTAGE_FLOOR,
            })
        scenarios[fault] = {
            "detectors": arms,
            "advantage": per_seed,
            "advantage_min": round(min(advantages), 1),
            "all_met": all(p["met"] for p in per_seed),
        }
    report = {
        "scenario": "self-healing matmul 2v2 under gray faults "
                    "(fail-slow server / degraded link, lease stays green)",
        "baselines_s": {
            f"{detector}/seed{seed}": round(arm.elapsed, 3)
            for (detector, seed), arm in baselines.items()
        },
        "scenarios": scenarios,
        "criterion": (
            f"adaptive excess slowdown >= {ADVANTAGE_FLOOR}x lower than "
            "fixed on every seed of every scenario"
        ),
        "criterion_met": all(s["all_met"] for s in scenarios.values()),
    }
    RESULTS.parent.mkdir(exist_ok=True)
    report_drift(report, RESULTS)
    RESULTS.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    return report


if __name__ == "__main__":
    main()
