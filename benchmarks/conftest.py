"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table/figure of the thesis' evaluation,
prints it in the paper's row/series format and writes it to
``benchmarks/results/<name>.txt`` so the artefacts survive pytest's output
capture.  Shape assertions (who wins, by roughly what factor, where the
knees fall) make each benchmark a regression test for the reproduction.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def record(name: str, text: str) -> None:
    """Persist + print one benchmark's report."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


def matmul_report(name: str, title: str, arms, paper: dict) -> str:
    """Render one Tables-5.3–5.6-style comparison and persist it.

    ``paper`` maps arm label -> (server list string, seconds).
    """
    from repro.bench import format_table

    by_label = {a.label: a for a in arms}
    rows = []
    for label, (paper_servers, paper_s) in paper.items():
        arm = by_label[label]
        rows.append((
            label, ", ".join(arm.servers), round(arm.elapsed, 2),
            paper_servers, paper_s,
        ))
    random_t = by_label["random"].elapsed
    smart_t = by_label["smart"].elapsed
    improvement = 100 * (random_t - smart_t) / random_t
    paper_imp = 100 * (paper["random"][1] - paper["smart"][1]) / paper["random"][1]
    table = format_table(
        ["arm", "servers (measured)", "time_s", "servers (paper)", "paper_s"],
        rows,
        title=title,
    )
    table += (f"\nimprovement: measured {improvement:.1f}% "
              f"vs paper {paper_imp:.1f}%")
    record(name, table)
    return table
