"""Chaos explorer: invariant oracles, ddmin shrinker, seeded search and
corpus replay.  The expensive end-to-end checks (200-trial sweeps, full
corpus gates) live in CI; these tests pin the machinery."""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.faults.explore import (
    Counterexample,
    ddmin,
    explore,
    generate_plan,
    load_corpus,
    plan_coverage,
    replay_counterexample,
    shrink_plan,
    write_counterexample,
)
from repro.faults.invariants import TrialOutcome, check_all, invariant_names
from repro.faults.plan import FaultPlan
from repro.faults.scenarios import SCENARIOS, fault_surface, run_trial

CORPUS = Path(__file__).parent / "corpus"


def _outcome(**kw) -> TrialOutcome:
    """A clean, completed trial; override fields to trip one oracle."""
    base = dict(
        scenario="matmul", world_seed=0, completed=True, deadline=100.0,
        end_time=10.0, elapsed=4.0, fingerprint="abc",
        oracle_fingerprint="abc", blocks_done=160, blocks_total=160,
        requeued=2, failovers=1, session_failovers=1,
    )
    base.update(kw)
    return TrialOutcome(**base)


class TestInvariants:
    def test_clean_outcome_has_no_violations(self):
        assert check_all(_outcome()) == []

    def test_registry_order_is_verdict_order(self):
        names = invariant_names()
        assert names[0] == "safety.no-crash"
        assert names[-1] == "liveness.deadline"

    def test_result_fingerprint_mismatch(self):
        (v,) = check_all(_outcome(fingerprint="beef"))
        assert v.fingerprint == "safety.result-fingerprint@result"

    def test_lost_and_duplicated_blocks(self):
        (v,) = check_all(_outcome(blocks_done=159))
        assert v.site == "blocks.lost"
        (v,) = check_all(_outcome(blocks_done=161))
        assert v.site == "blocks.duplicated"

    def test_corpse_rehire_flagged_not_cross_session_exclusion(self):
        (v,) = check_all(_outcome(rehired_corpses=["10.0.1.4:9000"]))
        assert v.invariant == "safety.lease-owner"
        assert v.site == "session.rehire"
        # a sibling's pessimistic exclusion racing a re-adoption is
        # documented telemetry, not an ownership violation
        assert check_all(_outcome(live_on_excluded=["10.0.1.4:9000"])) == []

    def test_telemetry_counters(self):
        (v,) = check_all(_outcome(slow_migrations=-1))
        assert v.site == "negative"
        (v,) = check_all(_outcome(failovers=3, session_failovers=3))
        assert v.site == "failovers>requeued"
        (v,) = check_all(_outcome(session_failovers=2))
        assert v.site == "failover-counters"

    def test_deadline_only_without_result_or_crash(self):
        (v,) = check_all(_outcome(completed=False, fingerprint=""))
        assert v.invariant == "liveness.deadline"
        assert check_all(_outcome(completed=False, fingerprint="",
                                  all_slots_dead=True)) == []
        vs = check_all(_outcome(completed=False, fingerprint="",
                                exception="KeyError: 'boom'",
                                exc_site="core.client.call"))
        # a crash reports once, at its site — not additionally as a miss
        assert [v.fingerprint for v in vs] == \
            ["safety.no-crash@core.client.call"]

    def test_outcome_round_trips_as_plain_data(self):
        o = _outcome(live_on_excluded=["a"], chaos_applied=7)
        data = json.loads(json.dumps(o.to_dict()))
        assert TrialOutcome.from_dict(data) == o


class TestGeneratorCoverage:
    def test_generated_plans_stay_on_surface(self):
        spec = SCENARIOS["grayfail"]
        surface = fault_surface(spec)
        hosts = set(surface["hosts"]) | {a for a, _ in surface["links"]} | \
            {b for _, b in surface["links"]}
        for seed in range(10):
            rng = random.Random(seed)
            plan = generate_plan(rng, spec, surface)
            for event in plan:
                assert event.target in hosts

    def test_coverage_buckets_by_phase(self):
        spec = SCENARIOS["matmul"]
        plan = (FaultPlan()
                .crash_host(1.0, "s0")          # before request_at=6.0
                .loss_burst(8.0, "s1", 0.3, 2.0)  # mid-stream
                .crash_host(60.0, "s2"))          # tail
        cells = plan_coverage(plan, spec, oracle_elapsed=3.0)
        assert ("crash-host", "setup") in cells
        assert ("loss-burst", "stream") in cells
        assert ("crash-host", "tail") in cells


class TestShrinker:
    def test_ddmin_finds_two_element_core(self):
        result = ddmin(list(range(10)), lambda xs: 3 in xs and 7 in xs)
        assert sorted(result) == [3, 7]

    def test_ddmin_single_element(self):
        assert ddmin(list(range(32)), lambda xs: 5 in xs) == [5]

    def test_shrink_reaches_known_one_event_minimum(self):
        """Synthetic failing predicate whose minimal plan is one event:
        ddmin must reach it and the result must still satisfy it."""
        spec = SCENARIOS["matmul"]
        plan = generate_plan(random.Random(3), spec, fault_surface(spec))
        plan.crash_host(2.0, "s0")

        def failing(p: FaultPlan) -> bool:
            return any(e.kind == "crash-host" and e.target == "s0"
                       for e in p)

        assert failing(plan) and len(plan) > 4
        small, runs = shrink_plan(plan, failing)
        (event,) = small.events()
        assert (event.kind, event.target) == ("crash-host", "s0")
        assert failing(small)  # the minimum re-verifies
        assert 0 < runs <= 160

    def test_shrink_budget_exhaustion_still_returns_failing_plan(self):
        spec = SCENARIOS["matmul"]
        plan = generate_plan(random.Random(3), spec, fault_surface(spec))
        plan.crash_host(2.0, "s0")

        def failing(p: FaultPlan) -> bool:
            return any(e.kind == "crash-host" and e.target == "s0"
                       for e in p)

        small, runs = shrink_plan(plan, failing, budget=3)
        assert failing(small)
        assert runs <= 3


class TestExplore:
    def test_seeded_search_finds_and_shrinks_the_mutant(self):
        """Acceptance in miniature: with seed 0 the drop-checkpoint
        mutant falls at trial 0 on matmul, and the shrinker gets the
        plan to <= 25% of its original events."""
        report = explore(budget=2, seed=0, scenarios=["matmul"],
                         mutant="drop-checkpoint")
        assert report.found
        ce = report.counterexample
        assert ce is not None and ce.trial == 0
        assert ce.invariant == "safety.result-fingerprint"
        before = report.shrink["original_events"]
        after = report.shrink["shrunk_events"]
        assert after * 4 <= before
        assert report.shrink["reverified"] == report.shrink["of"]
        # the shrunk plan is byte-identical to the committed corpus
        # artifact found by the full-budget CI search (same seed, same
        # first violating trial -> same minimum)
        assert (CORPUS / f"{ce.name}.json").exists()

    def test_rejects_unknown_scenario_and_mutant(self):
        with pytest.raises(ValueError, match="scenario"):
            explore(budget=1, scenarios=["nope"])
        with pytest.raises(ValueError, match="mutant"):
            explore(budget=1, mutant="nope")


class TestCorpus:
    def test_committed_corpus_loads_and_validates(self):
        corpus = load_corpus(str(CORPUS))
        assert len(corpus) >= 2
        for _path, ce in corpus:
            assert ce.invariant in invariant_names()
            assert FaultPlan.from_json(ce.plan).events()
            assert ce.mutant == "drop-checkpoint"

    def test_counterexample_write_read_round_trip(self, tmp_path):
        _, ce = load_corpus(str(CORPUS))[0]
        path = write_counterexample(ce, str(tmp_path))
        clone = Counterexample.from_dict(json.loads(Path(path).read_text()))
        assert clone == ce
        assert Path(path).stem == ce.name

    def test_corpus_version_gate(self):
        _, ce = load_corpus(str(CORPUS))[0]
        data = ce.to_dict()
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            Counterexample.from_dict(data)

    def test_replay_reproduces_and_is_byte_stable(self):
        """Dual trace runs hash identically and the recorded invariant
        trips again — the corpus CE replays exactly."""
        _, ce = load_corpus(str(CORPUS))[0]
        result = replay_counterexample(ce)
        assert result["stable"], "trace hashes differ between runs"
        assert result["reproduced"], "recorded violation did not recur"

    def test_replay_is_clean_on_healthy_build(self):
        _, ce = load_corpus(str(CORPUS))[0]
        result = replay_counterexample(ce, mutant="", runs=1)
        assert result["clean"], "healthy build trips the mutant's CE"


class TestTrialHarness:
    def test_oracle_trial_completes_bit_exact(self):
        a = run_trial("matmul", {})
        b = run_trial("matmul", {})
        assert a.completed and a.fingerprint
        assert (a.fingerprint, a.elapsed) == (b.fingerprint, b.elapsed)

    def test_mutant_changes_nothing_without_faults(self):
        healthy = run_trial("matmul", {})
        mutant = run_trial("matmul", {}, mutant="drop-checkpoint")
        assert mutant.fingerprint == healthy.fingerprint

    def test_all_slots_dead_is_loud_but_not_a_violation(self):
        plan = FaultPlan()
        for i in range(6):
            plan.crash_host(1.0 + 0.1 * i, f"s{i}")
        outcome = run_trial("matmul", plan.to_json(), deadline=60.0,
                            oracle_fingerprint="whatever")
        assert outcome.all_slots_dead and not outcome.completed
        assert check_all(outcome) == []
