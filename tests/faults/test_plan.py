"""Unit tests for the declarative fault plan."""

from __future__ import annotations

import random

import pytest

from repro.faults import (
    DAEMON_ROLES,
    FAULT_KINDS,
    GRAY_KINDS,
    FaultEvent,
    FaultPlan,
)


class TestFaultEvent:
    def test_rejects_negative_time(self):
        with pytest.raises(ValueError, match="fault time"):
            FaultEvent(-1.0, "crash-host", "a")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(0.0, "set-on-fire", "a")

    def test_rejects_unknown_daemon_role(self):
        with pytest.raises(ValueError, match="unknown daemon role"):
            FaultEvent(0.0, "kill-daemon", "a", peer="cron")

    def test_rejects_bad_loss_rate(self):
        with pytest.raises(ValueError, match="loss rate"):
            FaultEvent(0.0, "loss-burst", "a", value=1.5, duration=1.0)

    def test_describe_is_readable(self):
        ev = FaultEvent(1.0, "kill-daemon", "mon", peer="sysmon")
        assert ev.describe() == "kill-daemon sysmon@mon"


class TestFaultPlan:
    def test_builders_chain_and_sort(self):
        plan = (FaultPlan()
                .crash_host(9.0, "b")
                .crash_host(3.0, "a")
                .restart_host(5.0, "a"))
        assert [e.at for e in plan.events()] == [3.0, 5.0, 9.0]
        assert plan.events()[0].target == "a"

    def test_ties_keep_insertion_order(self):
        plan = FaultPlan().crash_host(2.0, "x").crash_host(2.0, "y")
        assert [e.target for e in plan.events()] == ["x", "y"]

    def test_partition_adds_heal(self):
        plan = FaultPlan().partition(4.0, "a", "b", duration=10.0)
        kinds = [(e.at, e.kind) for e in plan.events()]
        assert kinds == [(4.0, "link-down"), (14.0, "link-up")]

    def test_partition_without_duration_stays_down(self):
        plan = FaultPlan().partition(4.0, "a", "b")
        assert [e.kind for e in plan.events()] == ["link-down"]

    def test_flap_expands_to_cycles(self):
        plan = FaultPlan().flap_link(10.0, "a", "b", period=2.0, count=3)
        events = plan.events()
        assert len(events) == 6
        assert [e.kind for e in events] == ["link-down", "link-up"] * 3
        assert events[-1].at == pytest.approx(15.0)

    def test_horizon_covers_burst_tail(self):
        plan = FaultPlan().loss_burst(5.0, "a", 0.5, duration=7.0)
        assert plan.horizon == pytest.approx(12.0)

    def test_kill_needs_known_role(self):
        plan = FaultPlan()
        for role in DAEMON_ROLES:
            plan.kill_daemon(1.0, "m", role)
        assert len(plan) == len(DAEMON_ROLES)

    def test_exported_taxonomy_is_closed(self):
        assert {e.kind for e in FaultPlan()
                .crash_host(0, "a").restart_host(1, "a")
                .partition(0, "a", "b", duration=1)
                .kill_daemon(0, "a", "sysmon").restart_daemon(1, "a", "sysmon")
                .loss_burst(0, "a", 0.5, 1).events()} <= FAULT_KINDS


class TestRandomPlan:
    def test_same_seed_same_plan(self):
        kwargs = dict(horizon=60.0, hosts=["a", "b"],
                      links=[("x", "y")], daemons=[("m", "sysmon")])
        p1 = FaultPlan.random_plan(random.Random(42), **kwargs)
        p2 = FaultPlan.random_plan(random.Random(42), **kwargs)
        assert p1.events() == p2.events()

    def test_different_seed_different_plan(self):
        kwargs = dict(horizon=60.0, hosts=["a", "b"])
        p1 = FaultPlan.random_plan(random.Random(1), **kwargs)
        p2 = FaultPlan.random_plan(random.Random(2), **kwargs)
        assert p1.events() != p2.events()

    def test_every_outage_is_paired_with_recovery(self):
        plan = FaultPlan.random_plan(
            random.Random(7), horizon=100.0, hosts=["a", "b", "c"],
            links=[("x", "y")], daemons=[("m", "transmitter")], n_events=12,
        )
        crashes = sum(1 for e in plan if e.kind == "crash-host")
        restarts = sum(1 for e in plan if e.kind == "restart-host")
        downs = sum(1 for e in plan if e.kind == "link-down")
        ups = sum(1 for e in plan if e.kind == "link-up")
        kills = sum(1 for e in plan if e.kind == "kill-daemon")
        relaunches = sum(1 for e in plan if e.kind == "restart-daemon")
        assert crashes == restarts
        assert downs == ups
        assert kills == relaunches

    def test_events_inside_horizon(self):
        plan = FaultPlan.random_plan(
            random.Random(3), horizon=50.0, hosts=["a"], n_events=10)
        assert all(0 <= e.at <= 50.0 for e in plan)


class TestGrayEvents:
    """Validation + describe() of the degradation fault kinds."""

    def test_gray_kinds_are_registered(self):
        assert GRAY_KINDS <= FAULT_KINDS
        assert GRAY_KINDS == {"slow-host", "degrade-link", "skew-clock"}

    def test_slow_host_rejects_speedups(self):
        with pytest.raises(ValueError, match="slow factor"):
            FaultEvent(0.0, "slow-host", "a", value=0.5, duration=1.0)

    def test_degraded_faults_need_a_duration(self):
        for kind in ("slow-host", "degrade-link"):
            with pytest.raises(ValueError, match="duration"):
                FaultEvent(0.0, kind, "a", peer="b", value=2.0)

    def test_degrade_link_validates_params(self):
        with pytest.raises(ValueError, match="unknown degrade params"):
            FaultEvent(0.0, "degrade-link", "a", peer="b", duration=1.0,
                       params=(("bandwidth", 1.0),))
        with pytest.raises(ValueError, match="loss must be in"):
            FaultEvent(0.0, "degrade-link", "a", peer="b", duration=1.0,
                       params=(("loss", 1.5),))
        with pytest.raises(ValueError, match="latency must be >= 0"):
            FaultEvent(0.0, "degrade-link", "a", peer="b", duration=1.0,
                       params=(("latency", -0.1),))

    def test_direction_is_per_kind(self):
        FaultEvent(0.0, "loss-burst", "a", value=0.5, duration=1.0,
                   direction="tx")
        FaultEvent(0.0, "degrade-link", "a", peer="b", duration=1.0,
                   direction="rev")
        with pytest.raises(ValueError, match="bad direction"):
            FaultEvent(0.0, "loss-burst", "a", value=0.5, duration=1.0,
                       direction="fwd")
        with pytest.raises(ValueError, match="bad direction"):
            FaultEvent(0.0, "crash-host", "a", direction="tx")

    def test_describe_is_readable(self):
        plan = (FaultPlan()
                .slow_host(1.0, "s0", factor=8.0, duration=30.0)
                .degrade_link(2.0, "s0", "sw", duration=5.0,
                              direction="fwd", latency=0.25, loss=0.1)
                .skew_clock(3.0, "mon", offset=-45.0, drift=0.01)
                .loss_burst(4.0, "s1", 0.5, 2.0, direction="rx"))
        texts = [e.describe() for e in plan.events()]
        assert texts[0] == "slow-host s0 x8 for 30s"
        assert texts[1] == "degrade-link s0->sw latency=0.25 loss=0.1 for 5s"
        assert texts[2] == "skew-clock mon offset=-45s drift=0.01"
        assert texts[3] == "loss-burst s1 [rx] p=0.5 for 2s"

    def test_gray_failure_storm_compound(self):
        plan = FaultPlan().gray_failure_storm(
            10.0, duration=20.0, slow_host="s0", link=("s0", "sw"),
            skew_host="mon", skew_offset=60.0)
        kinds = [e.kind for e in plan.events()]
        assert kinds == ["slow-host", "degrade-link", "skew-clock"]
        assert all(e.at == 10.0 for e in plan.events())
        link_event = plan.events()[1]
        assert link_event.direction == "fwd"  # asymmetric by default
        assert plan.events()[2].duration == 20.0  # the skew steps back

    def test_gray_failure_storm_needs_a_victim(self):
        with pytest.raises(ValueError, match="at least one victim"):
            FaultPlan().gray_failure_storm(0.0, duration=1.0)


class TestRandomPlanGray:
    KWARGS = dict(horizon=60.0, hosts=["a", "b"], links=[("x", "y")],
                  daemons=[("m", "sysmon")])

    def test_gray_plans_emit_gray_kinds(self):
        plan = FaultPlan.random_plan(
            random.Random(6), n_events=40, gray=True, **self.KWARGS)
        kinds = {e.kind for e in plan}
        assert kinds & GRAY_KINDS, f"no gray events in {kinds}"

    def test_non_gray_plans_never_do(self):
        plan = FaultPlan.random_plan(
            random.Random(6), n_events=40, **self.KWARGS)
        assert not {e.kind for e in plan} & GRAY_KINDS

    def test_gray_off_replays_legacy_plans_byte_identically(self):
        """The opt-in must not shift the draw sequence of existing seeded
        plans: this fingerprint was recorded before ``gray`` existed."""
        plan = FaultPlan.random_plan(random.Random(42), **self.KWARGS)
        head = [(e.kind, e.target, round(e.at, 6)) for e in plan.events()][:4]
        assert head == [
            ("loss-burst", "a", 4.048828),
            ("crash-host", "b", 10.365954),
            ("crash-host", "a", 17.823899),
            ("restart-host", "a", 21.583842),
        ]

    def test_gray_same_seed_same_plan(self):
        p1 = FaultPlan.random_plan(random.Random(9), gray=True, **self.KWARGS)
        p2 = FaultPlan.random_plan(random.Random(9), gray=True, **self.KWARGS)
        assert p1.events() == p2.events()


class TestRandomPlanProperties:
    """Property sweep over the generator: whatever it emits must
    validate, survive a JSON round-trip, and describe byte-identically
    across dual runs — the explorer's replay guarantee in miniature."""

    KWARGS = dict(
        horizon=30.0,
        hosts=[f"s{i}" for i in range(6)],
        links=[("s0", "sw-g1"), ("s3", "sw-g2"), ("sw-g1", "core")],
        daemons=[("s0", "worker"), ("s1", "lease"), ("s2", "probe")],
        n_events=8,
    )

    def _plan(self, seed: int, gray: bool) -> FaultPlan:
        return FaultPlan.random_plan(
            random.Random(seed), gray=gray, **self.KWARGS)

    @pytest.mark.parametrize("gray", [False, True])
    def test_generated_plans_validate_and_round_trip(self, gray):
        for seed in range(25):
            plan = self._plan(seed, gray)
            # from_json revalidates every event through FaultEvent
            clone = FaultPlan.from_json(plan.to_json())
            assert clone.events() == plan.events()
            assert clone.fingerprint() == plan.fingerprint()

    @pytest.mark.parametrize("gray", [False, True])
    def test_describe_is_byte_stable_across_dual_runs(self, gray):
        for seed in range(25):
            first = "\n".join(e.describe() for e in self._plan(seed, gray))
            second = "\n".join(e.describe() for e in self._plan(seed, gray))
            assert first == second
