"""FaultPlan JSON round-trip + golden fingerprints (corpus backbone)."""

import pytest

from repro.faults.plan import (
    FAULT_KINDS,
    PLAN_SCHEMA_VERSION,
    FaultEvent,
    FaultPlan,
)


def _kitchen_sink() -> FaultPlan:
    """Every event kind + params + three compound builders."""
    return (FaultPlan()
            .crash_host(5.0, "dione")
            .restart_host(40.0, "dione")
            .partition(12.0, "dalmatian", "sw-lab", duration=30.0)
            .kill_daemon(20.0, "mimas", "transmitter")
            .restart_daemon(25.0, "mimas", "transmitter")
            .loss_burst(8.0, "titan-x", 0.25, 4.0, direction="tx")
            .slow_host(9.0, "lhost", 6.0, 5.0)
            .skew_clock(10.0, "helene", 30.0, drift=0.01, duration=6.0)
            .degrade_link(11.0, "s0", "sw-g1", duration=3.0, direction="fwd",
                          latency=0.2, loss=0.02, jitter=0.01)
            .flap_link(14.0, "s1", "sw-g1", period=1.0, count=2)
            .gray_failure_storm(16.0, duration=2.0, slow_host="s2",
                                link=("s3", "sw-g2"), skew_host="s4"))


class TestRoundTrip:
    def test_identity_for_every_kind(self):
        plan = _kitchen_sink()
        assert {e.kind for e in plan} == FAULT_KINDS  # nothing untested
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.events() == plan.events()
        assert clone.fingerprint() == plan.fingerprint()

    def test_provenance_survives(self):
        plan = _kitchen_sink()
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.provenance == plan.provenance
        builders = [p["builder"] for p in plan.provenance]
        assert builders == ["partition", "flap_link", "gray_failure_storm"]

    def test_params_round_trip_exactly(self):
        plan = FaultPlan().degrade_link(
            1.0, "a", "b", duration=2.0, latency=0.123456789, jitter=0.01)
        (event,) = FaultPlan.from_json(plan.to_json()).events()
        assert event.param("latency") == 0.123456789
        assert event.param("jitter") == 0.01

    def test_json_is_pure_data(self):
        import json

        text = json.dumps(_kitchen_sink().to_json(), sort_keys=True)
        assert FaultPlan.from_json(json.loads(text)).events() == \
            _kitchen_sink().events()

    def test_event_dict_elides_defaults(self):
        data = FaultEvent(1.0, "crash-host", "a").to_dict()
        assert data == {"at": 1.0, "kind": "crash-host", "target": "a"}


class TestValidation:
    def test_version_checked(self):
        data = _kitchen_sink().to_json()
        data["version"] = PLAN_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            FaultPlan.from_json(data)

    def test_unknown_event_field_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultEvent.from_dict(
                {"at": 1.0, "kind": "crash-host", "target": "a", "boom": 1})

    def test_events_revalidated_on_load(self):
        data = _kitchen_sink().to_json()
        data["events"][0]["kind"] = "explode-host"
        with pytest.raises(ValueError):
            FaultPlan.from_json(data)


class TestGoldenFingerprint:
    """Pinned digests: serialization format changes must be deliberate
    (a changed golden breaks every committed corpus artifact)."""

    def test_kitchen_sink_fingerprint(self):
        assert _kitchen_sink().fingerprint() == "295c7a947e4d5e62"

    def test_fingerprint_ignores_provenance(self):
        with_prov = FaultPlan().partition(1.0, "a", "b", duration=2.0)
        bare = FaultPlan([
            FaultEvent(1.0, "link-down", "a", peer="b"),
            FaultEvent(3.0, "link-up", "a", peer="b"),
        ])
        assert with_prov.provenance and not bare.provenance
        assert with_prov.fingerprint() == bare.fingerprint()

    def test_fingerprint_sensitive_to_values(self):
        a = FaultPlan().crash_host(1.0, "x")
        b = FaultPlan().crash_host(1.000001, "x")
        assert a.fingerprint() != b.fingerprint()
