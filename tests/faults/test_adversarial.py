"""ChaosController under adversarial orderings (what the explorer's
random plan generator will throw at it): every operation must be a
logged no-op — never a crash — when its precondition does not hold."""

from __future__ import annotations

import pytest

from repro.faults import ChaosController, FaultPlan

from .conftest import build_failover_world, register_app_daemons


def _run(plan: FaultPlan, until: float = 30.0):
    """Execute one plan on the failover world; returns the chaos log."""
    cluster, dep, addrs, services, responders = build_failover_world()
    chaos = ChaosController(dep, plan)
    register_app_daemons(chaos, services, responders, "worker")
    chaos.start()
    cluster.run(until=until)
    return chaos


class TestAdversarialOrderings:
    def test_restart_of_never_crashed_host(self):
        chaos = _run(FaultPlan().restart_host(2.0, "s0"))
        assert any("restart-host s0" in msg for _, msg in chaos.log)
        assert "s0" not in chaos.down_hosts

    def test_double_crash_host(self):
        chaos = _run(FaultPlan().crash_host(2.0, "s0").crash_host(3.0, "s0"))
        assert "s0" in chaos.down_hosts

    def test_double_daemon_kill(self):
        plan = (FaultPlan()
                .kill_daemon(2.0, "s1", "worker")
                .kill_daemon(3.0, "s1", "worker"))
        chaos = _run(plan)
        assert any("already down" in msg for _, msg in chaos.log)
        assert ("s1", "worker") in chaos.down_daemons

    def test_link_up_on_up_link(self):
        chaos = _run(FaultPlan().link_up(2.0, "s0", "sw-g1"))
        assert any("link-up" in msg for _, msg in chaos.log)

    def test_kill_daemon_role_not_deployed(self):
        # no 'fileserver' daemon exists in the matmul world
        chaos = _run(FaultPlan().kill_daemon(2.0, "s0", "fileserver"))
        assert any("no such daemon" in msg for _, msg in chaos.log)
        assert ("s0", "fileserver") not in chaos.down_daemons

    def test_restart_daemon_never_killed(self):
        chaos = _run(FaultPlan().restart_daemon(2.0, "s2", "worker"))
        assert any("not restartable" in msg for _, msg in chaos.log)

    def test_link_ops_on_nonexistent_link(self):
        # s0 hangs off sw-g1; there is no s0<->sw-g2 link
        plan = (FaultPlan()
                .link_down(2.0, "s0", "sw-g2")
                .link_up(3.0, "s0", "sw-g2")
                .degrade_link(4.0, "s0", "sw-g2", duration=2.0, latency=0.1))
        chaos = _run(plan)
        notes = [msg for _, msg in chaos.log if "no such link" in msg]
        assert len(notes) == 3

    def test_kill_daemon_on_crashed_host(self):
        plan = (FaultPlan()
                .crash_host(2.0, "s3")
                .kill_daemon(3.0, "s3", "worker")
                .restart_host(5.0, "s3"))
        chaos = _run(plan)
        assert "s3" not in chaos.down_hosts  # restart still lands

    def test_gray_faults_on_crashed_host_are_noops(self):
        plan = (FaultPlan()
                .crash_host(2.0, "s4")
                .slow_host(3.0, "s4", 5.0, 2.0)
                .skew_clock(3.5, "s4", 20.0, duration=2.0)
                .loss_burst(4.0, "s4", 0.5, 2.0))
        chaos = _run(plan)
        assert "s4" in chaos.down_hosts  # and nothing raised

    def test_same_time_kill_restart_tie(self):
        plan = (FaultPlan()
                .kill_daemon(2.0, "s5", "worker")
                .restart_daemon(2.0, "s5", "worker"))
        chaos = _run(plan)
        # insertion order breaks the tie: kill then restart -> up again
        assert ("s5", "worker") not in chaos.down_daemons


class TestAdversarialFuzz:
    """Seeded random plans over a surface that includes *invalid*
    targets: whatever the generator produces, the controller must
    execute the whole plan without an exception."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_plans_with_bogus_targets_never_crash(self, seed):
        from repro.sim.rand import RandomStreams

        rng = RandomStreams(seed).stream("adversarial-fuzz")
        plan = FaultPlan.random_plan(
            rng, horizon=25.0,
            hosts=["s0", "s1", "nonesuch"],
            links=[("s0", "sw-g1"), ("s1", "sw-g2"), ("ghost", "core")],
            daemons=[("s0", "worker"), ("s1", "fileserver"),
                     ("nonesuch", "lease")],
            n_events=10, gray=True,
        )
        chaos = _run(plan)
        assert len(chaos.log) >= 10  # the whole plan executed
