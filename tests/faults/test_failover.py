"""HA acceptance suite: wizard-replica failover + self-healing sessions.

The ISSUE 5 acceptance criteria: a matmul 2v2 and a massd 1v1 job must
complete *correctly* (bit-exact product / every block fetched) while
chaos kills (a) the primary wizard replica, (b) one receiver feed, and
(c) a selected application server mid-run — with bounded recovery
(< 2x the no-fault wall time), bit-identical dual runs, and a clean
happens-before sanitizer report.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import MassdClient, MatMulMaster
from repro.core import smart_sessions
from repro.faults import ChaosController, FaultPlan
from tests.faults.conftest import (
    CHAOS_REQUIREMENT,
    build_failover_world,
    register_app_daemons,
)

pytestmark = pytest.mark.chaos

#: first client request goes out here (comfortably past warm-up)
REQUEST_AT = 6.0
#: matmul job sizing: 3x3 grid of 80x80 blocks, ~2 s of CPU per block
MATMUL_N = 240
MATMUL_BLK = 80
#: massd job sizing: 30 blocks of 100 KB at 8 Mbit/s per server
MASSD_DATA_KB = 3000
MASSD_BLK_KB = 100


def run_matmul_job(seed: int = 0, fault: str = "none", sanitize: bool = False):
    """Drive a 2-session matmul job to completion under one fault mode:
    ``none``, ``wizard`` (primary replica killed during the first
    request), ``server`` (chosen worker power-failed mid-stream) or
    ``partition`` (chosen worker silently cut off — lease-expiry path).
    """
    cluster, dep, addrs, services, responders = build_failover_world(
        seed=seed, sanitize=sanitize)
    name_of = {a: n for n, a in addrs.items()}
    rng = np.random.default_rng(3)
    a = rng.random((MATMUL_N, MATMUL_N))
    b = rng.random((MATMUL_N, MATMUL_N))
    out: dict = {"addrs": addrs}

    def arm_chaos(plan):
        chaos = ChaosController(dep, plan)
        register_app_daemons(chaos, services, responders, "worker")
        chaos.start()
        out["chaos"] = chaos

    if fault == "wizard":
        # both wizard + receiver die 0.2 s before the first request
        arm_chaos(FaultPlan().kill_wizard_during_request(
            REQUEST_AT - 0.2, "wiz"))

    def driver():
        yield cluster.sim.timeout(REQUEST_AT)
        client = dep.client_for(cluster.host("cli"))
        out["client"] = client
        sessions = yield from smart_sessions(
            client, CHAOS_REQUIREMENT, 2, mss=8192)
        out["sessions"] = sessions
        out["quarantined_wizards_at_connect"] = client.quarantined_wizards()
        if fault in ("server", "partition"):
            # the victim is only known now — plans use absolute times,
            # so arming the controller mid-run stays deterministic
            victim = name_of[sessions[0].addr]
            out["victim"] = sessions[0].addr
            if fault == "server":
                arm_chaos(FaultPlan().kill_server_mid_stream(
                    cluster.sim.now + 2.5, victim))
            else:
                uplink = "sw-g1" if victim in ("s0", "s1", "s2") else "sw-g2"
                arm_chaos(FaultPlan().partition(
                    cluster.sim.now + 2.5, victim, uplink))
        master = MatMulMaster(cluster.host("cli"))
        result = yield from master.run(
            sessions, n=MATMUL_N, blk=MATMUL_BLK, a=a, b=b)
        for s in sessions:
            s.close()
        out["result"] = result

    cluster.sim.process(driver(), name="matmul-job")
    cluster.run(until=60.0)
    assert "result" in out, f"matmul job never completed (fault={fault})"
    np.testing.assert_allclose(out["result"].product, a @ b)
    if sanitize:
        out["races"] = tuple(cluster.sanitizer.races)
    return out


class TestWizardKill:
    """(a) the primary wizard replica dies during the first request."""

    def test_matmul_completes_through_primary_wizard_kill(self):
        out = run_matmul_job(fault="wizard")
        client = out["client"]
        assert client.timeouts >= 1          # the request to wiz died
        assert client.wizard_failovers >= 1  # ...and failed over
        assert client.last_wizard == out["addrs"]["wiz2"]
        assert out["addrs"]["wiz"] in out["quarantined_wizards_at_connect"]
        kinds = [entry.split()[0] for _, entry in out["chaos"].log]
        assert kinds == ["kill-daemon", "kill-daemon"]
        assert out["result"].failovers == 0  # data plane was untouched


class TestReceiverKill:
    """(b) one receiver feed dies: its wizard must start NAKing stale
    and clients must migrate to the fresh replica."""

    def test_stale_replica_rejected_and_clients_migrate(self):
        cluster, dep, addrs, services, responders = build_failover_world()
        chaos = ChaosController(
            dep, FaultPlan().kill_daemon(8.0, "wiz", "receiver"))
        chaos.start()
        client = dep.client_for(cluster.host("cli"))
        log = []

        def poller():
            yield cluster.sim.timeout(REQUEST_AT)
            while cluster.sim.now < 25.0:
                reply = yield from client.request_servers(
                    CHAOS_REQUIREMENT, 2)
                log.append((cluster.sim.now, reply.wizard,
                            tuple(sorted(reply.servers))))
                yield cluster.sim.timeout(1.0)

        cluster.sim.process(poller(), name="failover-poller")
        cluster.run(until=27.0)
        # before the staleness limit trips, the primary answers normally
        early = [e for e in log if e[0] < 8.0]
        assert early and all(w == addrs["wiz"] for _, w, _ in early)
        # the frozen replica turned at least one request away...
        assert client.stale_rejections >= 1
        assert dep.replicas[0].wizard.requests_rejected_stale >= 1
        # ...and service continued uninterrupted on the fresh replica
        late = [e for e in log if e[0] >= 13.0]
        assert late
        for t, wizard, servers in late:
            assert wizard == addrs["wiz2"], f"stale replica used at t={t}"
            assert len(servers) == 2, f"degraded reply at t={t}: {servers}"


class TestServerKill:
    """(c) the chosen worker power-fails mid-stream: checkpoint + failover."""

    def test_matmul_server_kill_recovers_and_requeues(self):
        out = run_matmul_job(fault="server")
        result = out["result"]
        sessions = out["sessions"]
        assert result.requeued_blocks >= 1   # the in-flight shard came back
        assert result.failovers >= 1         # ...on a replacement server
        victim_session = sessions[0]
        assert victim_session.history[0] == out["victim"]
        assert victim_session.failovers >= 1
        assert out["victim"] in victim_session.excluded
        assert victim_session.addr != out["victim"]
        # the replacement actually did work
        assert result.blocks_per_server.get(victim_session.addr, 0) >= 1
        kinds = [entry.split()[0] for _, entry in out["chaos"].log]
        assert "crash-host" in kinds

    def test_massd_1v1_server_kill_fetches_every_block(self):
        cluster, dep, addrs, services, responders = build_failover_world(
            app="massd")
        name_of = {a: n for n, a in addrs.items()}
        out: dict = {}

        def driver():
            yield cluster.sim.timeout(REQUEST_AT)
            client = dep.client_for(cluster.host("cli"))
            sessions = yield from smart_sessions(
                client, CHAOS_REQUIREMENT, 1, mss=8192)
            out["sessions"] = sessions
            victim = name_of[sessions[0].addr]
            out["victim"] = sessions[0].addr
            chaos = ChaosController(dep, FaultPlan().kill_server_mid_stream(
                cluster.sim.now + 1.0, victim))
            register_app_daemons(chaos, services, responders, "fileserver")
            chaos.start()
            prog = MassdClient(cluster.host("cli"))
            result = yield from prog.run(
                sessions, data_kb=MASSD_DATA_KB, blk_kb=MASSD_BLK_KB)
            for s in sessions:
                s.close()
            out["result"] = result

        cluster.sim.process(driver(), name="massd-job")
        cluster.run(until=60.0)
        assert "result" in out, "massd job never completed"
        result = out["result"]
        # every block fetched exactly once across old + replacement server
        assert sum(result.blocks_per_server.values()) \
            == MASSD_DATA_KB // MASSD_BLK_KB
        assert result.requeued_blocks >= 1
        assert result.failovers == 1
        session = out["sessions"][0]
        assert session.history == [out["victim"], session.addr]
        assert session.addr != out["victim"]


class TestSilentDeath:
    """A partition delivers no RST: only the health lease can notice."""

    def test_lease_expiry_drives_failover(self):
        out = run_matmul_job(fault="partition")
        sessions = out["sessions"]
        assert sum(s.lease_expiries for s in sessions) >= 1
        assert out["result"].failovers >= 1
        assert out["result"].requeued_blocks >= 1
        assert out["victim"] in sessions[0].excluded


class TestRecoveryBound:
    def test_recovery_under_2x_no_fault_wall_time(self):
        base = run_matmul_job(fault="none")
        faulted = run_matmul_job(fault="server")
        assert base["result"].failovers == 0
        assert faulted["result"].elapsed < 2.0 * base["result"].elapsed, (
            f"recovery blew the budget: {faulted['result'].elapsed:.2f}s "
            f"vs no-fault {base['result'].elapsed:.2f}s"
        )


class TestDeterminism:
    def test_dual_run_bit_identical_with_failover(self):
        def fingerprint(out):
            r = out["result"]
            return (r.elapsed, r.blocks_per_server, r.requeued_blocks,
                    r.failovers, [s.history for s in out["sessions"]],
                    out["chaos"].log)

        first = fingerprint(run_matmul_job(seed=7, fault="server"))
        second = fingerprint(run_matmul_job(seed=7, fault="server"))
        assert first == second

    def test_sanitizer_clean_with_failover_enabled(self):
        out = run_matmul_job(fault="server", sanitize=True)
        assert out["races"] == ()
