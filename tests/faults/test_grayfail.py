"""Gray-failure acceptance suite: adaptive detection of fail-slow peers.

The ISSUE 6 acceptance criteria: under *gray* faults — a fail-slow
server (CPU throttled 8x, still heartbeating), an asymmetric sick link,
a skewed clock — a matmul 2v2 and a massd 1v1 job must still complete
*correctly* (bit-exact product / every block fetched).  The adaptive
detectors (the sessions' phi-accrual throughput-floor watchdog, the
client's RTT-baseline wizard demotion, the receiver's clock-skew
rebasing) must catch what the binary lease/timeout detectors of the HA
layer cannot: nothing in these scenarios ever *dies*.  Dual runs stay
bit-identical and the happens-before sanitizer stays clean.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.apps import MassdClient, MatMulMaster
from repro.core import smart_sessions
from repro.faults import ChaosController, FaultPlan
from tests.faults.conftest import (
    CHAOS_REQUIREMENT,
    GRAYFAIL_CONFIG,
    build_failover_world,
    register_app_daemons,
)

pytestmark = pytest.mark.chaos

#: first client request goes out here (comfortably past warm-up)
REQUEST_AT = 6.0
#: the gray fault lands this long after the sessions connect — ~2
#: healthy block cycles, so the watchdog has a learned progress baseline
FAULT_DELAY = 8.0
#: matmul job sizing: 4x4 grid of 80x80 blocks, ~2 s of CPU per block —
#: long enough that most of the job still lies ahead when the gray
#: fault lands, so riding the sick server is measurably expensive
MATMUL_N = 320
MATMUL_BLK = 80
#: massd job sizing: 30 blocks of 100 KB at 8 Mbit/s per server
MASSD_DATA_KB = 3000
MASSD_BLK_KB = 100
#: fail-slow service-time inflation (the 5-10x acceptance band)
SLOW_FACTOR = 8.0


def uplink_of(victim: str) -> str:
    """The group switch a server's access link hangs off."""
    return "sw-g1" if int(victim[1:]) < 3 else "sw-g2"


def run_matmul_gray(seed: int = 0, fault: str = "slow", watchdog: bool = True,
                    sanitize: bool = False):
    """Drive the 2-session matmul job to completion under one gray fault:
    ``none``, ``slow`` (chosen server throttled 8x for the rest of the
    job — it keeps heartbeating), or ``storm`` (the compound: fail-slow
    server + asymmetric sick link + skewed reporter clock at once).
    ``watchdog=False`` is the binary-detector baseline arm."""
    config = GRAYFAIL_CONFIG if watchdog \
        else replace(GRAYFAIL_CONFIG, session_watchdog_interval=0.0)
    cluster, dep, addrs, services, responders = build_failover_world(
        seed=seed, config=config, sanitize=sanitize)
    name_of = {a: n for n, a in addrs.items()}
    rng = np.random.default_rng(3)
    a = rng.random((MATMUL_N, MATMUL_N))
    b = rng.random((MATMUL_N, MATMUL_N))
    out: dict = {"addrs": addrs}

    def arm_chaos(plan):
        chaos = ChaosController(dep, plan)
        register_app_daemons(chaos, services, responders, "worker")
        chaos.start()
        out["chaos"] = chaos

    def driver():
        yield cluster.sim.timeout(REQUEST_AT)
        client = dep.client_for(cluster.host("cli"))
        out["client"] = client
        sessions = yield from smart_sessions(
            client, CHAOS_REQUIREMENT, 2, mss=8192)
        out["sessions"] = sessions
        if fault != "none":
            # the victim is only known now — plans use absolute times,
            # so arming the controller mid-run stays deterministic
            victim = name_of[sessions[0].addr]
            out["victim"] = sessions[0].addr
            fault_at = cluster.sim.now + FAULT_DELAY
            out["fault_at"] = fault_at
            if fault == "slow":
                plan = FaultPlan().slow_host(
                    fault_at, victim, factor=SLOW_FACTOR, duration=3600.0)
            else:  # storm: everything degrades at once, nothing dies
                plan = FaultPlan().gray_failure_storm(
                    fault_at, duration=3600.0,
                    slow_host=victim, slow_factor=SLOW_FACTOR,
                    link=(uplink_of(victim), "core"), latency=0.05,
                    loss=0.01, skew_host="mon1", skew_offset=120.0)
            arm_chaos(plan)
        master = MatMulMaster(cluster.host("cli"))
        result = yield from master.run(
            sessions, n=MATMUL_N, blk=MATMUL_BLK, a=a, b=b)
        for s in sessions:
            s.close()
        out["result"] = result

    cluster.sim.process(driver(), name="matmul-gray")
    cluster.run(until=400.0)
    assert "result" in out, f"matmul job never completed (fault={fault})"
    np.testing.assert_allclose(out["result"].product, a @ b)
    if sanitize:
        out["races"] = tuple(cluster.sanitizer.races)
    out["responders"] = responders
    out["name_of"] = name_of
    return out


class TestFailSlowServer:
    """The headline gray failure: a server that answers everything, 8x
    slower.  The lease never expires — only the throughput-floor
    watchdog can save the job."""

    def test_adaptive_detector_migrates_and_completes_bit_exact(self):
        out = run_matmul_gray(fault="slow")
        sessions = out["sessions"]
        victim = out["victim"]
        # the watchdog pulled the session off the sick server...
        assert sum(s.slow_migrations for s in sessions) >= 1
        assert out["result"].failovers >= 1
        assert out["result"].requeued_blocks >= 1
        assert victim in sessions[0].excluded
        assert sessions[0].addr != victim
        # ...even though the server was alive the whole time: the binary
        # detector (the lease) never fired
        assert sum(s.lease_expiries for s in sessions) == 0
        # the victim's responder really did keep heartbeating
        assert out["responders"][out["name_of"][victim]].pings_answered > 0
        # and the migration was logged for telemetry
        t, addr = sessions[0].watchdog_log[0]
        assert addr == victim and t >= out["fault_at"]

    def test_fixed_detector_rides_the_slow_server_to_the_end(self):
        """The baseline arm: without the watchdog nothing ever notices a
        leased-but-starving server, so the job pays the full throttle."""
        adaptive = run_matmul_gray(fault="slow", watchdog=True)
        fixed = run_matmul_gray(fault="slow", watchdog=False)
        assert sum(s.slow_migrations for s in fixed["sessions"]) == 0
        assert fixed["result"].failovers == 0
        # both complete bit-exact (asserted in the runner); the adaptive
        # arm escapes the sick server and is strictly faster
        assert adaptive["result"].elapsed < fixed["result"].elapsed

    def test_healthy_run_never_false_positives(self):
        out = run_matmul_gray(fault="none")
        assert sum(s.slow_migrations for s in out["sessions"]) == 0
        assert out["result"].failovers == 0
        assert out["result"].requeued_blocks == 0


class TestGrayStorm:
    """The compound: fail-slow server + degraded core link + skewed
    reporter clock, simultaneously.  Nothing dies; the job completes."""

    def test_storm_completes_bit_exact(self):
        out = run_matmul_gray(fault="storm")
        assert sum(s.slow_migrations for s in out["sessions"]) >= 1
        assert out["result"].failovers >= 1
        kinds = {entry.split()[0] for _, entry in out["chaos"].log}
        assert {"slow-host", "degrade-link", "skew-clock"} <= kinds


class TestMassd:
    """massd 1v1 under gray faults: every block fetched exactly once."""

    def run_massd(self, plan_for=None, seed: int = 0):
        cluster, dep, addrs, services, responders = build_failover_world(
            seed=seed, config=GRAYFAIL_CONFIG, app="massd")
        name_of = {a: n for n, a in addrs.items()}
        out: dict = {}

        def driver():
            yield cluster.sim.timeout(REQUEST_AT)
            client = dep.client_for(cluster.host("cli"))
            sessions = yield from smart_sessions(
                client, CHAOS_REQUIREMENT, 1, mss=8192)
            out["sessions"] = sessions
            victim = name_of[sessions[0].addr]
            out["victim"] = sessions[0].addr
            if plan_for is not None:
                chaos = ChaosController(
                    dep, plan_for(cluster.sim.now + 2.0, victim))
                register_app_daemons(chaos, services, responders,
                                     "fileserver")
                chaos.start()
            prog = MassdClient(cluster.host("cli"))
            result = yield from prog.run(
                sessions, data_kb=MASSD_DATA_KB, blk_kb=MASSD_BLK_KB)
            for s in sessions:
                s.close()
            out["result"] = result

        cluster.sim.process(driver(), name="massd-gray")
        cluster.run(until=400.0)
        assert "result" in out, "massd job never completed"
        # every block fetched exactly once across old + replacement server
        assert sum(out["result"].blocks_per_server.values()) \
            == MASSD_DATA_KB // MASSD_BLK_KB
        return out

    def test_fail_slow_server_fetches_every_block(self):
        """A CPU-throttled file server is not actually starved (massd is
        network-bound), so the watchdog correctly leaves it alone — the
        gray fault that *would* fool a naive load detector."""
        out = self.run_massd(lambda at, victim: FaultPlan().slow_host(
            at, victim, factor=SLOW_FACTOR, duration=3600.0))
        assert sum(s.slow_migrations for s in out["sessions"]) == 0
        assert out["result"].failovers == 0

    def test_starved_uplink_migrates_and_fetches_every_block(self):
        """An asymmetric sick uplink (only the server->switch direction
        degrades) starves the download while PINGs still flow: the
        watchdog must migrate before the binary lease ever would."""
        out = self.run_massd(lambda at, victim: FaultPlan().degrade_link(
            at, victim, uplink_of(victim), duration=3600.0,
            direction="fwd", latency=0.4, loss=0.1))
        assert out["result"].failovers >= 1
        assert out["result"].requeued_blocks >= 1
        assert out["victim"] in out["sessions"][0].excluded


class TestClockSkew:
    """Skewed clocks must degrade nobody: staleness is decided on
    relative epochs, reporter stamps are rebased, and a skewed-but-
    healthy replica keeps winning the ranking."""

    def poll_world(self, plan, until=26.0):
        cluster, dep, addrs, services, responders = build_failover_world(
            config=GRAYFAIL_CONFIG)
        chaos = ChaosController(dep, plan)
        chaos.start()
        client = dep.client_for(cluster.host("cli"))
        log = []

        def poller():
            yield cluster.sim.timeout(REQUEST_AT)
            while cluster.sim.now < until:
                reply = yield from client.request_servers(
                    CHAOS_REQUIREMENT, 2)
                log.append((cluster.sim.now, reply.wizard,
                            tuple(sorted(reply.servers))))
                yield cluster.sim.timeout(1.0)

        cluster.sim.process(poller(), name="skew-poller")
        cluster.run(until=until + 2.0)
        return cluster, dep, addrs, client, log

    def test_skewed_reporter_is_rebased_not_rejected(self):
        """A monitor host's clock jumps +300 s: its records would look
        5 minutes from the future.  The receiver rebases them, counts
        suspected_skew, and g1 servers keep qualifying."""
        cluster, dep, addrs, client, log = self.poll_world(
            FaultPlan().skew_clock(10.0, "mon1", offset=300.0))
        assert log, "no replies at all"
        late = [e for e in log if e[0] >= 14.0]
        assert late
        for t, _, servers in late:
            assert len(servers) == 2, f"degraded reply at t={t}: {servers}"
        assert client.stale_rejections == 0
        # both replicas flagged the skewed reporter
        assert all(r.receiver.suspected_skew >= 1 for r in dep.replicas)
        assert dep.replicas[0].wizard.suspected_skew >= 1

    def test_skewed_wizard_replica_is_not_deranked(self):
        """The *primary replica's* clock jumps +300 s: its advertised
        epoch is far in the future and host_status_age would be ~300 s
        without rebasing.  It must keep serving (no REPLY_STALE) and the
        client must keep ranking it first (freshness ages are relative,
        so skew offsets cancel)."""
        cluster, dep, addrs, client, log = self.poll_world(
            FaultPlan().skew_clock(10.0, "wiz", offset=300.0))
        late = [e for e in log if e[0] >= 14.0]
        assert late
        for t, wizard, servers in late:
            assert wizard == addrs["wiz"], f"skewed replica deranked at t={t}"
            assert len(servers) == 2, f"degraded reply at t={t}: {servers}"
        assert client.stale_rejections == 0
        assert dep.replicas[0].wizard.requests_rejected_stale == 0
        assert client.quarantined_wizards() == set()

    def test_skew_steps_back_after_duration(self):
        """A bounded skew is an NTP-style step: programmed at 10 s,
        corrected at 16 s."""
        cluster, dep, addrs, client, log = self.poll_world(
            FaultPlan().skew_clock(10.0, "mon2", offset=-200.0,
                                   duration=6.0))
        clock = cluster.host("mon2").clock
        assert not clock.skewed
        late = [e for e in log if e[0] >= 17.0]
        assert late and all(len(s) == 2 for _, _, s in late)


class TestDeterminism:
    def test_dual_run_bit_identical_under_gray_faults(self):
        def fingerprint(out):
            r = out["result"]
            return (r.elapsed, r.blocks_per_server, r.requeued_blocks,
                    r.failovers, [s.history for s in out["sessions"]],
                    [s.watchdog_log for s in out["sessions"]],
                    out["chaos"].log)

        first = fingerprint(run_matmul_gray(seed=7, fault="slow"))
        second = fingerprint(run_matmul_gray(seed=7, fault="slow"))
        assert first == second

    @pytest.mark.slow
    def test_sanitizer_clean_under_gray_faults(self):
        out = run_matmul_gray(fault="slow", sanitize=True)
        assert out["races"] == ()
