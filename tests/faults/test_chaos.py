"""The chaos acceptance suite: seeded faults against a live deployment.

The headline scenario (ISSUE 1 acceptance criteria): crash 2 of 6
servers, partition one whole group for 30 simulated seconds, and
kill+restart a transmitter — while a client polls the wizard once a
second.  The client must (a) never be handed a dead server once its
record expired, (b) recover full reply quality within
``probe_miss_limit * probe_interval + transmit_interval`` of the heal,
and (c) produce bit-identical logs for a fixed seed.
"""

from __future__ import annotations

import pytest

from repro.faults import ChaosController, FaultPlan
from tests.faults.conftest import (
    CHAOS_CONFIG,
    build_chaos_world,
    poll_replies,
)

pytestmark = pytest.mark.chaos

#: scenario timeline
CRASH_AT = 5.0
PARTITION_AT = 12.0
PARTITION_FOR = 30.0
HEAL_AT = PARTITION_AT + PARTITION_FOR
TX_KILL_AT = 20.0
TX_RESTART_AT = 25.0
HORIZON = 60.0

#: acceptance recovery budget after the heal
BUDGET = (CHAOS_CONFIG.probe_miss_limit * CHAOS_CONFIG.probe_interval
          + CHAOS_CONFIG.transmit_interval)
#: dead records are guaranteed expired and the expiry propagated by then
EXPIRY_DEADLINE = CRASH_AT + BUDGET + 1.0


def acceptance_plan() -> FaultPlan:
    return (FaultPlan()
            .crash_host(CRASH_AT, "s4")
            .crash_host(CRASH_AT, "s5")
            .partition(PARTITION_AT, "sw-g1", "core", duration=PARTITION_FOR)
            .kill_daemon(TX_KILL_AT, "mon2", "transmitter")
            .restart_daemon(TX_RESTART_AT, "mon2", "transmitter"))


def run_acceptance(seed: int = 0):
    cluster, dep, addrs = build_chaos_world(seed=seed)
    chaos = ChaosController(dep, acceptance_plan())
    chaos.start()
    observed = poll_replies(cluster, dep, n=3, until=HORIZON)
    cluster.run(until=HORIZON + 2.0)
    return observed, chaos, addrs, dep


class TestAcceptanceScenario:
    def test_dead_servers_never_returned_after_expiry(self):
        observed, chaos, addrs, _ = run_acceptance()
        dead = {addrs["s4"], addrs["s5"]}
        late = [(t, s) for t, s in observed if t >= EXPIRY_DEADLINE]
        assert late, "poller produced no replies after the expiry deadline"
        for t, servers in late:
            assert not dead & set(servers), \
                f"dead server handed out at t={t}: {servers}"

    def test_full_reply_quality_recovers_within_budget(self):
        observed, chaos, addrs, _ = run_acceptance()
        # the 4 live servers: s0-s2 (partitioned group, healed) + s3;
        # full quality for an n=3 request = 3 servers, all of them live
        live = {addrs[n] for n in ("s0", "s1", "s2", "s3")}
        recovered = [t for t, servers in observed
                     if t >= HEAL_AT and len(servers) == 3
                     and set(servers) <= live]
        assert recovered, "reply quality never recovered after the heal"
        # allow one polling period of slack on top of the plane's budget
        assert recovered[0] <= HEAL_AT + BUDGET + 1.0

    def test_partitioned_group_goes_stale_and_drops_out(self):
        observed, chaos, addrs, _ = run_acceptance()
        g1 = {addrs[n] for n in ("s0", "s1", "s2")}
        # while partitioned and beyond the 10 s freshness demand, no g1
        # server may qualify (host_status_age < 10 in the requirement)
        stale_window = [(t, s) for t, s in observed
                        if PARTITION_AT + 10.0 + 1.0 <= t < HEAL_AT]
        assert stale_window
        for t, servers in stale_window:
            assert not g1 & set(servers), \
                f"stale g1 server still qualified at t={t}"

    def test_transmitter_restart_keeps_g2_alive(self):
        observed, chaos, addrs, dep = run_acceptance()
        # while g1 is stale, s3 is the only qualifier — and it must stay
        # qualified straight through the transmitter kill+restart window
        stale_window = [(t, s) for t, s in observed
                        if PARTITION_AT + 10.0 + 1.0 <= t < HEAL_AT]
        assert stale_window
        assert all(servers == (addrs["s3"],) for _, servers in stale_window)
        tx = dep.groups["g2"].transmitter
        assert tx.connects >= 2  # original session + post-restart session

    def test_bit_identical_for_fixed_seed(self):
        first_obs, first_chaos, _, _ = run_acceptance(seed=7)
        second_obs, second_chaos, _, _ = run_acceptance(seed=7)
        assert first_obs == second_obs
        assert first_chaos.log == second_chaos.log

    def test_chaos_log_records_every_fault(self):
        _, chaos, _, _ = run_acceptance()
        kinds = [entry.split()[0] for _, entry in chaos.log]
        assert kinds == ["crash-host", "crash-host", "link-down",
                         "kill-daemon", "restart-daemon", "link-up"]


class TestHostRestart:
    def test_crashed_server_rejoins_after_restart(self):
        cluster, dep, addrs = build_chaos_world()
        plan = (FaultPlan()
                .crash_host(5.0, "s4")
                .restart_host(15.0, "s4"))
        chaos = ChaosController(dep, plan)
        chaos.start()
        observed = poll_replies(cluster, dep, n=6, until=30.0)
        cluster.run(until=32.0)
        gone = [t for t, s in observed if addrs["s4"] not in s]
        back = [t for t, s in observed if t > 15.0 and addrs["s4"] in s]
        assert gone, "crashed server never left the reply set"
        assert back, "restarted server never rejoined"
        # rejoin within one probe + one push of the restart
        assert min(back) <= 15.0 + CHAOS_CONFIG.probe_interval \
            + CHAOS_CONFIG.transmit_interval + 1.0

    def test_monitor_host_crash_blinds_then_restores_group(self):
        cluster, dep, addrs = build_chaos_world()
        plan = (FaultPlan()
                .crash_host(5.0, "mon1")
                .restart_host(25.0, "mon1"))
        chaos = ChaosController(dep, plan)
        chaos.start()
        observed = poll_replies(cluster, dep, n=6, until=45.0)
        cluster.run(until=47.0)
        g1 = {addrs[n] for n in ("s0", "s1", "s2")}
        # crashed monitor loses its DB and pushes nothing: with the
        # freshness demand, g1 drops out by crash + 10 s staleness
        blind = [(t, s) for t, s in observed if 17.0 <= t < 25.0]
        assert blind and all(not g1 & set(s) for t, s in blind)
        restored = [t for t, s in observed if t >= 25.0 and g1 <= set(s)]
        assert restored, "group never came back after monitor restart"


class TestWizardRestart:
    def test_client_rides_through_wizard_outage(self):
        cluster, dep, addrs = build_chaos_world()
        plan = (FaultPlan()
                .kill_daemon(6.0, "wiz", "wizard")
                .restart_daemon(9.0, "wiz", "wizard"))
        chaos = ChaosController(dep, plan)
        chaos.start()
        observed = poll_replies(cluster, dep, n=6, until=20.0)
        cluster.run(until=22.0)
        after = [(t, s) for t, s in observed if t > 9.0]
        assert after and any(len(s) == 6 for _, s in after)


class TestLossBurst:
    def test_reaper_expires_and_rejoins_under_probe_loss(self):
        """SystemMonitor reaper round-trip: a total loss burst on a
        server's uplink starves its probe reports, the record expires,
        and it rejoins after the burst ends."""
        cluster, dep, addrs = build_chaos_world()
        plan = FaultPlan().loss_burst(5.0, "s1", rate=1.0, duration=6.0)
        chaos = ChaosController(dep, plan)
        chaos.start()
        observed = poll_replies(cluster, dep, n=6, until=25.0)
        cluster.run(until=27.0)
        sysmon = dep.groups["g1"].sysmon
        assert sysmon.expired >= 1
        gone = [t for t, s in observed if addrs["s1"] not in s]
        back = [t for t, s in observed if t > 11.0 and addrs["s1"] in s]
        assert gone, "record never expired under total probe loss"
        assert back, "server never rejoined after the burst"

    def test_partial_loss_shrugged_off(self):
        """A mild loss burst must not expire anyone: UDP reports are sent
        every second and only need to land once per 3 s window."""
        cluster, dep, addrs = build_chaos_world(seed=2)
        plan = FaultPlan().loss_burst(5.0, "s0", rate=0.3, duration=8.0)
        chaos = ChaosController(dep, plan)
        chaos.start()
        observed = poll_replies(cluster, dep, n=6, until=20.0)
        cluster.run(until=22.0)
        assert all(addrs["s0"] in s for _, s in observed)


class TestDirectionalLossBurst:
    """Loss bursts can be asymmetric: ``direction="tx"`` eats only the
    frames the victim *sends*, ``direction="rx"`` only those it receives.
    The probe's UDP reports are one-way (server -> monitor), so the two
    directions have opposite control-plane consequences."""

    def test_tx_burst_starves_the_probe_reports(self):
        cluster, dep, addrs = build_chaos_world()
        plan = FaultPlan().loss_burst(5.0, "s1", rate=1.0, duration=6.0,
                                      direction="tx")
        ChaosController(dep, plan).start()
        observed = poll_replies(cluster, dep, n=6, until=25.0)
        cluster.run(until=27.0)
        assert dep.groups["g1"].sysmon.expired >= 1
        assert any(addrs["s1"] not in s for _, s in observed), \
            "record never expired though every outbound report was eaten"

    def test_rx_burst_leaves_outbound_reports_untouched(self):
        """The mirror image: a total *inbound* blackout on the same server
        for the same window must not expire anyone — its reports still
        reach the monitor on the healthy tx direction."""
        cluster, dep, addrs = build_chaos_world()
        plan = FaultPlan().loss_burst(5.0, "s1", rate=1.0, duration=6.0,
                                      direction="rx")
        ChaosController(dep, plan).start()
        observed = poll_replies(cluster, dep, n=6, until=25.0)
        cluster.run(until=27.0)
        assert dep.groups["g1"].sysmon.expired == 0
        assert all(addrs["s1"] in s for _, s in observed)


class TestLinkFlap:
    def test_flapping_uplink_recovers(self):
        cluster, dep, addrs = build_chaos_world()
        plan = FaultPlan().flap_link(8.0, "sw-g2", "core",
                                     period=2.0, count=3)
        chaos = ChaosController(dep, plan)
        chaos.start()
        observed = poll_replies(cluster, dep, n=6, until=30.0)
        cluster.run(until=32.0)
        g2 = {addrs[n] for n in ("s3", "s4", "s5")}
        # flaps are shorter than the freshness demand: last-known-good
        # data keeps g2 qualified throughout, and the plane stays up
        settled = [s for t, s in observed if t >= 20.0]
        assert settled and all(g2 <= set(s) for s in settled)
