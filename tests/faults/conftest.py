"""Shared topology for the chaos suite: a 2-group, 6-server star.

::

    cli --- core --- wiz
             |\
       sw-g1 | sw-g2
      /  |   |  |  \
  mon1 s0-s2 | s3-s5 (mon2)

Cutting sw-g1<->core partitions group g1 (monitor + 3 servers) from the
wizard; the servers of g2 hang off sw-g2 next to their monitor mon2.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cluster import Cluster, Deployment
from repro.core.config import DEFAULT_CONFIG

#: chaos-test timing: 1 s probes, 3 misses, 1 s pushes — so a dead
#: server expires after 3 s and the acceptance recovery budget
#: (probe_miss_limit * probe_interval + transmit_interval) is 4 s
CHAOS_CONFIG = replace(
    DEFAULT_CONFIG,
    probe_interval=1.0,
    probe_miss_limit=3,
    transmit_interval=1.0,
    netmon_interval=1.0,
    client_timeout=1.0,
    client_retries=2,
    client_backoff_base=0.1,
    client_backoff_cap=1.0,
    transmit_backoff_cap=2.0,
    transmit_stall_limit=3.0,
    quarantine_period=5.0,
)

#: freshness demand used by the chaos scenarios: a record whose monitor
#: path has been dead for >= 10 s no longer qualifies
CHAOS_REQUIREMENT = "host_cpu_free > 0.1\nhost_status_age < 10"


def build_chaos_world(seed: int = 0, config=CHAOS_CONFIG):
    """Cluster + started deployment; returns (cluster, dep, name->addr)."""
    cluster = Cluster(seed=seed)
    wiz = cluster.add_host("wiz")
    cli = cluster.add_host("cli")
    mon1 = cluster.add_host("mon1")
    mon2 = cluster.add_host("mon2")
    core = cluster.add_switch("core")
    sw1 = cluster.add_switch("sw-g1")
    sw2 = cluster.add_switch("sw-g2")
    cluster.link(wiz, core, subnet="10.0.0")
    cluster.link(cli, core, subnet="10.0.3")
    cluster.link(mon1, sw1, subnet="10.0.1")
    cluster.link(sw1, core, subnet="10.0.1")
    cluster.link(mon2, sw2, subnet="10.0.2")
    cluster.link(sw2, core, subnet="10.0.2")
    servers = []
    for i in range(6):
        s = cluster.add_host(f"s{i}")
        cluster.link(s, sw1 if i < 3 else sw2,
                     subnet="10.0.1" if i < 3 else "10.0.2")
        servers.append(s)
    cluster.finalize()
    dep = Deployment(cluster, wizard_host=wiz, config=config)
    dep.add_group("g1", mon1, servers[:3])
    dep.add_group("g2", mon2, servers[3:])
    dep.start()
    addrs = {s.name: s.addr for s in servers}
    return cluster, dep, addrs


def poll_replies(cluster, dep, *, n: int, requirement: str = CHAOS_REQUIREMENT,
                 until: float, period: float = 1.0, results: list | None = None):
    """Spawn a client process polling the wizard every ``period`` seconds.

    Appends ``(sim_time, sorted_server_addrs)`` tuples to ``results`` (a
    new list is returned when not supplied) until ``until``.
    """
    log = results if results is not None else []
    client = dep.client_for(cluster.host("cli"))

    def poller():
        yield cluster.sim.timeout(dep.warm_up_seconds())
        while cluster.sim.now < until:
            reply = yield from client.request_servers(requirement, n)
            log.append((cluster.sim.now, tuple(sorted(reply.servers))))
            yield cluster.sim.timeout(period)

    cluster.sim.process(poller(), name="chaos-poller")
    return log
